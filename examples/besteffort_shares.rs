//! Weighted best-effort classes inside one VC (§3, Figure 4).
//!
//! The EDF architectures differentiate multiple best-effort classes
//! sharing VC1 purely through the bandwidths of their aggregated flow
//! records — no extra queues, no switch state. This example sweeps the
//! weight ratio at full load and shows the delivered-throughput split
//! following it.
//!
//! ```text
//! cargo run --release --example besteffort_shares
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{class_gbps, scaled_bench};
use deadline_qos::netsim::run_one;

fn main() {
    println!("=== Best-effort differentiation by record weights (Advanced 2 VCs, 100% load) ===\n");
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>12}",
        "weights", "BE Gb/s", "BG Gb/s", "measured", "configured"
    );
    // (best-effort, background) record bandwidths as fractions of the
    // link; the residual VC1 capacity is ~50% of the link.
    for (wb, wg) in [(0.25, 0.25), (1.0 / 3.0, 1.0 / 6.0), (0.4, 0.1)] {
        let mut cfg = scaled_bench(Architecture::Advanced2Vc, 1.0, 16);
        cfg.be_weights = (wb, wg);
        let (report, summary) = run_one(cfg);
        assert_eq!(summary.out_of_order, 0);
        let be = class_gbps(&report, "Best-effort");
        let bg = class_gbps(&report, "Background");
        println!(
            "{:>5.2}:{:<5.2} {:>14.3} {:>14.3} {:>11.2}x {:>11.2}x",
            wb,
            wg,
            be,
            bg,
            be / bg,
            wb / wg
        );
    }
    println!(
        "\nEqual weights split VC1 evenly; skewed weights shift the split toward\n\
         the favoured class — the knob the paper says 'can guarantee minimum\n\
         bandwidth if we are careful assigning weights'."
    );
}
