//! Video streaming with deadline-based QoS: the §3.1 story.
//!
//! Compares the three ways to stamp multimedia deadlines — the paper's
//! frame-spread method against the two options it rejects — first
//! analytically (what deadline does each frame get?), then by running
//! the network and measuring realised frame latency.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```

use deadline_qos::core::{segment_message, Architecture, DeadlineMode, Stamper};
use deadline_qos::netsim::presets::{message_latency_ms, scaled_bench};
use deadline_qos::netsim::{Network, VideoDeadlines};
use deadline_qos::sim_core::{Bandwidth, SimDuration, SimTime};

fn main() {
    println!("=== §3.1: computing deadlines for MPEG video ===\n");
    analytic_comparison();
    println!();
    network_comparison();
}

/// What deadline does the *last packet of a frame* get, per method?
/// Under pacing that is the frame's effective latency.
fn analytic_comparison() {
    let methods: [(&str, DeadlineMode); 3] = [
        (
            "frame-spread 10ms (paper)",
            DeadlineMode::FrameSpread { target: SimDuration::from_ms(10) },
        ),
        (
            "avg bandwidth 400KB/s",
            DeadlineMode::AvgBandwidth(Bandwidth::bytes_per_sec(400_000)),
        ),
        (
            "peak bandwidth 3MB/s",
            DeadlineMode::AvgBandwidth(Bandwidth::mbytes_per_sec(3)),
        ),
    ];
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "method / frame size", "2 KiB", "16 KiB", "80 KiB", "120 KiB"
    );
    for (name, mode) in methods {
        print!("{name:<28}");
        for size_kib in [2u64, 16, 80, 120] {
            let mut s = Stamper::new(mode);
            let parts = segment_message(size_kib * 1024, 2048);
            let last = s.stamp_message(SimTime::ZERO, &parts).last().unwrap().deadline;
            print!(" {:>8.2}ms", last.as_ns() as f64 / 1e6);
        }
        println!();
    }
    println!(
        "\n(frame-spread: every frame due at the target, regardless of size;\n\
         avg-bw: big frames 'intolerably' late; peak-bw: latency tracks size,\n\
         small frames burst out early — exactly the paper's objections)"
    );
}

/// Run the actual network per method and report realised frame latency.
fn network_comparison() {
    println!("=== realised frame latency through the network (Ideal switch, 16 hosts) ===\n");
    let modes: [(&str, VideoDeadlines); 2] = [
        ("frame-spread 10 ms", VideoDeadlines::FrameSpread { target_ns: 10_000_000 }),
        ("peak bandwidth", VideoDeadlines::PeakBandwidth),
    ];
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>14}",
        "method", "avg ms", "p50 ms", "p99 ms", "<=10.5ms frac"
    );
    for (name, mode) in modes {
        let mut cfg = scaled_bench(Architecture::Ideal, 0.8, 16);
        cfg.video_deadlines = mode;
        // Peak-bw deadlines are tighter than 10 ms, the default warm-up
        // still covers them.
        let (report, summary) = Network::new(cfg).run();
        assert_eq!(summary.out_of_order, 0);
        let (avg, p50, p99) = message_latency_ms(&report, "Multimedia");
        let frac = report
            .class("Multimedia")
            .unwrap()
            .message_latency
            .fraction_at_or_below(10_500_000);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>13.1}%",
            name,
            avg,
            p50,
            p99,
            frac * 100.0
        );
    }
    println!(
        "\n(frame-spread pins every frame near 10 ms with minimal jitter;\n\
         peak-bw finishes small frames early and large frames late)"
    );
}
