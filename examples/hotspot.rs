//! Hotspot / congestion-spreading scenario.
//!
//! Every host aims an extra 30 % of its link at host 0 in the Background
//! class, grossly oversubscribing host 0's delivery link. In a lossless
//! fabric the resulting back-pressure tree can strangle unrelated
//! traffic ("congestion spreading"). The question the paper's design
//! answers: does latency-critical control traffic between *other* hosts
//! survive?
//!
//! ```text
//! cargo run --release --example hotspot [hosts]
//! ```

use deadline_qos::core::{Architecture, TrafficClass};
use deadline_qos::netsim::presets::{class_gbps, cli_arg, packet_latency_us, scaled_bench};
use deadline_qos::netsim::run_one;
use deadline_qos::traffic::HotspotSpec;

fn main() {
    let hosts: u16 = cli_arg(1, 16);
    println!(
        "=== Hotspot: all hosts add 30% link load toward H0 (Background class), {hosts} hosts ===\n"
    );
    println!(
        "{:<18} {:>13} {:>13} {:>13} {:>14} {:>13}",
        "architecture", "ctrl avg us", "ctrl p99 us", "video avg ms", "hotspot Gb/s", "BE Gb/s"
    );
    for arch in Architecture::ALL {
        // Moderate base load plus the hotspot overlay.
        let mut cfg = scaled_bench(arch, 0.6, hosts);
        cfg.mix.hotspot = Some(HotspotSpec {
            dst: 0,
            share: 0.3,
            class: TrafficClass::Background,
            msg_bytes: 8192,
        });
        let (report, summary) = run_one(cfg);
        assert_eq!(summary.out_of_order, 0);
        let (ctrl_avg, ctrl_p99, _) = packet_latency_us(&report, "Control");
        let video_avg_ms = report.class("Multimedia").unwrap().message_latency.mean() / 1e6;
        println!(
            "{:<18} {:>13.2} {:>13.2} {:>13.3} {:>14.3} {:>13.3}",
            report.architecture,
            ctrl_avg,
            ctrl_p99,
            video_avg_ms,
            class_gbps(&report, "Background"),
            class_gbps(&report, "Best-effort"),
        );
    }
    println!(
        "\nThe hotspot rides VC1, so VC0 (control, video) stays isolated in every\n\
         architecture — but within VC1 the EDF designs keep serving Best-effort\n\
         (its deadlines stay current) while the hotspot class falls behind;\n\
         the traditional FIFO lets the hotspot's back-pressure starve both."
    );
}
