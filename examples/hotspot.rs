//! Hotspot / congestion-spreading scenario.
//!
//! Every host aims an extra 30 % of its link at host 0 in the Background
//! class, grossly oversubscribing host 0's delivery link. In a lossless
//! fabric the resulting back-pressure tree can strangle unrelated
//! traffic ("congestion spreading"). The question the paper's design
//! answers: does latency-critical control traffic between *other* hosts
//! survive?
//!
//! ```text
//! cargo run --release --example hotspot [hosts]
//! ```

use deadline_qos::core::{Architecture, TrafficClass};
use deadline_qos::netsim::{run_one, SimConfig};
use deadline_qos::topology::ClosParams;
use deadline_qos::traffic::HotspotSpec;

fn main() {
    let hosts: u16 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("hosts"))
        .unwrap_or(16);
    println!(
        "=== Hotspot: all hosts add 30% link load toward H0 (Background class), {hosts} hosts ===\n"
    );
    println!(
        "{:<18} {:>13} {:>13} {:>13} {:>14} {:>13}",
        "architecture", "ctrl avg us", "ctrl p99 us", "video avg ms", "hotspot Gb/s", "BE Gb/s"
    );
    for arch in Architecture::ALL {
        // Moderate base load plus the hotspot overlay.
        let mut cfg = SimConfig::bench(arch, 0.6);
        cfg.topology = ClosParams::scaled(hosts);
        cfg.mix.hotspot = Some(HotspotSpec {
            dst: 0,
            share: 0.3,
            class: TrafficClass::Background,
            msg_bytes: 8192,
        });
        let (report, summary) = run_one(cfg);
        assert_eq!(summary.out_of_order, 0);
        let c = report.class("Control").unwrap();
        let v = report.class("Multimedia").unwrap();
        let bg = report.class("Background").unwrap();
        let be = report.class("Best-effort").unwrap();
        println!(
            "{:<18} {:>13.2} {:>13.2} {:>13.3} {:>14.3} {:>13.3}",
            report.architecture,
            c.packet_latency.mean() / 1e3,
            c.packet_latency.quantile(0.99) as f64 / 1e3,
            v.message_latency.mean() / 1e6,
            bg.delivered.throughput(report.window_start, report.window_end).as_gbps_f64(),
            be.delivered.throughput(report.window_start, report.window_end).as_gbps_f64(),
        );
    }
    println!(
        "\nThe hotspot rides VC1, so VC0 (control, video) stays isolated in every\n\
         architecture — but within VC1 the EDF designs keep serving Best-effort\n\
         (its deadlines stay current) while the hotspot class falls behind;\n\
         the traditional FIFO lets the hotspot's back-pressure starve both."
    );
}
