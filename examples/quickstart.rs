//! Quickstart: run the Table-1 workload on all four architectures at one
//! load point and print the per-class results side by side.
//!
//! ```text
//! cargo run --release --example quickstart [load] [hosts]
//! ```
//!
//! Defaults: load 1.0 (the paper's most interesting point), 32 hosts
//! (the fast preset; pass 128 for the paper-scale network).

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{run_one, SimConfig};
use deadline_qos::topology::ClosParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().map(|s| s.parse().expect("load")).unwrap_or(1.0);
    let hosts: u16 = args.next().map(|s| s.parse().expect("hosts")).unwrap_or(32);

    println!(
        "deadline-qos quickstart: {hosts} hosts, offered load {:.0}%, Table-1 traffic mix",
        load * 100.0
    );
    println!();

    for arch in Architecture::ALL {
        let mut cfg = SimConfig::bench(arch, load);
        cfg.topology = ClosParams::scaled(hosts);
        let (report, summary) = run_one(cfg);
        println!("{}", report.to_table());
        println!(
            "  [{} events, {} pkts injected, {} delivered, {} out-of-order, {} take-overs]",
            summary.events,
            summary.injected_packets,
            summary.delivered_packets,
            summary.out_of_order,
            summary.take_over_total,
        );
        assert_eq!(summary.out_of_order, 0, "appendix guarantee violated");
        println!();
    }
}
