//! Quickstart: run the Table-1 workload on all four architectures at one
//! load point and print the per-class results side by side.
//!
//! ```text
//! cargo run --release --example quickstart [load] [hosts]
//! DQOS_WORKERS=4 cargo run --release --example quickstart   # parallel runtime
//! ```
//!
//! Defaults: load 1.0 (the paper's most interesting point), 32 hosts
//! (the fast preset; pass 128 for the paper-scale network).

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, env_workers, scaled_bench};
use deadline_qos::netsim::run_one;

fn main() {
    let load: f64 = cli_arg(1, 1.0);
    let hosts: u16 = cli_arg(2, 32);

    println!(
        "deadline-qos quickstart: {hosts} hosts, offered load {:.0}%, Table-1 traffic mix",
        load * 100.0
    );
    println!();

    for arch in Architecture::ALL {
        let mut cfg = scaled_bench(arch, load, hosts);
        cfg.workers = env_workers();
        let (report, summary) = run_one(cfg);
        println!("{}", report.to_table());
        println!(
            "  [{} events, {} pkts injected, {} delivered, {} out-of-order, {} take-overs]",
            summary.events,
            summary.injected_packets,
            summary.delivered_packets,
            summary.out_of_order,
            summary.take_over_total,
        );
        assert_eq!(summary.out_of_order, 0, "appendix guarantee violated");
        println!();
    }
}
