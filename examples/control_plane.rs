//! Latency-critical control traffic under increasing background load —
//! the scenario that motivates the paper's introduction: management /
//! administration traffic must stay fast while storage and best-effort
//! traffic fill the fabric.
//!
//! Sweeps offered load and prints control-packet latency for a
//! traditional 2-VC switch versus the paper's Advanced 2-VC design.
//!
//! ```text
//! cargo run --release --example control_plane [hosts]
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{run_one, SimConfig};
use deadline_qos::topology::ClosParams;

fn main() {
    let hosts: u16 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("hosts"))
        .unwrap_or(16);
    println!("=== Control-plane latency vs load ({hosts} hosts) ===\n");
    println!(
        "{:>7} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "", "Traditional", "", "", "Advanced", "", ""
    );
    println!(
        "{:>7} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "load%", "avg us", "p99 us", "max us", "avg us", "p99 us", "max us"
    );
    for load in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = format!("{:>7.0} |", load * 100.0);
        for arch in [Architecture::Traditional2Vc, Architecture::Advanced2Vc] {
            let mut cfg = SimConfig::bench(arch, load);
            cfg.topology = ClosParams::scaled(hosts);
            let (report, summary) = run_one(cfg);
            assert_eq!(summary.out_of_order, 0);
            let c = report.class("Control").unwrap();
            row.push_str(&format!(
                " {:>12.2} {:>12.2} {:>12.2} {}",
                c.packet_latency.mean() / 1e3,
                c.packet_latency.quantile(0.99) as f64 / 1e3,
                c.packet_latency.max() as f64 / 1e3,
                if arch == Architecture::Traditional2Vc { "|" } else { "" }
            ));
        }
        println!("{row}");
    }
    println!(
        "\nControl messages ride VC0 with full-link-bandwidth deadlines: under the\n\
         EDF designs their latency barely moves with load, while the traditional\n\
         switch lets queueing behind multimedia bursts inflate it."
    );
}
