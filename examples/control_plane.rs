//! Latency-critical control traffic under increasing background load —
//! the scenario that motivates the paper's introduction: management /
//! administration traffic must stay fast while storage and best-effort
//! traffic fill the fabric.
//!
//! Sweeps offered load and prints control-packet latency for a
//! traditional 2-VC switch versus the paper's Advanced 2-VC design.
//!
//! ```text
//! cargo run --release --example control_plane [hosts]
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, packet_latency_us, scaled_bench};
use deadline_qos::netsim::run_one;

fn main() {
    let hosts: u16 = cli_arg(1, 16);
    println!("=== Control-plane latency vs load ({hosts} hosts) ===\n");
    println!(
        "{:>7} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "", "Traditional", "", "", "Advanced", "", ""
    );
    println!(
        "{:>7} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "load%", "avg us", "p99 us", "max us", "avg us", "p99 us", "max us"
    );
    for load in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = format!("{:>7.0} |", load * 100.0);
        for arch in [Architecture::Traditional2Vc, Architecture::Advanced2Vc] {
            let (report, summary) = run_one(scaled_bench(arch, load, hosts));
            assert_eq!(summary.out_of_order, 0);
            let (avg, p99, max) = packet_latency_us(&report, "Control");
            row.push_str(&format!(
                " {:>12.2} {:>12.2} {:>12.2} {}",
                avg,
                p99,
                max,
                if arch == Architecture::Traditional2Vc { "|" } else { "" }
            ));
        }
        println!("{row}");
    }
    println!(
        "\nControl messages ride VC0 with full-link-bandwidth deadlines: under the\n\
         EDF designs their latency barely moves with load, while the traditional\n\
         switch lets queueing behind multimedia bursts inflate it."
    );
}
