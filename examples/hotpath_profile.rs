//! **Self-profiling walkthrough — where do the ticks go?**
//!
//! Points the PR-5 slack-attribution tracer at the simulator itself:
//! runs a traced simulation and prints both sides of "where the ticks
//! go" —
//!
//! * **wall-clock ticks**: events processed and events per wall-clock
//!   second, the number the struct-of-arrays / batch-arbitration hot
//!   path optimises (recorded as `fullsim/...` rows in
//!   `BENCH_kernel.json`);
//! * **simulated ticks**: the per-class, per-stage table of where
//!   deadline-missing packets lost their slack (pacing, VC arbitration,
//!   head-of-line blocking, link stalls, ...), which is how the hot
//!   spots were found in the first place.
//!
//! ```text
//! cargo run --release --example hotpath_profile [hosts] [load] [arch]
//! # smoke (default):   16 hosts at 90% load, Simple 2-VC
//! # paper fabric:      cargo run --release --example hotpath_profile 128 1.0 advanced
//! ```
//!
//! `scripts/check.sh` runs the default as a non-gating smoke: the table
//! is diagnostic output, not a pass/fail criterion.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, env_workers, scaled_tiny, window_us};
use deadline_qos::netsim::{Network, TraceSettings};

fn main() {
    let hosts: u16 = cli_arg(1, 16);
    let load: f64 = cli_arg(2, 0.9);
    let arch = match std::env::args().nth(3) {
        Some(s) => Architecture::from_slug(&s).expect("arch: traditional|ideal|simple|advanced"),
        None => Architecture::Simple2Vc,
    };

    let mut cfg = window_us(scaled_tiny(arch, load, hosts), 2_000, 2_000);
    cfg.workers = env_workers();
    cfg.trace = TraceSettings::on();

    println!(
        "profiling {} @ {:.0}% load ({hosts} hosts, {} worker(s))...\n",
        arch.label(),
        load * 100.0,
        cfg.workers
    );
    let wall_start = std::time::Instant::now();
    let (report, summary, trace) = Network::new(cfg).run_traced();
    let wall = wall_start.elapsed();
    summary.check_strict();

    // Wall-clock side: what a second of host time buys. The traced rate
    // runs a few percent below the untraced `fullsim` rows in
    // BENCH_kernel.json (the recorder adds a branch and a ring write per
    // event) — this table is for locating the ticks, not for the record.
    println!("== wall-clock ticks ==");
    println!("  events processed   {:>12}", summary.events);
    println!("  wall time          {:>12.1} ms", wall.as_secs_f64() * 1e3);
    println!(
        "  event rate         {:>12.0} events/sec ({:.1} ns/event, tracer on)",
        summary.events as f64 / wall.as_secs_f64(),
        wall.as_nanos() as f64 / summary.events.max(1) as f64
    );
    println!(
        "  packets delivered  {:>12}   trace events kept {} (dropped {})",
        summary.delivered_packets,
        trace.events.len(),
        trace.dropped
    );

    // Simulated side: the slack table. Every deadline-missing delivery's
    // lost slack is attributed to pipeline stages; a stage dominating a
    // class's column is where that class's ticks go.
    println!("\n== simulated ticks (lost slack of deadline-missing packets) ==");
    let Some(tr) = &report.trace else {
        println!("  (no trace section in the report — tracing disabled?)");
        return;
    };
    for c in &tr.classes {
        if c.delivered == 0 {
            continue;
        }
        println!(
            "\n  {:<12} delivered {:>8}   missed {:>6}   total miss {:>10} ns",
            c.class, c.delivered, c.missed, c.miss_ns
        );
        if c.missed == 0 {
            continue;
        }
        let attributed: u64 = c.stages.iter().map(|s| s.ns).sum();
        for s in &c.stages {
            if s.ns == 0 {
                continue;
            }
            let share = 100.0 * s.ns as f64 / attributed.max(1) as f64;
            println!(
                "    {:<16} {:>12} ns  {:>5.1}%  {}",
                s.stage,
                s.ns,
                share,
                "#".repeat((share / 4.0).round() as usize)
            );
        }
    }
    if tr.incomplete > 0 {
        println!(
            "\n  ({} missed deliveries had ring-truncated journeys and are counted, not attributed)",
            tr.incomplete
        );
    }
}
