//! Spine failure and repair, watched through one traffic trajectory.
//!
//! One seeded run; spine 0 dies at 3 ms and comes back at 6 ms. Because
//! `source_horizon` pins the generators past every window, three runs of
//! the *same* seed and fault plan replay the identical event trajectory —
//! only the measurement window moves. That turns "before / degraded /
//! repaired" into three honest samples of one incident: reserved video
//! flows re-route over the surviving spines (flows that no longer fit are
//! revoked and counted), packets caught on the dead links are dropped,
//! and the repair re-admits what the failure squeezed out.
//!
//! ```text
//! cargo run --release --example link_failure [hosts]
//! ```

use deadline_qos::core::{Architecture, TrafficClass};
use deadline_qos::faults::FaultPlan;
use deadline_qos::netsim::presets::{class_gbps, cli_arg, packet_latency_us, scaled_tiny, window_us};
use deadline_qos::netsim::Network;
use deadline_qos::sim_core::{SimDuration, SimTime};
use deadline_qos::topology::FoldedClos;

const FAIL_MS: u64 = 3;
const REPAIR_MS: u64 = 6;

fn main() {
    let hosts: u16 = cli_arg(1, 32);
    let mut base = scaled_tiny(Architecture::Advanced2Vc, 0.6, hosts);
    base.source_horizon = Some(SimDuration::from_ms(10));
    let topo = FoldedClos::build(base.topology);
    let plan = FaultPlan::new(0xFA_17)
        .spine_down(SimTime::from_ms(FAIL_MS), 0, &topo)
        .spine_up(SimTime::from_ms(REPAIR_MS), 0, &topo);

    println!(
        "=== Spine 0 down at {FAIL_MS} ms, repaired at {REPAIR_MS} ms ({hosts} hosts, \
         Advanced 2 VCs, load 60%) ===\n"
    );
    println!(
        "{:<22} {:>13} {:>13} {:>13} {:>13}",
        "window", "ctrl avg us", "ctrl p99 us", "video avg us", "BE Gb/s"
    );
    // Same seed + same plan = same trajectory; only the window moves.
    let phases = [
        ("before   (1-3 ms)", 1_000, 2_000),
        ("degraded (3-6 ms)", FAIL_MS * 1_000, (REPAIR_MS - FAIL_MS) * 1_000),
        ("repaired (7-9 ms)", REPAIR_MS * 1_000 + 1_000, 2_000),
    ];
    let mut last = None;
    for (label, warmup_us, measure_us) in phases {
        let cfg = window_us(base, warmup_us, measure_us);
        let (report, summary) = Network::with_faults(cfg, &plan)
            .try_run()
            .expect("degraded run completes");
        summary.check().expect("degraded invariants");
        let (ctrl_avg, ctrl_p99, _) = packet_latency_us(&report, "Control");
        let (video_avg, _, _) = packet_latency_us(&report, "Multimedia");
        println!(
            "{:<22} {:>13.2} {:>13.2} {:>13.2} {:>13.3}",
            label,
            ctrl_avg,
            ctrl_p99,
            video_avg,
            class_gbps(&report, "Best-effort"),
        );
        last = Some((report, summary));
    }

    // The loss and re-admission ledger is a property of the whole
    // incident, identical in all three replays — print it once.
    let (report, summary) = last.unwrap();
    let f = report.faults.as_ref().expect("fault section");
    println!(
        "\nincident ledger: {} reroutes, {} rejections (no surviving path fit), \
         {} re-admissions after repair",
        f.reroutes, f.reroute_rejections, f.readmissions
    );
    println!(
        "{:<14} {:>9} {:>11} {:>15}",
        "class", "dropped", "corrupted", "deadline-miss"
    );
    for class in TrafficClass::ALL {
        let c = f.class(class.name()).unwrap();
        println!(
            "{:<14} {:>9} {:>11} {:>15}",
            c.class, c.dropped, c.corrupted, c.deadline_miss
        );
    }
    println!(
        "\n(packets already queued toward the dead spine are lost — {} total — \n\
         but conservation holds: {} injected = {} delivered + {} dropped)",
        f.total_dropped(),
        summary.injected_packets,
        summary.delivered_packets,
        summary.dropped_packets,
    );
}
