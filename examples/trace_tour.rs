//! Tour of the flight recorder: trace a small run, explain where the
//! deadline misses lost their slack, and export the trace for offline
//! inspection.
//!
//! ```text
//! cargo run --release --example trace_tour [load] [arch]
//! # e.g.  cargo run --release --example trace_tour 1.0 simple
//! DQOS_TRACE=500000 cargo run --release --example trace_tour   # capacity knob
//! ```
//!
//! Writes `target/trace_tour.jsonl` (one event per line) and
//! `target/trace_tour_chrome.json` (open in `chrome://tracing` or
//! Perfetto: instant events per packet, counter tracks per node).

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, env_trace, env_workers, scaled_tiny, window_us};
use deadline_qos::netsim::{Network, TraceSettings};
use deadline_qos::trace::{attribute, export, in_flight_series, STAGE_NAMES};

fn main() {
    let load: f64 = cli_arg(1, 1.0);
    let arch = match std::env::args().nth(2) {
        Some(s) => Architecture::from_slug(&s).expect("arch: traditional|ideal|simple|advanced"),
        None => Architecture::Simple2Vc,
    };

    // Tracing is an ordinary config field; `DQOS_TRACE` overrides the
    // default-on settings of this example (0 disables, N sets capacity).
    let mut cfg = window_us(scaled_tiny(arch, load, 16), 2_000, 2_000);
    cfg.workers = env_workers();
    cfg.trace = if std::env::var("DQOS_TRACE").is_ok() {
        env_trace()
    } else {
        TraceSettings::on()
    };

    println!(
        "tracing {} @ {:.0}% load (16 hosts, capacity {} events)...\n",
        arch.label(),
        load * 100.0,
        cfg.trace.capacity
    );
    let (report, summary, trace) = Network::new(cfg).run_traced();

    // The report's trace section is the per-class slack rollup; the raw
    // stream supports deeper passes.
    println!("{}", report.to_table());

    println!(
        "captured {} events ({} dropped past capacity) across {} delivered packets",
        trace.events.len(),
        trace.dropped,
        summary.delivered_packets
    );
    if let Some((at, peak)) = in_flight_series(&trace.events)
        .iter()
        .max_by_key(|(_, n)| *n)
    {
        println!("peak in-flight: {peak} packets at t={} ns", at.as_ns());
    }

    // Worst single miss, stage by stage — "where did the slack go?".
    let attribution = attribute(&trace.events);
    if let Some(worst) = attribution.packets.iter().max_by_key(|p| p.miss) {
        println!(
            "\nworst miss: packet {} (class {}) missed by {} ns with {} ns initial slack:",
            worst.pkt, worst.class, worst.miss, worst.initial_slack
        );
        for (name, ticks) in STAGE_NAMES.iter().zip(worst.stages.iter()) {
            if *ticks > 0 {
                println!("  {name:<16} {ticks:>12} ns");
            }
        }
    } else {
        println!("\nno deadline misses — every delivery was on time.");
    }

    std::fs::write("target/trace_tour.jsonl", export::jsonl_bytes(&trace))
        .expect("write target/trace_tour.jsonl");
    std::fs::write("target/trace_tour_chrome.json", export::chrome_bytes(&trace))
        .expect("write target/trace_tour_chrome.json");
    println!("\nwrote target/trace_tour.jsonl and target/trace_tour_chrome.json");
}
