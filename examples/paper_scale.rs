//! The paper-scale experiment: 128 endpoints, 16-port switches, 8 Gb/s
//! links, Table-1 traffic at a chosen load — §4's exact configuration.
//!
//! This is the slow, faithful run (tens of millions of events per
//! architecture); the figure benches default to a reduced instance.
//!
//! ```text
//! cargo run --release --example paper_scale [load] [arch]
//! # e.g.  cargo run --release --example paper_scale 1.0 advanced
//! DQOS_WORKERS=4 cargo run --release --example paper_scale   # parallel runtime
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, env_workers};
use deadline_qos::netsim::{run_one, SimConfig};

fn main() {
    let load: f64 = cli_arg(1, 1.0);
    let archs: Vec<Architecture> = match std::env::args().nth(2) {
        Some(s) => vec![Architecture::from_slug(&s).expect("arch: traditional|ideal|simple|advanced")],
        None => Architecture::ALL.to_vec(),
    };

    for arch in archs {
        let mut cfg = SimConfig::paper(arch, load);
        cfg.workers = env_workers();
        println!(
            "running {} @ {:.0}% on the paper network (128 hosts, {} switches, {} window)...",
            arch.label(),
            load * 100.0,
            cfg.topology.n_switches(),
            cfg.measure
        );
        let start = std::time::Instant::now();
        let (report, summary) = run_one(cfg);
        println!("{}", report.to_table());
        println!(
            "  [{} events in {:.1}s wall ({:.2}M ev/s), {} pkts, {} out-of-order, {} take-overs]\n",
            summary.events,
            start.elapsed().as_secs_f64(),
            summary.events as f64 / start.elapsed().as_secs_f64() / 1e6,
            summary.delivered_packets,
            summary.out_of_order,
            summary.take_over_total
        );
        assert_eq!(summary.out_of_order, 0);
    }
}
