//! Trace-overhead smoke gate: the flight recorder must stay cheap enough
//! to flip on mid-investigation. Runs the same tiny configuration
//! untraced and traced (interleaved, best-of-N to shave scheduler
//! noise) and fails if the traced runs cost more than the budgeted
//! multiples of the untraced wall-clock.
//!
//! Two budgets, because the recorder's cost scales with the events it
//! *keeps*, not the events offered (DESIGN.md §9):
//!
//! - **bounded ring** (capacity well under the offered event count, the
//!   drop-newest regime): hooks + pushes + post-processing over the kept
//!   prefix must fit in a tight budget — this is the always-on cost a
//!   user pays to leave a small ring enabled while investigating;
//! - **full capture** (default `TraceSettings::on()` capacity, nothing
//!   dropped): streaming every event (~40 B each) through memory plus the
//!   merge/attribution passes costs real wall-clock on one core; a looser
//!   backstop catches regressions without pretending that cost away.
//!
//! The budgets are *relative* to the untraced wall-clock, so they must
//! be recalibrated whenever the untraced hot path speeds up: the PR-6
//! struct-of-arrays/batch-arbitration work cut the untraced run 1.55×
//! while the recorder's absolute per-event cost stayed put, which turns
//! the original 1.25x/2.0x allowances into ~1.39x/~2.55x of the new,
//! smaller denominator. Current defaults are those plus noise headroom
//! — the gate still catches an *absolute* recorder regression.
//!
//! ```text
//! cargo run --release --example trace_overhead [ring_budget] [full_budget]
//! # scripts/check.sh runs it with the default 1.5x / 2.75x budgets
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::netsim::presets::{cli_arg, scaled_tiny, window_us};
use deadline_qos::netsim::{Network, SimConfig, TraceSettings};
use std::time::Instant;

const ROUNDS: usize = 3;
/// Bounded-ring capacity: small enough that the tiny preset overflows it
/// (so the gate exercises the drop-newest path), large enough to be a
/// useful investigation window (~150 k events ≈ 30 k packet lifecycles).
const RING_CAPACITY: u32 = 150_000;

fn wall(cfg: SimConfig) -> f64 {
    let start = Instant::now();
    let (_, summary) = Network::new(cfg).run();
    assert!(summary.delivered_packets > 0, "smoke run moved no traffic");
    start.elapsed().as_secs_f64()
}

fn main() {
    let ring_budget: f64 = cli_arg(1, 1.5);
    let full_budget: f64 = cli_arg(2, 2.75);
    let base = window_us(scaled_tiny(Architecture::Advanced2Vc, 0.8, 16), 500, 2_000);
    let mut ring_cfg = base;
    ring_cfg.trace = TraceSettings::with_capacity(RING_CAPACITY);
    let mut full_cfg = base;
    full_cfg.trace = TraceSettings::on();

    // Interleave and keep the best of each: all three configs see the
    // same thermal/scheduler conditions, and the minima compare
    // steady-state cost rather than whichever run a background process
    // landed on.
    let (mut plain, mut ring, mut full) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for round in 0..ROUNDS {
        let p = wall(base);
        let r = wall(ring_cfg);
        let f = wall(full_cfg);
        println!("round {round}: untraced {p:.3}s, ring {r:.3}s, full {f:.3}s");
        plain = plain.min(p);
        ring = ring.min(r);
        full = full.min(f);
    }

    let ring_ratio = ring / plain;
    let full_ratio = full / plain;
    println!(
        "\ntrace overhead vs best untraced {plain:.3}s:\n  bounded ring ({RING_CAPACITY} events): {ring:.3}s — {ring_ratio:.2}x (budget {ring_budget:.2}x)\n  full capture: {full:.3}s — {full_ratio:.2}x (budget {full_budget:.2}x)"
    );
    assert!(
        ring_ratio <= ring_budget,
        "bounded-ring recorder too expensive: {ring_ratio:.2}x > {ring_budget:.2}x budget"
    );
    assert!(
        full_ratio <= full_budget,
        "full-capture recorder too expensive: {full_ratio:.2}x > {full_budget:.2}x budget"
    );
    println!("within budget.");
}
