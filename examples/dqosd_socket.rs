//! dqos-d over a real localhost socket — the one sanctioned socket demo.
//!
//! Everything else in this workspace (every test, every default
//! `dqosctl` command, the whole chaos harness) runs on the
//! deterministic in-process loopback transport. This example is the
//! exception that proves the isolation boundary: it binds a
//! `SocketServer` on an ephemeral localhost port, serves a daemon from
//! a background thread, and walks a flow lifecycle through
//! `roundtrip()` — the same frames, the same daemon state machine,
//! just carried by TCP instead of the loopback.
//!
//! Run with: `cargo run --release --example dqosd_socket`

use dqosd::server::{Daemon, DaemonConfig};
use dqosd::transport::socket::{roundtrip, SocketServer};
use dqosd::wire::{Op, Reply, ReqClass, Request, Response, NO_BUDGET};

fn main() {
    // Port 0: the OS picks a free ephemeral port, so the demo never
    // collides with anything and never needs configuration.
    let mut server = match SocketServer::bind("127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            // Sandboxed/offline environments may forbid even localhost
            // sockets; that is not a failure of the daemon.
            println!("dqosd_socket: cannot bind a localhost socket ({e}); skipping demo");
            return;
        }
    };
    let addr = server.local_addr().expect("freshly bound listener has an address");
    println!("dqos-d listening on {addr}\n");

    // Exactly as many requests as the client below sends.
    const REQUESTS: u64 = 4;
    let server_thread = std::thread::spawn(move || {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let served = server.serve(&mut daemon, REQUESTS).expect("serve");
        (served, daemon.control_digest(), daemon.store().journal.len())
    });

    let req = |id: u64, op: Op| Request { client: 0xde30, id, budget_ns: NO_BUDGET, op }.encode();
    let frames = vec![
        req(1, Op::Setup { class: ReqClass::Guaranteed, src: 0, dst: 9, bw_bytes_per_sec: 3_000_000 }),
        req(2, Op::Stamp { flow: 0, len: 1500, parts: 1 }),
        req(3, Op::Query),
        req(4, Op::Teardown { flow: 0 }),
    ];
    let labels = ["setup guaranteed 0->9 @3MB/s", "stamp flow 0 len 1500", "query", "teardown flow 0"];

    let replies = roundtrip(addr, &frames).expect("socket roundtrip");
    for (label, frame) in labels.iter().zip(&replies) {
        match Response::decode(frame) {
            Ok(resp) => {
                let ok = matches!(resp.result, Ok(_));
                println!("{label:<30} -> {}", if ok { "ok" } else { "error" });
                if let Ok(Reply::Setup { flow, .. }) = resp.result {
                    println!("{:<30}    admitted as flow {flow}", "");
                }
            }
            Err(e) => println!("{label:<30} -> undecodable: {e}"),
        }
    }

    let (served, digest, journal) = server_thread.join().expect("server thread");
    println!("\nserver: {served} requests served, journal {journal} bytes, digest {digest:#018x}");
}
