//! Fault-matrix determinism smoke (wired into `scripts/check.sh`).
//!
//! One seed, three fault scenarios — a lossy link, a timed spine outage,
//! and per-node clock drift — each run twice, asserting the two runs are
//! byte-identical JSON; the second run uses the parallel runtime when
//! `DQOS_WORKERS` is set, making this a serial-vs-parallel equivalence
//! check too. Plus the null case: an empty plan must be indistinguishable
//! from a simulation with no fault machinery at all.
//!
//! ```text
//! cargo run --release --example fault_matrix
//! DQOS_WORKERS=2 cargo run --release --example fault_matrix
//! ```

use deadline_qos::core::Architecture;
use deadline_qos::faults::{FaultPlan, LinkImpairment, LinkSelector, NodeRef};
use deadline_qos::netsim::presets::{env_workers, window_us};
use deadline_qos::netsim::{Network, SimConfig};
use deadline_qos::sim_core::SimTime;
use deadline_qos::topology::FoldedClos;

fn cfg() -> SimConfig {
    let mut c = window_us(SimConfig::tiny(Architecture::Advanced2Vc, 0.5), 500, 2_000);
    c.seed = 0x5EED;
    c
}

fn check_twice(label: &str, plan: &FaultPlan) {
    let (r1, s1) = Network::with_faults(cfg(), plan).try_run().expect(label);
    let mut pcfg = cfg();
    pcfg.workers = env_workers();
    let (r2, s2) = Network::with_faults(pcfg, plan).try_run().expect(label);
    s1.check().expect(label);
    assert_eq!(s1.events, s2.events, "{label}: event counts diverged");
    assert_eq!(r1.to_json(), r2.to_json(), "{label}: reports diverged");
    println!(
        "PASS {label:<12} ({} events, {} dropped, {} corrupted, {} credits lost, {} reroutes)",
        s1.events, s1.dropped_packets, s1.corrupted_packets, s1.credits_lost, s1.reroutes
    );
}

fn main() {
    let topo = FoldedClos::build(cfg().topology);

    // Null case: empty plan == no fault machinery, bit for bit.
    let (r0, s0) = Network::new(cfg()).run();
    let (r1, s1) = Network::with_faults(cfg(), &FaultPlan::default()).run();
    assert_eq!(s0.events, s1.events, "empty plan changed the run");
    assert_eq!(r0.to_json(), r1.to_json(), "empty plan changed the report");
    assert!(r1.faults.is_none(), "empty plan grew a fault section");
    println!("PASS empty-plan   ({} events, bit-identical to Network::new)", s0.events);

    check_twice(
        "link-drop",
        &FaultPlan::new(1).impair(LinkImpairment {
            selector: LinkSelector::LeafSpine { leaf: 0, spine: 1 },
            drop_prob: 0.03,
            corrupt_prob: 0.02,
            credit_loss_prob: 0.0,
        }),
    );
    check_twice(
        "spine-down",
        &FaultPlan::new(2)
            .spine_down(SimTime::from_ms(1), 0, &topo)
            .spine_up(SimTime::from_us(1_800), 0, &topo),
    );
    check_twice(
        "clock-drift",
        &FaultPlan::new(3)
            .with_drift(NodeRef::Host(1), 150)
            .with_drift(NodeRef::Switch(2), -90),
    );
    let w = env_workers();
    println!("fault matrix: all scenarios deterministic (second runs at workers={w})");
}
