//! Admission control and fixed routing, exercised through the public API
//! across crates (topology + core), plus its interaction with the
//! assembled network.

use deadline_qos::core::{AdmissionController, Architecture};
use deadline_qos::netsim::{Network, SimConfig};
use deadline_qos::sim_core::{Bandwidth, SimDuration};
use deadline_qos::topology::{ClosParams, FoldedClos, HostId};

const LINK: Bandwidth = Bandwidth::gbps(8);

#[test]
fn full_paper_network_admits_table1_video_everywhere() {
    // At Table-1 load every host reserves 25% of its injection link for
    // video; the ledger must fit all of it with room to spare on every
    // link regardless of destination spread.
    let net = FoldedClos::build(ClosParams::paper());
    let mut ac = AdmissionController::new(&net, LINK, 1.0);
    let stream = Bandwidth::bytes_per_sec(400_000);
    let mut admitted = 0u32;
    for src in 0..128u32 {
        for s in 0..625u32 {
            // Deterministic spread of destinations.
            let dst = (src + 1 + (s * 67) % 127) % 128;
            if ac
                .admit(&net, HostId(src), HostId(dst % 128), stream)
                .is_ok()
            {
                admitted += 1;
            }
        }
    }
    assert_eq!(admitted, 128 * 625, "every Table-1 stream must fit");
    assert!(
        ac.max_utilization() < 0.75,
        "video alone should not approach saturation: {}",
        ac.max_utilization()
    );
}

#[test]
fn hotspot_reservations_cap_at_link_capacity() {
    // Everyone reserves towards host 0: admission must stop exactly when
    // the delivery link fills.
    let net = FoldedClos::build(ClosParams::paper());
    let mut ac = AdmissionController::new(&net, LINK, 1.0);
    let per_flow = Bandwidth::mbps(800); // 100 MB/s each
    let mut admitted = 0;
    for src in 1..128u32 {
        if ac.admit(&net, HostId(src), HostId(0), per_flow).is_ok() {
            admitted += 1;
        }
    }
    // 8 Gb/s / 800 Mb/s = 10 flows.
    assert_eq!(admitted, 10);
    let delivery = net.host_delivery_link(HostId(0));
    assert!((ac.utilization(delivery) - 1.0).abs() < 1e-9);
}

#[test]
fn released_bandwidth_is_reusable_repeatedly() {
    let net = FoldedClos::build(ClosParams::scaled(16));
    let mut ac = AdmissionController::new(&net, LINK, 1.0);
    let bw = Bandwidth::gbps(8);
    for _ in 0..50 {
        let adm = ac.admit(&net, HostId(0), HostId(9), bw).expect("fits when empty");
        ac.release(&net, &adm.route, bw).unwrap();
    }
    assert_eq!(ac.max_utilization(), 0.0, "ledger must return to zero");
}

#[test]
fn admission_prefers_least_loaded_spine() {
    let net = FoldedClos::build(ClosParams::paper());
    let mut ac = AdmissionController::new(&net, LINK, 1.0);
    // Load leaf 0's uplinks to spines 0..6 with 1 Gb/s each (hosts 1 and
    // 2 share leaf 0, so their reservations occupy its uplinks), leaving
    // spine 7 untouched.
    for _ in 0..5 {
        ac.admit(&net, HostId(1), HostId(100), Bandwidth::gbps(1)).unwrap();
    }
    for _ in 0..2 {
        ac.admit(&net, HostId(2), HostId(101), Bandwidth::gbps(1)).unwrap();
    }
    let uplink_reserved: Vec<u64> = (0..8)
        .map(|j| {
            let r = net.route(HostId(0), HostId(127), j);
            let links = net.links_on_route(&r);
            ac.reserved(links[1]) // leaf0 -> spine j
        })
        .collect();
    assert_eq!(
        uplink_reserved.iter().filter(|&&r| r == 0).count(),
        1,
        "exactly one spine uplink should be untouched: {uplink_reserved:?}"
    );
    // A new flow from leaf 0 must take that untouched spine.
    let adm = ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(1)).unwrap();
    assert_eq!(
        uplink_reserved[adm.choice as usize], 0,
        "picked spine was not least loaded: {uplink_reserved:?} chose {}",
        adm.choice
    );
}

#[test]
fn degenerate_single_leaf_network_runs() {
    // 8 hosts on one switch: no spines, no admission choices — the whole
    // stack must still work.
    let mut cfg = SimConfig::tiny(Architecture::Advanced2Vc, 0.5);
    cfg.topology = ClosParams::scaled(8);
    cfg.warmup = SimDuration::from_us(200);
    cfg.measure = SimDuration::from_ms(1);
    let (report, summary) = Network::new(cfg).run();
    assert_eq!(summary.injected_packets, summary.delivered_packets);
    assert_eq!(summary.out_of_order, 0);
    assert_eq!(summary.admission_fallbacks, 0);
    assert!(report.class("Control").unwrap().delivered.packets() > 0);
}

#[test]
fn video_routes_stay_fixed_for_a_flow() {
    // Fixed routing is mandatory (§3): the same flow's packets must use
    // one route. The sink's in-order check would catch violations
    // indirectly; here we check the admission-assigned route is stable
    // by running the same network twice and comparing per-class results
    // (any route flapping would change latencies).
    let mk = || {
        let mut cfg = SimConfig::tiny(Architecture::Simple2Vc, 0.4);
        cfg.warmup = SimDuration::from_us(200);
        cfg.measure = SimDuration::from_ms(1);
        cfg.seed = 99;
        cfg
    };
    let (r1, _) = Network::new(mk()).run();
    let (r2, _) = Network::new(mk()).run();
    assert_eq!(r1.to_json(), r2.to_json());
}
