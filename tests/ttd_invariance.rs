//! §3.3's claim as a test: with deadlines transported as TTDs, the
//! simulation's observable results are **bit-identical** under arbitrary
//! per-node clock offsets — no clock synchronisation is needed.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{ClockOffsets, Network, SimConfig};
use deadline_qos::sim_core::SimDuration;

fn base(arch: Architecture) -> SimConfig {
    let mut cfg = SimConfig::tiny(arch, 0.6);
    cfg.warmup = SimDuration::from_us(500);
    cfg.measure = SimDuration::from_ms(2);
    cfg
}

fn run_with(arch: Architecture, clocks: ClockOffsets) -> (String, u64, u64) {
    let mut cfg = base(arch);
    cfg.clocks = clocks;
    let (report, summary) = Network::new(cfg).run();
    (report.to_json(), summary.events, summary.injected_packets)
}

#[test]
fn results_invariant_to_clock_offsets() {
    for arch in Architecture::ALL {
        let synced = run_with(arch, ClockOffsets::Synced);
        for max_off in [1_000u64, 1_000_000, 50_000_000] {
            let skewed = run_with(arch, ClockOffsets::RandomUpTo(max_off));
            assert_eq!(synced.1, skewed.1, "{arch:?} offsets<= {max_off}: event count differs");
            assert_eq!(synced.2, skewed.2, "{arch:?}: injection count differs");
            assert_eq!(synced.0, skewed.0, "{arch:?}: report differs under clock skew");
        }
    }
}

#[test]
fn different_offset_draws_are_still_invariant() {
    // Two different offset *patterns* (different max) must both match the
    // synced baseline — not merely each other.
    let a = run_with(Architecture::Advanced2Vc, ClockOffsets::RandomUpTo(123));
    let b = run_with(Architecture::Advanced2Vc, ClockOffsets::RandomUpTo(987_654));
    assert_eq!(a.0, b.0);
}
