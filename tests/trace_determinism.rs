//! The flight recorder's two contracts, end to end:
//!
//! 1. **Observation changes nothing.** Enabling tracing must leave the
//!    Report (minus its `trace` section) bit-identical to an untraced
//!    run, for every architecture × seed × fault scenario × worker count
//!    the determinism matrix covers.
//! 2. **The trace itself is deterministic.** Same seed + same fault plan
//!    ⇒ byte-identical exported trace at any `DQOS_WORKERS`-style worker
//!    count, including under ring-capacity truncation.
//!
//! Plus the attribution identity on real traffic: every deadline-missing
//! packet's stage spans sum exactly (in ticks) to its observed miss.

use deadline_qos::core::Architecture;
use deadline_qos::faults::{FaultPlan, LinkImpairment, LinkSelector};
use deadline_qos::netsim::{Network, SimConfig, Trace, TraceSettings};
use deadline_qos::sim_core::{SimDuration, SimTime};
use deadline_qos::stats::Report;
use deadline_qos::topology::{ClosParams, FoldedClos};
use deadline_qos::trace::export::jsonl_bytes;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, 0.4);
    c.warmup = SimDuration::from_us(300);
    c.measure = SimDuration::from_ms(1);
    c.seed = seed;
    c
}

/// The same fault scenarios as `tests/determinism.rs`.
fn fault_scenarios(topo: &FoldedClos) -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("none", None),
        (
            "spine-down",
            Some(
                FaultPlan::new(0xD0)
                    .spine_down(SimTime::from_us(600), 0, topo)
                    .spine_up(SimTime::from_us(1_100), 0, topo),
            ),
        ),
        (
            "drop-impair",
            Some(FaultPlan::new(0xD1).impair(LinkImpairment {
                selector: LinkSelector::LeafSpine { leaf: 0, spine: 1 },
                drop_prob: 0.02,
                corrupt_prob: 0.01,
                credit_loss_prob: 0.0,
            })),
        ),
    ]
}

fn run_traced(
    mut c: SimConfig,
    workers: usize,
    trace: TraceSettings,
    plan: Option<&FaultPlan>,
) -> (Report, Trace) {
    c.workers = workers;
    c.trace = trace;
    let net = match plan {
        Some(p) => Network::with_faults(c, p),
        None => Network::new(c),
    };
    let (report, _, trace) = net.try_run_traced().expect("traced run completes");
    (report, trace)
}

/// Strip the trace section so traced and untraced reports compare equal.
fn json_minus_trace(mut report: Report) -> String {
    report.trace = None;
    report.to_json()
}

/// Contract 1 over the full determinism matrix: tracing on vs off gives
/// the same Report bits, for every arch × seed × fault × worker combo.
#[test]
fn tracing_never_perturbs_reports_across_the_matrix() {
    let topo = FoldedClos::build(cfg(0).topology);
    for arch in Architecture::ALL {
        for seed in [11u64, 222, 3_333] {
            for (fault_label, plan) in fault_scenarios(&topo) {
                let mut base = cfg(seed);
                base.arch = arch;
                let cell = format!("{arch:?}/seed{seed}/{fault_label}");
                eprintln!("trace matrix: {cell}");
                // One untraced baseline per cell — determinism.rs already
                // proves the untraced run is worker-invariant, so traced
                // runs at every worker count compare against this one.
                let (plain, empty) = run_traced(base, 1, TraceSettings::OFF, plan.as_ref());
                assert!(empty.is_empty(), "{cell}: untraced run captured events");
                assert!(plain.trace.is_none(), "{cell}: untraced report has section");
                let baseline = plain.to_json();
                let mut traces: Vec<Vec<u8>> = Vec::new();
                for workers in [1usize, 2] {
                    let label = format!("{cell}/w{workers}");
                    let (traced, trace) =
                        run_traced(base, workers, TraceSettings::on(), plan.as_ref());
                    assert!(!trace.is_empty(), "{label}: traced run captured nothing");
                    assert!(traced.trace.is_some(), "{label}: traced report lacks section");
                    assert_eq!(
                        json_minus_trace(traced),
                        baseline,
                        "{label}: tracing changed the report"
                    );
                    traces.push(jsonl_bytes(&trace));
                }
                // Contract 2 rides along: the exported trace bytes agree
                // between serial and parallel executors.
                assert_eq!(
                    traces[0], traces[1],
                    "{arch:?}/seed{seed}/{fault_label}: trace diverged across workers"
                );
            }
        }
    }
}

/// Contract 2 at wider partitionings: 4-leaf network, workers 1/2/4,
/// with a fault plan active and a deliberately tight ring capacity (the
/// drop-newest truncation must itself be worker-invariant).
#[test]
fn trace_bytes_identical_across_worker_counts() {
    let mut base = cfg(99);
    base.topology = ClosParams::scaled(32);
    let topo = FoldedClos::build(base.topology);
    let plan = FaultPlan::new(0xD0)
        .spine_down(SimTime::from_us(600), 0, &topo)
        .spine_up(SimTime::from_us(1_100), 0, &topo);
    for settings in [TraceSettings::on(), TraceSettings::with_capacity(2_000)] {
        let (_, t1) = run_traced(base, 1, settings, Some(&plan));
        let b1 = jsonl_bytes(&t1);
        assert!(!b1.is_empty());
        if settings.capacity == 2_000 {
            assert!(t1.dropped > 0, "tight ring must actually truncate");
            assert_eq!(t1.events.len(), 2_000);
        }
        for workers in [2usize, 4] {
            let (_, tw) = run_traced(base, workers, settings, Some(&plan));
            assert_eq!(
                b1,
                jsonl_bytes(&tw),
                "cap {}: workers={workers} diverged",
                settings.capacity
            );
        }
    }
}

/// The attribution identity on real traffic (not a hand-built stream):
/// per packet and per class, `Σ stage ticks − initial slack == miss`,
/// and the attribution's delivery count matches the simulator's.
#[test]
fn slack_attribution_sums_exactly_on_real_runs() {
    for (arch, load) in [(Architecture::Advanced2Vc, 1.0), (Architecture::Simple2Vc, 0.9)] {
        let mut c = SimConfig::tiny(arch, load);
        c.warmup = SimDuration::from_us(300);
        c.measure = SimDuration::from_ms(1);
        c.trace = TraceSettings::on();
        let (report, summary, trace) = Network::new(c).run_traced();
        assert!(trace.dropped == 0, "capacity must cover the whole tiny run");
        let a = deadline_qos::trace::attribute(&trace.events);
        assert_eq!(a.orphan_events, 0);
        assert_eq!(a.incomplete, 0);
        assert_eq!(
            a.classes.iter().map(|c| c.delivered).sum::<u64>(),
            summary.delivered_packets,
            "{arch:?}: attribution saw every delivery"
        );
        for p in &a.packets {
            assert_eq!(
                p.total() as i64 - p.initial_slack,
                p.miss as i64,
                "{arch:?}: packet {} identity broken",
                p.pkt
            );
        }
        for c in &a.classes {
            assert_eq!(
                c.stage_total() as i64 - c.initial_slack_ticks,
                c.miss_ticks as i64,
                "{arch:?}: class identity broken"
            );
        }
        // The report section is the same rollup.
        let section = report.trace.expect("traced run produces a report section");
        assert_eq!(section.incomplete, 0);
        assert_eq!(section.events, trace.events.len() as u64);
        for rc in &section.classes {
            assert_eq!(
                rc.stage_total_ns() as i64 - rc.initial_slack_ns,
                rc.miss_ns as i64,
                "{arch:?}/{}: report rollup identity broken",
                rc.class
            );
        }
    }
}
