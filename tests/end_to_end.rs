//! Whole-network correctness: conservation, losslessness, in-order
//! delivery, drain — for all four architectures.
//!
//! These run small networks (debug builds are ~10x slower than release)
//! but exercise every subsystem: generators → NIC → leaf → spine → leaf
//! → sink with credits flowing back.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{Network, SimConfig};
use deadline_qos::sim_core::SimDuration;

fn small(arch: Architecture, load: f64) -> SimConfig {
    let mut cfg = SimConfig::tiny(arch, load);
    cfg.warmup = SimDuration::from_us(500);
    cfg.measure = SimDuration::from_ms(2);
    cfg
}

#[test]
fn every_architecture_conserves_packets() {
    for arch in Architecture::ALL {
        let (_, summary) = Network::new(small(arch, 0.3)).run();
        assert!(summary.injected_packets > 1000, "{arch:?}: too little traffic to be meaningful");
        assert_eq!(
            summary.injected_packets, summary.delivered_packets,
            "{arch:?}: packets lost or duplicated"
        );
        assert_eq!(summary.residual_packets, 0, "{arch:?}: network failed to drain");
    }
}

#[test]
fn every_architecture_delivers_in_order() {
    // The appendix's guarantee, end to end, under real contention.
    for arch in Architecture::ALL {
        let (_, summary) = Network::new(small(arch, 0.8)).run();
        assert_eq!(summary.out_of_order, 0, "{arch:?}: out-of-order delivery");
        assert_eq!(summary.broken_messages, 0, "{arch:?}: partial message");
    }
}

#[test]
fn all_classes_flow() {
    let (report, _) = Network::new(small(Architecture::Advanced2Vc, 0.5)).run();
    for class in ["Control", "Multimedia", "Best-effort", "Background"] {
        let c = report.class(class).expect("class present");
        assert!(c.delivered.packets() > 0, "{class}: nothing delivered");
        assert!(c.packet_latency.count() > 0, "{class}: no latency samples");
    }
}

#[test]
fn no_admission_fallbacks_at_table1_load() {
    // Table 1 reserves 25% of every link for video; admission must fit
    // every stream even at full load.
    for load in [0.5, 1.0] {
        let (_, summary) = Network::new(small(Architecture::Ideal, load)).run();
        assert_eq!(summary.admission_fallbacks, 0, "load {load}");
    }
}

#[test]
fn regulated_latency_beats_besteffort_under_congestion() {
    // VC0's absolute priority: at full load, control packets must see far
    // lower latency than the best-effort classes, under every
    // architecture.
    for arch in Architecture::ALL {
        let (report, _) = Network::new(small(arch, 1.0)).run();
        let control = report.class("Control").unwrap().packet_latency.mean();
        let be = report.class("Best-effort").unwrap().packet_latency.mean();
        assert!(
            control * 3.0 < be,
            "{arch:?}: control {control} ns not clearly ahead of best-effort {be} ns"
        );
    }
}

#[test]
fn takeover_queue_active_only_in_advanced() {
    for arch in Architecture::ALL {
        let (_, summary) = Network::new(small(arch, 1.0)).run();
        if arch == Architecture::Advanced2Vc {
            assert!(
                summary.take_over_total > 0,
                "Advanced at full load must see order errors"
            );
        } else {
            assert_eq!(summary.take_over_total, 0, "{arch:?} has no take-over queue");
        }
    }
}

#[test]
fn empty_network_is_quiet() {
    // Load so small that some classes may emit nothing within the window;
    // the simulation must still terminate cleanly.
    let mut cfg = SimConfig::tiny(Architecture::Simple2Vc, 0.01);
    cfg.warmup = SimDuration::from_us(10);
    cfg.measure = SimDuration::from_us(200);
    let (_, summary) = Network::new(cfg).run();
    assert_eq!(summary.injected_packets, summary.delivered_packets);
    assert_eq!(summary.residual_packets, 0);
}
