//! Reproducibility contract: a run is a pure function of its config.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{Network, SimConfig};
use deadline_qos::sim_core::SimDuration;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, 0.4);
    c.warmup = SimDuration::from_us(300);
    c.measure = SimDuration::from_ms(1);
    c.seed = seed;
    c
}

#[test]
fn same_seed_same_everything() {
    let (r1, s1) = Network::new(cfg(42)).run();
    let (r2, s2) = Network::new(cfg(42)).run();
    assert_eq!(s1.events, s2.events);
    assert_eq!(s1.injected_packets, s2.injected_packets);
    assert_eq!(s1.take_over_total, s2.take_over_total);
    assert_eq!(r1.to_json(), r2.to_json());
}

#[test]
fn different_seed_different_traffic() {
    let (_, s1) = Network::new(cfg(1)).run();
    let (_, s2) = Network::new(cfg(2)).run();
    // Different arrival processes virtually guarantee different counts.
    assert_ne!(
        (s1.events, s1.injected_packets),
        (s2.events, s2.injected_packets),
        "seeds produced identical runs — RNG plumbing broken?"
    );
}

#[test]
fn truncated_run_is_prefix_deterministic() {
    let (ra, _) = Network::new(cfg(7)).run_truncated();
    let (rb, _) = Network::new(cfg(7)).run_truncated();
    assert_eq!(ra.to_json(), rb.to_json());
}
