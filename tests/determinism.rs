//! Reproducibility contract: a run is a pure function of its config —
//! and, since the partitioned runtime, of its config *only*: the worker
//! count must not change a single bit of the report.

use deadline_qos::core::Architecture;
use deadline_qos::faults::{FaultPlan, LinkImpairment, LinkSelector};
use deadline_qos::netsim::{Network, RunSummary, SimConfig, SimError, TraceSettings};
use deadline_qos::sim_core::{SimDuration, SimTime};
use deadline_qos::topology::{ClosParams, FoldedClos};
use deadline_qos::trace::export::jsonl_bytes;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, 0.4);
    c.warmup = SimDuration::from_us(300);
    c.measure = SimDuration::from_ms(1);
    c.seed = seed;
    c
}

#[test]
fn same_seed_same_everything() {
    let (r1, s1) = Network::new(cfg(42)).run();
    let (r2, s2) = Network::new(cfg(42)).run();
    assert_eq!(s1.events, s2.events);
    assert_eq!(s1.injected_packets, s2.injected_packets);
    assert_eq!(s1.take_over_total, s2.take_over_total);
    assert_eq!(r1.to_json(), r2.to_json());
}

#[test]
fn different_seed_different_traffic() {
    let (_, s1) = Network::new(cfg(1)).run();
    let (_, s2) = Network::new(cfg(2)).run();
    // Different arrival processes virtually guarantee different counts.
    assert_ne!(
        (s1.events, s1.injected_packets),
        (s2.events, s2.injected_packets),
        "seeds produced identical runs — RNG plumbing broken?"
    );
}

#[test]
fn truncated_run_is_prefix_deterministic() {
    let (ra, _) = Network::new(cfg(7)).run_truncated();
    let (rb, _) = Network::new(cfg(7)).run_truncated();
    assert_eq!(ra.to_json(), rb.to_json());
}

// ---------------------------------------------------------------------
// Serial/parallel equivalence matrix
// ---------------------------------------------------------------------

/// The fault scenarios the matrix crosses with every architecture and
/// seed. `None` = fault-free; the plans exercise the two fault paths
/// with distinct determinism hazards: epoch-fenced topology changes
/// (spine outage + repair → reroutes, drops, re-admissions) and
/// per-packet RNG draws (drop/corrupt impairment on a leaf↔spine link).
fn fault_scenarios(topo: &FoldedClos) -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("none", None),
        (
            "spine-down",
            Some(
                FaultPlan::new(0xD0)
                    .spine_down(SimTime::from_us(600), 0, topo)
                    .spine_up(SimTime::from_us(1_100), 0, topo),
            ),
        ),
        (
            "drop-impair",
            Some(FaultPlan::new(0xD1).impair(LinkImpairment {
                selector: LinkSelector::LeafSpine { leaf: 0, spine: 1 },
                drop_prob: 0.02,
                corrupt_prob: 0.01,
                credit_loss_prob: 0.0,
            })),
        ),
    ]
}

/// Every [`RunSummary`] field must agree between executors except
/// `peak_in_flight` and `partitions`: the former is a per-partition
/// arena high-water maximum (marked `aggregation: "per-partition-max"`
/// in the report JSON) whose value legitimately shifts with how the run
/// was split, and the latter *is* the split width.
fn assert_summaries_match(a: &RunSummary, b: &RunSummary, label: &str) {
    assert_eq!(a.events, b.events, "{label}: events");
    assert_eq!(a.injected_packets, b.injected_packets, "{label}: injected");
    assert_eq!(a.delivered_packets, b.delivered_packets, "{label}: delivered");
    assert_eq!(a.out_of_order, b.out_of_order, "{label}: out_of_order");
    assert_eq!(a.broken_messages, b.broken_messages, "{label}: broken");
    assert_eq!(a.residual_packets, b.residual_packets, "{label}: residual");
    assert_eq!(a.take_over_total, b.take_over_total, "{label}: take_over");
    assert_eq!(a.order_errors, b.order_errors, "{label}: order_errors");
    assert_eq!(a.admission_fallbacks, b.admission_fallbacks, "{label}: fallbacks");
    assert_eq!(a.offered_messages, b.offered_messages, "{label}: offered");
    assert_eq!(a.dropped_packets, b.dropped_packets, "{label}: dropped");
    assert_eq!(a.corrupted_packets, b.corrupted_packets, "{label}: corrupted");
    assert_eq!(a.credits_lost, b.credits_lost, "{label}: credits_lost");
    assert_eq!(a.reroutes, b.reroutes, "{label}: reroutes");
    assert_eq!(a.reroute_rejections, b.reroute_rejections, "{label}: rejections");
    assert_eq!(a.readmissions, b.readmissions, "{label}: readmissions");
    assert_eq!(a.route_invalidations, b.route_invalidations, "{label}: invalidations");
}

fn run_at(workers: usize, base: SimConfig, plan: Option<&FaultPlan>) -> (String, RunSummary) {
    let mut c = base;
    c.workers = workers;
    let net = match plan {
        Some(p) => Network::with_faults(c, p),
        None => Network::new(c),
    };
    let (report, summary) = net.try_run().expect("matrix run completes");
    (report.to_json(), summary)
}

/// The tentpole's acceptance gate: serial (workers = 1) and parallel
/// (workers = 2, the most this 2-leaf topology partitions into) produce
/// byte-identical report JSON for every architecture × seed × fault
/// scenario.
#[test]
fn parallel_matches_serial_across_arch_seed_and_faults() {
    let topo = FoldedClos::build(cfg(0).topology);
    for arch in Architecture::ALL {
        for seed in [11u64, 222, 3_333] {
            for (fault_label, plan) in fault_scenarios(&topo) {
                let label = format!("{arch:?}/seed{seed}/{fault_label}");
                eprintln!("matrix: {label}");
                let mut base = cfg(seed);
                base.arch = arch;
                let (j1, s1) = run_at(1, base, plan.as_ref());
                let (j2, s2) = run_at(2, base, plan.as_ref());
                assert_eq!(j1, j2, "{label}: report JSON diverged");
                assert_summaries_match(&s1, &s2, &label);
            }
        }
    }
}

/// Four-way partitioning on a 4-leaf network, including an
/// oversubscribed worker count (clamped to the leaf count) and a
/// truncated run (horizon stops mid-flight).
#[test]
fn wider_partitioning_and_truncation_stay_exact() {
    let mut base = cfg(99);
    base.topology = ClosParams::scaled(32);
    let (j1, s1) = run_at(1, base, None);
    for workers in [2usize, 4, 64] {
        let (jw, sw) = run_at(workers, base, None);
        assert_eq!(j1, jw, "workers={workers}: report JSON diverged");
        assert_summaries_match(&s1, &sw, &format!("workers={workers}"));
    }
    let mut t1 = base;
    t1.workers = 1;
    let mut t4 = base;
    t4.workers = 4;
    let (r1, c1) = Network::new(t1).run_truncated();
    let (r4, c4) = Network::new(t4).run_truncated();
    assert_eq!(r1.to_json(), r4.to_json(), "truncated reports diverged");
    assert_eq!(c1.events, c4.events, "truncated event counts diverged");
}

/// The 8-worker row: a 64-host (8-leaf) network partitioned all the
/// way out, crossed with the fault scenarios and with tracing enabled —
/// the widest free-running configuration the matrix exercises. Reports
/// (trace section included) and exported trace bytes must match the
/// serial oracle bit for bit.
#[test]
fn eight_workers_match_serial_with_faults_and_tracing() {
    let mut base = cfg(77);
    base.topology = ClosParams::scaled(64);
    let topo = FoldedClos::build(base.topology);
    for (fault_label, plan) in fault_scenarios(&topo) {
        for trace_on in [false, true] {
            let label = format!("{fault_label}/trace={trace_on}");
            eprintln!("8-worker matrix: {label}");
            let mut c = base;
            if trace_on {
                c.trace = TraceSettings::on();
            }
            let run = |workers: usize| {
                let mut c = c;
                c.workers = workers;
                let net = match plan.as_ref() {
                    Some(p) => Network::with_faults(c, p),
                    None => Network::new(c),
                };
                let (report, summary, trace) =
                    net.try_run_traced().expect("matrix run completes");
                (report.to_json(), summary, jsonl_bytes(&trace))
            };
            let (j1, s1, t1) = run(1);
            let (j8, s8, t8) = run(8);
            assert_eq!(j1, j8, "{label}: report JSON diverged at 8 workers");
            assert_summaries_match(&s1, &s8, &label);
            assert_eq!(t1, t8, "{label}: trace bytes diverged at 8 workers");
            assert_eq!(s8.partitions, 8, "{label}: expected an 8-way split");
        }
    }
}

/// A zero-lookahead neighbour configuration must be *rejected up
/// front* with [`SimError::Config`], not deadlock the safe-time
/// ratchet: with `wire_delay = credit_delay = 0` no partition edge can
/// ever promise its neighbours a minimum latency, so the free-running
/// executor has nothing to advance on.
#[test]
fn zero_lookahead_config_errors_instead_of_deadlocking() {
    let mut c = cfg(3);
    c.wire_delay = SimDuration::ZERO;
    c.credit_delay = SimDuration::ZERO;
    c.workers = 2;
    match Network::new(c).try_run() {
        Err(SimError::Config { detail }) => {
            assert!(
                detail.contains("lookahead"),
                "Config detail should name the zero-lookahead edge: {detail}"
            );
        }
        Err(e) => panic!("expected SimError::Config, got {e}"),
        Ok(_) => panic!("zero-lookahead parallel run succeeded — ratchet cannot be sound"),
    }
}

/// Random clock offsets must not perturb equivalence: local-time
/// translation happens inside partitions, TTDs cross between them.
#[test]
fn parallel_matches_serial_under_clock_offsets() {
    let mut base = cfg(5);
    base.clocks = deadline_qos::netsim::ClockOffsets::RandomUpTo(1_000_000);
    let (j1, s1) = run_at(1, base, None);
    let (j2, s2) = run_at(2, base, None);
    assert_eq!(j1, j2, "clock offsets broke serial/parallel equivalence");
    assert_summaries_match(&s1, &s2, "clock-offsets");
}
