//! Paper conformance at test scale: the quantitative claims of Table 1
//! and Figures 2/3/4 (Martínez et al., IPPS 2007), asserted on a 16-host
//! network at 100 % load.
//!
//! EXPERIMENTS.md records the full measured sweeps at this scale
//! (16 hosts, 12 ms warm-up); the assertion margins here are set from
//! those measurements with generous slack, so the suite pins the *shape*
//! of each figure — class shares, architecture orderings, the 10 ms
//! video plateau, the weighted best-effort split — not exact samples.
//!
//! One run per architecture serves all four checks; the four runs are
//! independent simulations and execute in parallel via the experiment
//! harness.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{run_load_sweep, SimConfig};
use deadline_qos::sim_core::SimDuration;
use deadline_qos::stats::Report;
use deadline_qos::topology::ClosParams;

const CLASSES: [&str; 4] = ["Control", "Multimedia", "Best-effort", "Background"];

/// 16 hosts, paper parameters, full load. Warm-up must exceed the 10 ms
/// multimedia frame-latency pipeline (fig. 3's plateau) so the window
/// sees steady state; 6 ms of measurement keeps the suite affordable
/// while staying statistically close to EXPERIMENTS.md's 10 ms windows.
fn conformance_cfg(arch: Architecture, load: f64) -> SimConfig {
    let mut c = SimConfig::bench(arch, load);
    c.topology = ClosParams::scaled(16);
    c.warmup = SimDuration::from_ms(12);
    c.measure = SimDuration::from_ms(6);
    c
}

fn class<'r>(r: &'r Report, name: &str) -> &'r deadline_qos::stats::ClassStats {
    r.class(name)
        .unwrap_or_else(|| panic!("report lacks class {name:?}"))
}

/// Average packet latency, ns.
fn avg_packet_latency(r: &Report, name: &str) -> f64 {
    class(r, name).packet_latency.mean()
}

/// Average message (frame) latency, ms.
fn avg_frame_latency_ms(r: &Report, name: &str) -> f64 {
    class(r, name).message_latency.mean() / 1e6
}

/// Delivered throughput over the window, bytes (unit cancels in ratios).
fn delivered_bytes(r: &Report, name: &str) -> f64 {
    class(r, name).delivered.bytes() as f64
}

#[test]
fn table1_shares_and_figure_orderings_hold_at_16_hosts() {
    let results = run_load_sweep(&Architecture::ALL, &[1.0], conformance_cfg);
    let report_of = |arch: Architecture| -> &Report {
        &results
            .iter()
            .find(|r| r.arch == arch)
            .unwrap_or_else(|| panic!("sweep lacks {arch:?}"))
            .points[0]
            .report
    };

    // Basic health of every run first: the orderings below are
    // meaningless if the fabric misbehaved.
    for r in &results {
        let s = &r.points[0].summary;
        assert_eq!(s.out_of_order, 0, "{:?}: out-of-order deliveries", r.arch);
        assert_eq!(s.broken_messages, 0, "{:?}: broken messages", r.arch);
        assert!(s.delivered_packets > 0, "{:?}: no traffic", r.arch);
    }

    // ----- Table 1: each class offers 25 % of injected bandwidth -------
    // (measured 24.1–26.1 %; the paper's ±6 % tolerance ⇒ [19 %, 31 %]).
    // Offered traffic is architecture-independent, but asserting per
    // architecture is free and catches stamping-path regressions.
    for r in &results {
        let report = &r.points[0].report;
        let total: f64 = CLASSES.iter().map(|c| class(report, c).offered.bytes() as f64).sum();
        assert!(total > 0.0, "{:?}: no offered traffic", r.arch);
        for name in CLASSES {
            let share = class(report, name).offered.bytes() as f64 / total;
            assert!(
                (0.19..=0.31).contains(&share),
                "{:?}: {name} offered share {:.1}% outside 25% ± 6%",
                r.arch,
                share * 100.0
            );
        }
    }

    // ----- Figure 2: control latency orderings at 100 % load -----------
    // Measured (µs): Traditional 141.05, Ideal 11.59, Simple 14.11
    // (+21.8 % vs Ideal), Advanced 11.65 (+0.5 %).
    let trad = avg_packet_latency(report_of(Architecture::Traditional2Vc), "Control");
    let ideal = avg_packet_latency(report_of(Architecture::Ideal), "Control");
    let simple = avg_packet_latency(report_of(Architecture::Simple2Vc), "Control");
    let advanced = avg_packet_latency(report_of(Architecture::Advanced2Vc), "Control");
    assert!(ideal > 0.0);
    assert!(
        trad > 2.0 * ideal,
        "fig2: Traditional ({:.2}µs) not well above Ideal ({:.2}µs)",
        trad / 1e3,
        ideal / 1e3
    );
    assert!(
        simple > 1.02 * ideal && simple < 1.8 * ideal,
        "fig2: Simple ({:.2}µs) not a modest penalty over Ideal ({:.2}µs); paper says ≈ +25%",
        simple / 1e3,
        ideal / 1e3
    );
    assert!(
        advanced < 1.15 * ideal,
        "fig2: Advanced ({:.2}µs) not ≈ Ideal ({:.2}µs); paper says ≈ +5%",
        advanced / 1e3,
        ideal / 1e3
    );
    assert!(
        advanced < simple,
        "fig2: Advanced ({:.2}µs) must beat Simple ({:.2}µs)",
        advanced / 1e3,
        simple / 1e3
    );

    // ----- Figure 3: the 10 ms video frame plateau ----------------------
    // EDF architectures pace frames to the configured 10 ms target
    // (measured 9.99–10.00 ms); Traditional delivers fast but unpaced
    // (measured 0.18 ms at 100 % load).
    for arch in [Architecture::Ideal, Architecture::Simple2Vc, Architecture::Advanced2Vc] {
        let frame = avg_frame_latency_ms(report_of(arch), "Multimedia");
        assert!(
            (9.0..=11.0).contains(&frame),
            "fig3: {arch:?} frame latency {frame:.2}ms off the 10ms plateau"
        );
    }
    let trad_frame = avg_frame_latency_ms(report_of(Architecture::Traditional2Vc), "Multimedia");
    assert!(
        trad_frame < 2.0,
        "fig3: Traditional frame latency {trad_frame:.2}ms; expected fast (≈0.2ms), unpaced"
    );

    // ----- Figure 4: weighted best-effort split -------------------------
    // Record weights are 2:1 (BE 1/3 of link, BG 1/6). Traditional
    // cannot tell the classes apart (measured BE:BG 0.96); every EDF
    // architecture splits by weight (measured ≈ 1.55 at 100 % load).
    let ratio = |arch: Architecture| {
        let r = report_of(arch);
        delivered_bytes(r, "Best-effort") / delivered_bytes(r, "Background")
    };
    let trad_ratio = ratio(Architecture::Traditional2Vc);
    assert!(
        (0.8..=1.25).contains(&trad_ratio),
        "fig4: Traditional BE:BG {trad_ratio:.2} should be ≈ 1 (classes look the same)"
    );
    for arch in [Architecture::Ideal, Architecture::Simple2Vc, Architecture::Advanced2Vc] {
        let edf_ratio = ratio(arch);
        assert!(
            edf_ratio > 1.3 && edf_ratio < 2.2,
            "fig4: {arch:?} BE:BG {edf_ratio:.2} not tracking the 2:1 record weights"
        );
    }
}
