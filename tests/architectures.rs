//! Qualitative shape assertions — the paper's §5 conclusions, checked at
//! reduced scale with generous tolerances (exact factors are measured by
//! the figure benches at larger scale; here we pin the *ordering*).

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{Network, SimConfig, VideoDeadlines};
use deadline_qos::sim_core::SimDuration;
use deadline_qos::stats::Report;

/// 16 hosts, full Table-1 load, windows sized for debug builds. The
/// video frame target is shortened to 2 ms so warm-up can stay short.
fn run(arch: Architecture) -> Report {
    let mut cfg = SimConfig::tiny(arch, 1.0);
    cfg.video_deadlines = VideoDeadlines::FrameSpread { target_ns: 2_000_000 };
    cfg.warmup = SimDuration::from_ms(3);
    cfg.measure = SimDuration::from_ms(4);
    let (report, summary) = Network::new(cfg).run();
    assert_eq!(summary.out_of_order, 0);
    report
}

fn control_mean(r: &Report) -> f64 {
    r.class("Control").unwrap().packet_latency.mean()
}

#[test]
fn edf_beats_traditional_for_control_latency() {
    let traditional = control_mean(&run(Architecture::Traditional2Vc));
    for arch in [Architecture::Ideal, Architecture::Simple2Vc, Architecture::Advanced2Vc] {
        let edf = control_mean(&run(arch));
        assert!(
            edf * 2.0 < traditional,
            "{arch:?}: control latency {edf} not clearly below traditional {traditional}"
        );
    }
}

#[test]
fn advanced_at_least_as_good_as_simple() {
    // §3.4: the take-over queue reduces the order-error penalty (25% →
    // 5%). At small scale the gap is noisy, so assert ordering with a
    // 5% tolerance rather than the exact factors.
    let simple = control_mean(&run(Architecture::Simple2Vc));
    let advanced = control_mean(&run(Architecture::Advanced2Vc));
    assert!(
        advanced <= simple * 1.05,
        "advanced {advanced} worse than simple {simple}"
    );
}

#[test]
fn ideal_is_the_lower_bound() {
    let ideal = control_mean(&run(Architecture::Ideal));
    for arch in [Architecture::Simple2Vc, Architecture::Advanced2Vc, Architecture::Traditional2Vc] {
        let other = control_mean(&run(arch));
        assert!(
            ideal <= other * 1.05,
            "{arch:?}: {other} beat the Ideal bound {ideal}"
        );
    }
}

#[test]
fn video_frames_land_on_target_for_edf() {
    // Frame-spread deadlines + eligible time pin frame latency to the
    // target under the EDF architectures, independent of load.
    for arch in [Architecture::Ideal, Architecture::Simple2Vc, Architecture::Advanced2Vc] {
        let r = run(arch);
        let mm = r.class("Multimedia").unwrap();
        let mean_ms = mm.message_latency.mean() / 1e6;
        assert!(
            (mean_ms - 2.0).abs() < 0.25,
            "{arch:?}: frame latency {mean_ms} ms, target 2 ms"
        );
        assert!(
            mm.message_latency.fraction_at_or_below(2_400_000) > 0.97,
            "{arch:?}: frames scattered away from the target"
        );
    }
    // Traditional has no pacing: frames arrive when they arrive.
    let r = run(Architecture::Traditional2Vc);
    let mean_ms = r.class("Multimedia").unwrap().message_latency.mean() / 1e6;
    assert!(mean_ms < 1.0, "traditional should deliver frames asap, got {mean_ms} ms");
}

#[test]
fn edf_differentiates_weighted_besteffort_classes() {
    let thru = |r: &Report, class: &str| {
        r.class(class).unwrap().delivered.throughput(r.window_start, r.window_end).as_gbps_f64()
    };
    // Traditional: both classes indistinguishable in VC1.
    let r = run(Architecture::Traditional2Vc);
    let ratio_trad = thru(&r, "Best-effort") / thru(&r, "Background");
    assert!(
        (0.7..1.4).contains(&ratio_trad),
        "traditional should split evenly, ratio {ratio_trad}"
    );
    // EDF: 2:1 record weights must visibly favour Best-effort.
    for arch in [Architecture::Ideal, Architecture::Advanced2Vc] {
        let r = run(arch);
        let ratio = thru(&r, "Best-effort") / thru(&r, "Background");
        assert!(
            ratio > 1.25,
            "{arch:?}: weighted classes not differentiated, ratio {ratio}"
        );
    }
}

#[test]
fn video_deadline_methods_match_section_3_1() {
    // §3.1's comparison, pinned at the stamping layer where it is exact:
    // under pacing, a frame's effective latency is its last part's
    // deadline. Frame-spread makes it size-independent; the two rejected
    // methods make it proportional to frame size (with the
    // average-bandwidth variant catastrophically slow for large frames).
    use deadline_qos::core::{segment_message, DeadlineMode, Stamper};
    use deadline_qos::sim_core::{Bandwidth, SimTime};

    let frame_latency = |mode: DeadlineMode, frame_bytes: u64| -> f64 {
        let mut s = Stamper::new(mode);
        let parts = segment_message(frame_bytes, 2048);
        let stamps = s.stamp_message(SimTime::ZERO, &parts);
        stamps.last().unwrap().deadline.as_ns() as f64 / 1e6 // ms
    };

    let spread = DeadlineMode::FrameSpread { target: SimDuration::from_ms(10) };
    let avg = DeadlineMode::AvgBandwidth(Bandwidth::bytes_per_sec(400_000));
    let peak = DeadlineMode::AvgBandwidth(Bandwidth::mbytes_per_sec(3));

    let small = 2 * 1024;
    let large = 120 * 1024;

    // Frame-spread: both frame sizes due ~10 ms out.
    assert!((frame_latency(spread, small) - 10.0).abs() < 0.1);
    assert!((frame_latency(spread, large) - 10.0).abs() < 0.1);

    // Average bandwidth: the 120 KiB frame is due ~307 ms out —
    // "intolerable delays" during peak-rate periods.
    let avg_large = frame_latency(avg, large);
    assert!(avg_large > 250.0, "avg-bw large frame: {avg_large} ms");

    // Peak bandwidth: latency proportional to size (small frames finish
    // very early = unnecessary bursts; large ~40 ms), and frame latency
    // varies with size — the paper's two objections.
    let peak_small = frame_latency(peak, small);
    let peak_large = frame_latency(peak, large);
    assert!(peak_small < 1.0, "peak-bw small frame: {peak_small} ms");
    assert!(
        peak_large / peak_small > 20.0,
        "peak-bw latency should scale with size: {peak_small} vs {peak_large}"
    );
}
