//! Degraded-mode QoS: the fault-injection subsystem end to end.
//!
//! Covers the PR's acceptance contract:
//! * an **empty** fault plan is bit-identical to a run without any fault
//!   machinery (same events, same JSON report, no `faults` section);
//! * seeded plans are bit-reproducible run to run;
//! * the `ablation_spines` configurations (4/2/1 spines) keep the
//!   conservation / ordering / lossless invariants as tier-1 tests;
//! * a mid-run spine failure completes without panicking: reserved flows
//!   re-route over surviving spines, the repair re-admits revoked flows,
//!   and the report grows a fault section;
//! * an induced credit deadlock trips the stall watchdog with a
//!   diagnostic snapshot instead of hanging.

use deadline_qos::core::Architecture;
use deadline_qos::faults::{FaultPlan, LinkImpairment, LinkSelector, NodeRef};
use deadline_qos::netsim::{Network, SimConfig, SimError};
use deadline_qos::sim_core::{SimDuration, SimRng, SimTime};
use deadline_qos::topology::{ClosParams, FoldedClos};

fn cfg(seed: u64, load: f64) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, load);
    c.warmup = SimDuration::from_us(500);
    c.measure = SimDuration::from_ms(3);
    c.seed = seed;
    c
}

#[test]
fn empty_plan_is_bit_identical_and_reports_no_faults() {
    let c = cfg(0xFA_11, 0.5);
    let (r1, s1) = Network::new(c).run();
    let (r2, s2) = Network::with_faults(c, &FaultPlan::default()).run();
    assert_eq!(s1.events, s2.events);
    assert_eq!(r1.to_json(), r2.to_json());
    assert!(r2.faults.is_none(), "empty plan must not grow a fault section");
    assert_eq!(s2.dropped_packets, 0);
    assert_eq!(s2.credits_lost, 0);
}

#[test]
fn oversubscribed_spine_counts_keep_invariants() {
    // The ablation_spines bench configurations, promoted to tier-1
    // correctness tests: shrinking the bisection must never break
    // conservation, ordering, or losslessness — only slow things down.
    for spines in [4u16, 2, 1] {
        let mut c = cfg(0x5905 + spines as u64, 0.5);
        c.topology = ClosParams { hosts_per_leaf: 8, leaves: 2, spines };
        let (report, summary) = Network::new(c).run();
        summary.check().unwrap_or_else(|e| panic!("{spines} spines: {e}"));
        assert_eq!(summary.out_of_order, 0, "{spines} spines reordered");
        assert_eq!(summary.injected_packets, summary.delivered_packets);
        assert!(report.class("Control").is_some());
    }
}

#[test]
fn mid_run_spine_failure_reroutes_and_repair_readmits() {
    let c = cfg(0xDE_AD, 0.6);
    let topo = FoldedClos::build(c.topology);
    let plan = FaultPlan::new(7)
        .spine_down(SimTime::from_ms(1), 0, &topo)
        .spine_up(SimTime::from_ms(2), 0, &topo);
    let (report, summary) = Network::with_faults(c, &plan).try_run().expect("degraded run");
    summary.check().expect("degraded invariants");
    assert!(summary.reroutes > 0, "no reserved flow crossed spine 0? {summary:?}");
    let f = report.faults.as_ref().expect("fault section present");
    assert_eq!(f.reroutes, summary.reroutes);
    assert_eq!(f.reroute_rejections, summary.reroute_rejections);
    // Packets queued towards the dead spine at failure time are lost;
    // conservation absorbs them as drops, not as missing packets.
    assert_eq!(
        summary.injected_packets,
        summary.delivered_packets + summary.dropped_packets + summary.corrupted_packets
    );
}

#[test]
fn seeded_plans_are_bit_reproducible() {
    let c = cfg(0x0BAD, 0.5);
    let topo = FoldedClos::build(c.topology);
    let plan = || {
        FaultPlan::new(99)
            .spine_down(SimTime::from_ms(1), 1, &topo)
            .spine_up(SimTime::from_ms(2), 1, &topo)
            .impair(LinkImpairment {
                selector: LinkSelector::LeafSpine { leaf: 0, spine: 2 },
                drop_prob: 0.02,
                corrupt_prob: 0.01,
                credit_loss_prob: 0.0,
            })
    };
    let (r1, s1) = Network::with_faults(c, &plan()).try_run().unwrap();
    let (r2, s2) = Network::with_faults(c, &plan()).try_run().unwrap();
    assert_eq!(s1.events, s2.events);
    assert_eq!(s1.dropped_packets, s2.dropped_packets);
    assert_eq!(s1.corrupted_packets, s2.corrupted_packets);
    assert_eq!(r1.to_json(), r2.to_json());
}

#[test]
fn lossy_link_surfaces_per_class_loss_not_asserts() {
    let c = cfg(0xC4C, 0.5);
    let plan = FaultPlan::new(3).impair(LinkImpairment {
        selector: LinkSelector::LeafSpine { leaf: 0, spine: 0 },
        drop_prob: 0.05,
        corrupt_prob: 0.05,
        credit_loss_prob: 0.0,
    });
    let (report, summary) = Network::with_faults(c, &plan).try_run().expect("lossy run");
    summary.check().expect("loss is accounted, not a violation");
    let f = report.faults.as_ref().expect("fault section");
    assert!(
        summary.dropped_packets + summary.corrupted_packets > 0,
        "a 5% impairment on a spine cable should hit something"
    );
    assert_eq!(f.total_dropped(), summary.dropped_packets);
    assert_eq!(f.total_corrupted(), summary.corrupted_packets);
}

#[test]
fn credit_deadlock_trips_the_watchdog() {
    let c = cfg(0xDEAD_10C5, 0.5);
    // Destroy every credit returning to host 0's NIC: its buffer
    // accounting leaks until it can no longer send, and the run can
    // never drain. The watchdog must diagnose this, not hang.
    let plan = FaultPlan::new(11).impair(LinkImpairment {
        selector: LinkSelector::HostLink(0),
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        credit_loss_prob: 1.0,
    });
    match Network::with_faults(c, &plan).try_run() {
        Err(SimError::Stall(snap)) => {
            assert!(snap.credits_lost > 0, "snapshot records the leak: {snap}");
            assert!(
                !snap.stuck_hosts.is_empty() || !snap.stuck_ports.is_empty(),
                "snapshot names the starved queues: {snap}"
            );
        }
        Err(e) => panic!("expected a stall diagnosis, got: {e}"),
        Ok((_, s)) => panic!("run drained despite a total credit leak: {s:?}"),
    }
}

/// Generate a *valid* random fault plan: every downed spine is repaired
/// before the drain, at least one spine is never touched (the fabric
/// always has a usable path), impairment probabilities stay mild, and
/// credits are never destroyed (credit loss deadlocks by design — the
/// watchdog test above covers that separately). Within those bounds the
/// shape is fully seed-driven, including "no faults at all".
fn fuzz_plan(seed: u64, c: &SimConfig, topo: &FoldedClos) -> FaultPlan {
    let mut rng = SimRng::new(seed);
    let spines = c.topology.spines;
    let n_hosts = topo.n_hosts();
    let window = (c.warmup + c.measure).as_ns();
    let mut plan = FaultPlan::new(seed ^ 0xfa_17);

    // Timed spine outages: distinct spines, spine `spines-1` reserved
    // as the always-up escape path, down in [10%, 50%] of the window
    // and repaired in (down, 80%].
    let max_pairs = (spines.saturating_sub(1) as u64).min(2);
    let n_pairs = rng.range_u64(0, max_pairs);
    let mut victims: Vec<u16> = Vec::new();
    for _ in 0..n_pairs {
        let s = rng.range_u64(0, spines as u64 - 2) as u16;
        if victims.contains(&s) {
            continue;
        }
        victims.push(s);
        let down = rng.range_u64(window / 10, window / 2);
        let up = rng.range_u64(down + 1, window * 4 / 5);
        plan = plan
            .spine_down(SimTime::from_ns(down), s, topo)
            .spine_up(SimTime::from_ns(up), s, topo);
    }

    // Mild stochastic impairments on leaf-spine cables or host links.
    for _ in 0..rng.range_u64(0, 2) {
        let selector = if rng.chance(0.5) {
            LinkSelector::LeafSpine {
                leaf: rng.range_u64(0, c.topology.leaves as u64 - 1) as u16,
                spine: rng.range_u64(0, spines as u64 - 1) as u16,
            }
        } else {
            LinkSelector::HostLink(rng.range_u64(0, n_hosts as u64 - 1) as u32)
        };
        plan = plan.impair(LinkImpairment {
            selector,
            drop_prob: rng.range_u64(0, 30) as f64 / 1000.0,
            corrupt_prob: rng.range_u64(0, 20) as f64 / 1000.0,
            credit_loss_prob: 0.0,
        });
    }

    // Clock drift on a few nodes, within the TTD ablation's range.
    for _ in 0..rng.range_u64(0, 2) {
        let node = if rng.chance(0.5) {
            NodeRef::Host(rng.range_u64(0, n_hosts as u64 - 1) as u32)
        } else {
            NodeRef::Switch(rng.range_u64(0, c.topology.leaves as u64 - 1) as u32)
        };
        let ppm = rng.range_u64(0, 600) as i32 - 300;
        plan = plan.with_drift(node, ppm);
    }
    plan
}

#[test]
fn fuzzed_plans_complete_deterministically_without_stalls() {
    // The seeded-generator smoke over the determinism matrix: every
    // valid plan must (a) complete without panicking, (b) never trip
    // the stall watchdog (a valid plan always leaves an escape path and
    // never leaks credits), (c) keep the conservation accounting, and
    // (d) reproduce bit-for-bit when re-run.
    for fuzz_seed in [1u64, 7, 23, 0xFEED] {
        let c = cfg(0xF0 ^ fuzz_seed, 0.5);
        let topo = FoldedClos::build(c.topology);
        let plan = fuzz_plan(fuzz_seed, &c, &topo);
        let run = || match Network::with_faults(c, &plan).try_run() {
            Ok(pair) => pair,
            Err(SimError::Stall(snap)) => {
                panic!("seed {fuzz_seed}: valid plan stalled the fabric\n{snap}\nplan: {plan:?}")
            }
            Err(e) => panic!("seed {fuzz_seed}: {e}\nplan: {plan:?}"),
        };
        let (r1, s1) = run();
        s1.check().unwrap_or_else(|e| panic!("seed {fuzz_seed}: {e}"));
        assert_eq!(
            s1.injected_packets,
            s1.delivered_packets + s1.dropped_packets + s1.corrupted_packets,
            "seed {fuzz_seed}: conservation"
        );
        let (r2, s2) = run();
        assert_eq!(s1.events, s2.events, "seed {fuzz_seed}: event count diverged");
        assert_eq!(r1.to_json(), r2.to_json(), "seed {fuzz_seed}: report diverged");
    }
}

#[test]
fn fuzz_generator_empty_roll_is_bit_for_bit_inert() {
    // When every count in the generator rolls zero the plan is empty,
    // and an empty plan must be indistinguishable from no fault
    // machinery at all — same events, same report, no faults section.
    let c = cfg(0x1E47, 0.5);
    let topo = FoldedClos::build(c.topology);
    let empty = FaultPlan { timed: Vec::new(), impairments: Vec::new(), drift: Vec::new(), ..fuzz_plan(0, &c, &topo) };
    assert!(empty.is_empty());
    let (r1, s1) = Network::new(c).run();
    let (r2, s2) = Network::with_faults(c, &empty).run();
    assert_eq!(s1.events, s2.events);
    assert_eq!(r1.to_json(), r2.to_json());
    assert!(r2.faults.is_none());
}

#[test]
fn clock_drift_does_not_break_correctness() {
    let c = cfg(0xD81F7, 0.5);
    let plan = FaultPlan::new(5)
        .with_drift(NodeRef::Host(0), 200)
        .with_drift(NodeRef::Host(3), -150)
        .with_drift(NodeRef::Switch(0), 80);
    let (report, summary) = Network::with_faults(c, &plan).try_run().expect("drifted run");
    summary.check().expect("drift must not lose or reorder packets");
    assert_eq!(summary.dropped_packets, 0);
    // Drifted clocks can mis-time deadlines (that is the point of the
    // TTD ablation) but the fabric itself stays lossless and ordered.
    assert!(report.faults.is_some());
}
