//! Tier-1 chaos gate for the dqos-d daemon (DESIGN.md §11).
//!
//! The contract this file enforces, end to end over the deterministic
//! loopback transport (no sockets, no wall clock, no filesystem):
//!
//! * a seeded churn soak — many concurrent clients doing flow
//!   setup/stamp/teardown/query under transport drop/duplicate/reorder
//!   faults — converges, and mid-churn kill+recover cycles restore the
//!   admission controller to the **bit-identical** control digest the
//!   doomed daemon held at the kill point;
//! * torn-journal recovery: truncating the write-ahead journal at
//!   arbitrary byte offsets and replaying always reconstructs exactly
//!   the state of the longest scan-valid record prefix;
//! * under overload the daemon sheds best-effort work with explicit
//!   retryable errors while guaranteed-class admission latency stays
//!   within its deadline budget;
//! * every one of the above is byte-for-byte reproducible per seed.
//!
//! `scripts/check.sh` runs this suite explicitly next to the
//! paper-conformance and trace-determinism gates.

use dqosd::chaos::{run_soak, verify_recovery_offsets, SoakConfig};

/// Churn soak with kills: completes, recovers exactly `kills` times, and
/// the whole report is deterministic per seed (and seed-sensitive).
#[test]
fn churn_soak_with_kills_is_deterministic_and_recovers() {
    let cfg = SoakConfig::small(0xD_0A_2026);
    let a = run_soak(&cfg).expect("soak run 1");
    let b = run_soak(&cfg).expect("soak run 2");

    // Same seed: bit-identical outcome, down to the journal bytes.
    assert_eq!(a.digest, b.digest, "control digest must be seed-deterministic");
    assert_eq!(a.final_store.journal, b.final_store.journal);
    assert_eq!(
        (a.completed, a.gave_up, a.retries, a.served, a.faults),
        (b.completed, b.gave_up, b.retries, b.served, b.faults),
        "per-seed counters must not drift between runs"
    );

    // The kill schedule fired mid-churn and every recovery replayed the
    // journal back to the doomed daemon's exact digest (run_soak errors
    // with DigestMismatch otherwise).
    assert_eq!(a.recoveries, cfg.kills, "every scheduled kill must recover");
    assert!(a.served > 0, "daemon served no requests");
    assert!(a.completed > 0, "no client operation completed");

    // A different seed must not reproduce the same run.
    let c = run_soak(&SoakConfig::small(0xD_0A_2027)).expect("soak run 3");
    assert_ne!(
        (a.digest, a.served),
        (c.digest, c.served),
        "distinct seeds produced identical soak outcomes"
    );
}

/// Torn-journal sweep: recovery from every truncation offset lands on the
/// digest recorded for the longest valid record prefix.
#[test]
fn torn_journal_recovery_is_bit_identical_at_every_offset() {
    let sweep = verify_recovery_offsets(&SoakConfig::small(0xBEE5), 16)
        .expect("offset sweep");
    assert!(sweep.offsets_checked >= 16, "sweep checked too few offsets");
    assert!(sweep.records_replayed > 0, "sweep replayed no journal records");
    assert!(sweep.soak.journal_bytes > 0, "soak left an empty journal");
}

/// Overload: best-effort traffic is shed with retryable errors while the
/// guaranteed class keeps meeting its admission deadline budget.
#[test]
fn overload_sheds_best_effort_and_keeps_guaranteed_within_budget() {
    let cfg = SoakConfig::overload(0x10AD);
    let r = run_soak(&cfg).expect("overload soak");
    assert!(r.shed_overload > 0, "overload never shed best-effort work");
    assert!(
        r.retryable_errors > 0,
        "shed requests must surface as explicit retryable errors"
    );
    assert!(r.admits > 0, "no guaranteed admission was served");
    assert!(
        r.admit_max_ns <= cfg.budget_guaranteed_ns,
        "guaranteed admission latency {}ns blew the {}ns budget",
        r.admit_max_ns,
        cfg.budget_guaranteed_ns
    );
}
