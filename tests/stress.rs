//! Adversarial configurations: tiny buffers, huge buffers, extreme
//! loads, degenerate workloads. Invariants (conservation, order,
//! losslessness, drain) must hold in all of them.

use deadline_qos::core::Architecture;
use deadline_qos::netsim::{Network, SimConfig};
use deadline_qos::sim_core::SimDuration;

fn check(cfg: SimConfig, label: &str) {
    let (_, summary) = Network::new(cfg).run();
    assert_eq!(
        summary.injected_packets, summary.delivered_packets,
        "{label}: conservation"
    );
    assert_eq!(summary.out_of_order, 0, "{label}: order");
    assert_eq!(summary.broken_messages, 0, "{label}: reassembly");
    assert_eq!(summary.residual_packets, 0, "{label}: drain");
}

fn base(arch: Architecture, load: f64) -> SimConfig {
    let mut cfg = SimConfig::tiny(arch, load);
    cfg.warmup = SimDuration::from_us(200);
    cfg.measure = SimDuration::from_ms(1);
    cfg
}

#[test]
fn minimal_buffers_one_mtu() {
    // A single MTU of buffer per VC: credits serialise everything, the
    // fabric crawls, but nothing breaks.
    for arch in Architecture::ALL {
        let mut cfg = base(arch, 0.5);
        cfg.switch_buffer_per_vc = 2048;
        check(cfg, &format!("{arch:?}/1-mtu-buffers"));
    }
}

#[test]
fn odd_buffer_size_not_mtu_aligned() {
    let mut cfg = base(Architecture::Advanced2Vc, 0.6);
    cfg.switch_buffer_per_vc = 5000; // 2 full packets + change
    check(cfg, "odd-buffer");
}

#[test]
fn deep_buffers() {
    let mut cfg = base(Architecture::Simple2Vc, 0.9);
    cfg.switch_buffer_per_vc = 1 << 20;
    check(cfg, "deep-buffers");
}

#[test]
fn tiny_mtu_fragments_everything() {
    // 256-byte MTU: every video frame becomes dozens of parts; message
    // reassembly and per-flow ordering get a workout.
    let mut cfg = base(Architecture::Advanced2Vc, 0.3);
    cfg.mtu = 256;
    check(cfg, "tiny-mtu");
}

#[test]
fn zero_wire_delay() {
    let mut cfg = base(Architecture::Ideal, 0.5);
    cfg.wire_delay = SimDuration::ZERO;
    cfg.credit_delay = SimDuration::ZERO;
    check(cfg, "zero-delays");
}

#[test]
fn slow_credits() {
    // Credit round-trip of 10 us >> serialisation time: throughput
    // collapses but invariants stand.
    let mut cfg = base(Architecture::Simple2Vc, 0.4);
    cfg.credit_delay = SimDuration::from_us(10);
    check(cfg, "slow-credits");
}

#[test]
fn sustained_overload() {
    // 100% offered on every host for a longer window: queues saturate
    // everywhere; the lossless fabric must neither drop nor reorder.
    for arch in [Architecture::Traditional2Vc, Architecture::Advanced2Vc] {
        let mut cfg = base(arch, 1.0);
        cfg.measure = SimDuration::from_ms(3);
        check(cfg, &format!("{arch:?}/overload"));
    }
}

#[test]
fn no_eligible_time_under_overload() {
    // Without smoothing, injection bursts maximise order errors — the
    // worst case for the take-over queue's invariants.
    let mut cfg = base(Architecture::Advanced2Vc, 1.0);
    cfg.eligible_lead_ns = None;
    check(cfg, "no-eligible-overload");
}

#[test]
fn many_seeds_conserve() {
    // A cheap randomised sweep standing in for a netsim-level proptest
    // (full shrinking would be too slow in debug builds).
    for seed in [1u64, 7, 42, 1337, 0xDEAD] {
        let mut cfg = base(Architecture::Advanced2Vc, 0.7);
        cfg.seed = seed;
        check(cfg, &format!("seed-{seed}"));
    }
}
