//! **Figure 3** — Multimedia traffic: (a) average *frame* latency vs
//! load (the EDF architectures plateau at the configured 10 ms target),
//! (b) frame-latency CDF at the highest load (the paper reports > 99 %
//! of frames within the target for the EDF designs), plus per-class
//! jitter (the paper: Traditional "would introduce a lot of jitter").
//!
//! Run: `cargo bench -p dqos-bench --bench fig3_video`

use dqos_bench::{print_cdf, print_series, run_sweep, BenchEnv};
use dqos_core::Architecture;

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "=== Figure 3: Multimedia (video) traffic ({} hosts, {} ms window) ===",
        env.hosts, env.measure_ms
    );
    let sweep = run_sweep(&env);

    print_series(
        "Figure 3a: video average frame latency vs load",
        "ms",
        &sweep,
        &env.loads,
        |r| r.class("Multimedia").unwrap().message_latency.mean() / 1e6,
    );
    print_series(
        "Figure 3a': video p99 frame latency vs load",
        "ms",
        &sweep,
        &env.loads,
        |r| r.class("Multimedia").unwrap().message_latency.quantile(0.99) as f64 / 1e6,
    );
    print_series(
        "Figure 3b: video throughput vs load",
        "Gb/s",
        &sweep,
        &env.loads,
        |r| {
            r.class("Multimedia")
                .unwrap()
                .delivered
                .throughput(r.window_start, r.window_end)
                .as_gbps_f64()
        },
    );
    print_series(
        "Video frame jitter (latency std-dev, pooled over streams) vs load",
        "us",
        &sweep,
        &env.loads,
        |r| r.class("Multimedia").unwrap().jitter.std_dev() / 1e3,
    );
    // Per-stream |delta latency| needs at least two frames per stream in
    // the window: meaningful only when DQOS_MEASURE_MS >= ~2 frame
    // periods (80 ms).
    print_series(
        "Video frame jitter (per-stream mean |delta|; needs >=80 ms windows) vs load",
        "us",
        &sweep,
        &env.loads,
        |r| r.class("Multimedia").unwrap().jitter.mean_abs_delta() / 1e3,
    );
    print_cdf(
        "Figure 3c: video frame latency",
        &sweep,
        env.max_load(),
        1e6,
        "ms",
        24,
        |r| &r.class("Multimedia").unwrap().message_latency,
    );

    // The paper's claim: for the EDF architectures the probability of a
    // frame latency <= ~the 10 ms target exceeds 99 %.
    println!("\n## Fraction of frames within the 10 ms target (+5% slack) @ {:.0}% load", env.max_load() * 100.0);
    for arch in Architecture::ALL {
        let r = sweep
            .iter()
            .find(|(a, l, _, _)| *a == arch && *l == env.max_load())
            .map(|(_, _, r, _)| r)
            .unwrap();
        let hist = &r.class("Multimedia").unwrap().message_latency;
        println!(
            "{:<18} {:>7.3}% of {} frames",
            arch.label(),
            hist.fraction_at_or_below(10_500_000) * 100.0,
            hist.count()
        );
    }
}
