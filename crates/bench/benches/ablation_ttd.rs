//! **Ablation — TTD clock transport (§3.3).**
//!
//! The paper's claim: carrying relative deadlines (time-to-destination)
//! in headers makes global clock synchronisation unnecessary. Here the
//! same simulation runs with perfectly synced clocks and with arbitrary
//! per-node offsets up to 1 ms; the reports must be **bit-identical**.
//!
//! Run: `cargo bench -p dqos-bench --bench ablation_ttd`

use dqos_bench::BenchEnv;
use dqos_core::Architecture;
use dqos_netsim::{run_one, ClockOffsets};

fn main() {
    let env = BenchEnv::from_env();
    let load = env.max_load();
    println!(
        "=== Ablation: TTD vs clock synchronisation ({} hosts @ {:.0}% load) ===",
        env.hosts,
        load * 100.0
    );
    for arch in [Architecture::Advanced2Vc, Architecture::Ideal] {
        let mut synced = env.config(arch, load);
        synced.clocks = ClockOffsets::Synced;
        let mut skewed = env.config(arch, load);
        skewed.clocks = ClockOffsets::RandomUpTo(1_000_000); // up to 1 ms apart

        let (r_synced, s_synced) = run_one(synced);
        let (r_skewed, s_skewed) = run_one(skewed);

        let identical = r_synced.to_json() == r_skewed.to_json()
            && s_synced.events == s_skewed.events
            && s_synced.injected_packets == s_skewed.injected_packets;
        println!(
            "{:<18} events {:>12} | skewed {:>12} | reports identical: {identical}",
            arch.label(),
            s_synced.events,
            s_skewed.events
        );
        assert!(
            identical,
            "{}: TTD transport failed to hide clock offsets",
            arch.label()
        );
    }
    println!("\nOK: results are invariant to per-node clock offsets (no synchronisation needed).");
}
