//! **Micro-bench — simulation kernel.**
//!
//! Measures the discrete-event calendar (schedule+pop churn) and the
//! end-to-end event rate of a small full-network simulation — the number
//! that bounds how much simulated time a wall-clock second buys.
//!
//! Run: `cargo bench -p dqos-bench --bench event_kernel`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dqos_core::Architecture;
use dqos_netsim::{Network, SimConfig};
use dqos_sim_core::{EventQueue, SimRng, SimTime};
use std::hint::black_box;

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for pending in [64usize, 4096] {
        group.throughput(Throughput::Elements(100_000));
        group.bench_with_input(
            BenchmarkId::new("schedule_pop", pending),
            &pending,
            |b, &pending| {
                let mut rng = SimRng::new(1);
                let jitter: Vec<u64> = (0..100_000).map(|_| rng.range_u64(1, 5_000)).collect();
                b.iter(|| {
                    let mut q = EventQueue::with_capacity(pending * 2);
                    // Pre-fill.
                    for i in 0..pending {
                        q.schedule(SimTime::from_ns(i as u64), i as u64);
                    }
                    // Steady-state churn.
                    let mut out = 0u64;
                    for &j in &jitter {
                        let e = q.pop().expect("non-empty");
                        out ^= e.payload;
                        q.schedule(e.time + dqos_sim_core::SimDuration::from_ns(j), e.payload);
                    }
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_sim");
    group.sample_size(10);
    for arch in [Architecture::Traditional2Vc, Architecture::Advanced2Vc] {
        group.bench_function(BenchmarkId::new("tiny_2ms", arch.slug()), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::tiny(arch, 0.5);
                cfg.warmup = dqos_sim_core::SimDuration::from_us(100);
                cfg.measure = dqos_sim_core::SimDuration::from_ms(2);
                let (_, summary) = Network::new(cfg).run();
                black_box(summary.events)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_calendar, bench_full_sim
}
criterion_main!(benches);
