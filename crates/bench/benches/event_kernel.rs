//! **Micro-bench — simulation kernel.**
//!
//! Measures the discrete-event calendar (schedule+pop churn) against the
//! reference binary heap, the cost of moving whole packets through the
//! calendar versus arena handles, and the end-to-end event rate of a
//! small full-network simulation — the number that bounds how much
//! simulated time a wall-clock second buys.
//!
//! Results are printed and recorded in `BENCH_kernel.json` at the repo
//! root (the events/sec baseline referenced by `scripts/check.sh`).
//!
//! Run: `cargo bench -p dqos-bench --bench event_kernel`

use dqos_bench::harness::{measure, write_json_merged, Measurement};
use dqos_bench::repo_root;
use dqos_core::{Architecture, FlowId, MsgTag, Packet, PacketArena, TrafficClass};
use dqos_netsim::{Network, SimConfig};
use dqos_sim_core::{BinaryHeapQueue, EventQueue, SimDuration, SimRng, SimTime};
use dqos_topology::{HostId, Port, PortPath};
use std::hint::black_box;

const CHURN: usize = 100_000;

/// Pre-generated jitter stream so both calendars see identical work.
fn jitter(seed: u64) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    (0..CHURN).map(|_| rng.range_u64(1, 5_000)).collect()
}

/// Hold-model churn on the bucketed calendar: pop the earliest event,
/// reschedule it a small jitter ahead, repeat. This is the steady-state
/// access pattern of the simulator's event loop.
fn churn_bucketed(pending: usize, jit: &[u64]) -> u64 {
    let mut q = EventQueue::with_capacity(pending * 2);
    for i in 0..pending {
        q.schedule(SimTime::from_ns(i as u64), i as u64);
    }
    let mut out = 0u64;
    for &j in jit {
        let e = q.pop().expect("non-empty");
        out ^= e.payload;
        q.schedule(e.time + SimDuration::from_ns(j), e.payload);
    }
    out
}

/// Identical churn on the reference binary heap.
fn churn_heap(pending: usize, jit: &[u64]) -> u64 {
    let mut q = BinaryHeapQueue::with_capacity(pending * 2);
    for i in 0..pending {
        q.schedule(SimTime::from_ns(i as u64), i as u64);
    }
    let mut out = 0u64;
    for &j in jit {
        let e = q.pop().expect("non-empty");
        out ^= e.payload;
        q.schedule(e.time + SimDuration::from_ns(j), e.payload);
    }
    out
}

fn sample_packet(id: u64) -> Packet {
    Packet {
        id,
        flow: FlowId(id as u32 & 0xFF),
        class: TrafficClass::Multimedia,
        src: HostId(0),
        dst: HostId(1),
        len: 2048,
        deadline: SimTime::from_ns(id),
        eligible: None,
        route: PortPath::new(&[Port(1), Port(2), Port(0)]),
        hop: 0,
        injected_at: SimTime::ZERO,
        msg: MsgTag { msg_id: id, part: 0, parts: 1, created_at: SimTime::ZERO },
        corrupted: false,
    }
}

/// Churn with whole packets as event payloads (the pre-arena design:
/// ~100 B moved through the calendar per hop).
fn churn_owned_packets(pending: usize, jit: &[u64]) -> u64 {
    let mut q = EventQueue::with_capacity(pending * 2);
    for i in 0..pending {
        q.schedule(SimTime::from_ns(i as u64), sample_packet(i as u64));
    }
    let mut out = 0u64;
    for &j in jit {
        let e = q.pop().expect("non-empty");
        out ^= e.payload.id;
        q.schedule(e.time + SimDuration::from_ns(j), e.payload);
    }
    out
}

/// Churn with packets parked in the arena and 4-byte handles as event
/// payloads (the shipping design).
fn churn_arena_packets(pending: usize, jit: &[u64]) -> u64 {
    let mut arena = PacketArena::with_capacity(pending * 2);
    let mut q = EventQueue::with_capacity(pending * 2);
    for i in 0..pending {
        q.schedule(SimTime::from_ns(i as u64), arena.insert(sample_packet(i as u64)));
    }
    let mut out = 0u64;
    for &j in jit {
        let e = q.pop().expect("non-empty");
        let pkt = arena.take(e.payload);
        out ^= pkt.id;
        q.schedule(e.time + SimDuration::from_ns(j), arena.insert(pkt));
    }
    out
}

/// Full-simulation event rate: run a tiny network for 2 ms of simulated
/// time and report events per wall-clock second.
///
/// Recorded as `fullsim/...` rows; the pre-token-hot-path rates live on
/// in the file as `full_sim/...` rows (the merge-writer keeps them), so
/// the struct-of-arrays win stays auditable against its own baseline.
fn full_sim_rate(arch: Architecture) -> Measurement {
    let run = || {
        let mut cfg = SimConfig::tiny(arch, 0.5);
        cfg.warmup = SimDuration::from_us(100);
        cfg.measure = SimDuration::from_ms(2);
        let (_, summary) = Network::new(cfg).run();
        summary.events
    };
    let events = run();
    measure(&format!("fullsim/tiny_2ms/{}", arch.slug()), events, 5, run)
}

fn main() {
    println!("# event kernel micro-bench ({CHURN} churn ops per repetition)\n");
    let jit = jitter(1);
    let mut results: Vec<Measurement> = Vec::new();

    // Pending-event populations from a near-idle fabric (64) up to a
    // loaded 128-host paper network (tens of thousands of wake-ups,
    // credits and serialisation completions in flight).
    let pendings = [64usize, 1024, 4096, 65536];
    for pending in pendings {
        let b = measure(&format!("event_queue/bucketed/{pending}"), CHURN as u64, 9, || {
            black_box(churn_bucketed(pending, &jit))
        });
        let h = measure(&format!("event_queue/heap/{pending}"), CHURN as u64, 9, || {
            black_box(churn_heap(pending, &jit))
        });
        println!(
            "  -> bucketed speedup over heap at {pending} pending: {:.2}x\n",
            h.ns_per_elem / b.ns_per_elem
        );
        results.push(b);
        results.push(h);
    }

    for pending in [64usize, 4096] {
        let owned = measure(&format!("packet_events/owned/{pending}"), CHURN as u64, 9, || {
            black_box(churn_owned_packets(pending, &jit))
        });
        let arena = measure(&format!("packet_events/arena/{pending}"), CHURN as u64, 9, || {
            black_box(churn_arena_packets(pending, &jit))
        });
        println!(
            "  -> arena handles vs owned packets at {pending} pending: {:.2}x\n",
            owned.ns_per_elem / arena.ns_per_elem
        );
        results.push(owned);
        results.push(arena);
    }

    // The committed file's `full_sim/...` rows are the pre-optimisation
    // baseline; read them before anything rewrites the file.
    let json_path = repo_root().join("BENCH_kernel.json");
    let baseline = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|s| dqos_stats::Json::parse(&s).ok());

    for arch in [Architecture::Traditional2Vc, Architecture::Advanced2Vc] {
        let m = full_sim_rate(arch);
        let old = baseline
            .as_ref()
            .and_then(|j| j.get(&format!("full_sim/tiny_2ms/{}", arch.slug())))
            .and_then(|row| row.get("rate_per_sec"))
            .and_then(|r| r.as_f64());
        if let Some(old_rate) = old {
            println!(
                "  -> {} full-sim speedup over recorded baseline: {:.2}x\n",
                arch.slug(),
                m.rate_per_sec / old_rate
            );
        }
        results.push(m);
    }

    // Headline numbers: the churn-workload speedup the calendar overhaul
    // buys (acceptance: >= 2x on the steady-state churn) and the
    // full-sim event rate.
    let of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_elem)
            .expect("measured above")
    };
    let mut extra: Vec<(String, f64)> = Vec::new();
    print!("\nchurn speedup (bucketed vs heap):");
    for pending in pendings {
        let s = of(&format!("event_queue/heap/{pending}"))
            / of(&format!("event_queue/bucketed/{pending}"));
        print!(" {s:.2}x @{pending}");
        extra.push((format!("speedup_bucketed_vs_heap_{pending}"), s));
    }
    println!();
    let steady = of("event_queue/heap/4096") / of("event_queue/bucketed/4096");
    if steady < 2.0 {
        eprintln!("warning: bucketed calendar below the 2x target at 4096 pending");
    }

    let extra_refs: Vec<(&str, f64)> = extra.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    write_json_merged(&json_path, &results, &extra_refs);
}
