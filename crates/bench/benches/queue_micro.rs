//! **Micro-bench — queue structures (§3.2/§6 feasibility argument).**
//!
//! The paper's case for the two-queue system is cost: a FIFO pair is
//! hardware-trivial while a heap ("Ideal") is not. In software the same
//! ordering shows up as per-operation cost: an enqueue+dequeue churn at
//! several occupancies for each structure.
//!
//! Run: `cargo bench -p dqos-bench --bench queue_micro`

use dqos_bench::harness::measure;
use dqos_queues::{DeadlineSortedQueue, FifoQueue, HeapQueue, SchedQueue, TwoQueue};
use dqos_sim_core::{SimRng, SimTime};
use std::hint::black_box;

/// Minimal deadline-carrying item (mirrors a packet header).
#[derive(Debug, Clone, Copy)]
struct Item {
    deadline: SimTime,
    len: u32,
}

impl dqos_queues::Deadlined for Item {
    fn deadline(&self) -> SimTime {
        self.deadline
    }
    fn len_bytes(&self) -> u32 {
        self.len
    }
}

/// Pre-generate a deadline stream resembling switch arrivals: mostly
/// ascending (per-flow virtual clocks) with occasional late low-deadline
/// packets (the order errors that exercise the take-over queue).
fn deadline_stream(n: usize, seed: u64) -> Vec<Item> {
    let mut rng = SimRng::new(seed);
    let mut clock = 0u64;
    (0..n)
        .map(|_| {
            clock += rng.range_u64(1, 2_000);
            let d = if rng.chance(0.1) {
                clock.saturating_sub(rng.range_u64(0, 10_000))
            } else {
                clock
            };
            Item { deadline: SimTime::from_ns(d), len: 2048 }
        })
        .collect()
}

fn churn<Q: SchedQueue<Item>>(q: &mut Q, stream: &[Item], occupancy: usize) -> u64 {
    // Fill to the working occupancy, then enqueue+dequeue per item.
    let mut out = 0u64;
    for (i, item) in stream.iter().enumerate() {
        q.enqueue(*item);
        if i >= occupancy {
            out += q.dequeue().map(|p| p.len as u64).unwrap_or(0);
        }
    }
    while let Some(p) = q.dequeue() {
        out += p.len as u64;
    }
    out
}

fn main() {
    let stream = deadline_stream(4096, 42);
    let n = stream.len() as u64;
    println!("# queue churn micro-bench ({n} ops per repetition)\n");
    for occupancy in [4usize, 64, 1024] {
        measure(&format!("queue_churn/fifo/{occupancy}"), n, 9, || {
            black_box(churn(&mut FifoQueue::new(), &stream, occupancy))
        });
        measure(&format!("queue_churn/two_queue/{occupancy}"), n, 9, || {
            black_box(churn(&mut TwoQueue::new(), &stream, occupancy))
        });
        measure(&format!("queue_churn/heap/{occupancy}"), n, 9, || {
            black_box(churn(&mut HeapQueue::new(), &stream, occupancy))
        });
        measure(&format!("queue_churn/sorted_insert/{occupancy}"), n, 9, || {
            black_box(churn(&mut DeadlineSortedQueue::new(), &stream, occupancy))
        });
        println!();
    }
}
