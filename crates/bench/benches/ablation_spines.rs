//! **Ablation — bisection bandwidth (spine count).**
//!
//! The paper's network is fully provisioned (8 uplinks per 8 hosts at
//! each leaf). Real clusters often oversubscribe the spine stage to save
//! switches; this ablation shrinks the spine count and watches which
//! guarantees survive. Expectation: VC0 (deadline-regulated, admission-
//! controlled) keeps its latency until the reserved traffic itself no
//! longer fits; best-effort throughput degrades first.
//!
//! Run: `cargo bench -p dqos-bench --bench ablation_spines`

use dqos_bench::{run_cached, BenchEnv};
use dqos_core::Architecture;
use dqos_topology::ClosParams;

fn main() {
    let env = BenchEnv::from_env();
    let load = env.max_load();
    let leaves = env.hosts / 8;
    println!(
        "=== Ablation: spine count ({} hosts, {} leaves, load {:.0}%, Advanced 2 VCs) ===\n",
        env.hosts,
        leaves,
        load * 100.0
    );
    println!(
        "{:>7} {:>8} {:>13} {:>13} {:>13} {:>13} {:>12}",
        "spines", "bisect", "ctrl avg us", "ctrl p99 us", "video avg ms", "BE Gb/s", "fallbacks"
    );
    for spines in [8u16, 4, 2, 1] {
        let mut cfg = env.config(Architecture::Advanced2Vc, load);
        cfg.topology = ClosParams { hosts_per_leaf: 8, leaves, spines };
        let (report, summary) = run_cached(&env, cfg);
        let c = report.class("Control").unwrap();
        let v = report.class("Multimedia").unwrap();
        let be = report.class("Best-effort").unwrap();
        println!(
            "{:>7} {:>7.0}% {:>13.2} {:>13.2} {:>13.3} {:>13.3} {:>12}",
            spines,
            spines as f64 / 8.0 * 100.0,
            c.packet_latency.mean() / 1e3,
            c.packet_latency.quantile(0.99) as f64 / 1e3,
            v.message_latency.mean() / 1e6,
            be.delivered.throughput(report.window_start, report.window_end).as_gbps_f64(),
            summary.admission_fallbacks,
        );
    }
    println!(
        "\n(admission fallbacks > 0 mean the reserved video no longer fits the\n\
         bisection; below that point even regulated guarantees are best-effort)"
    );
}
