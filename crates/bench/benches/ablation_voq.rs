//! **Ablation — input-buffer organisation.**
//!
//! The paper's switches keep one queue structure per (input, VC)
//! (Fig. 1); per-output VOQ banks at each input would eliminate the
//! head-of-line blocking the take-over queue attenuates — at the cost of
//! `radix ×` more queues per port, which is what the paper's cost
//! argument is about. This ablation quantifies what that money buys.
//!
//! Run: `cargo bench -p dqos-bench --bench ablation_voq`

use dqos_bench::{run_cached, BenchEnv};
use dqos_core::Architecture;

fn main() {
    let env = BenchEnv::from_env();
    let load = env.max_load();
    println!(
        "=== Ablation: single input queue (paper) vs per-output VOQ inputs ({} hosts @ {:.0}% load) ===",
        env.hosts,
        load * 100.0
    );
    println!(
        "{:<18} {:>12} {:>14} {:>14} {:>14}",
        "architecture", "input org", "ctrl avg us", "ctrl p99 us", "BE thru Gb/s"
    );
    for arch in [Architecture::Simple2Vc, Architecture::Advanced2Vc, Architecture::Ideal] {
        for voq in [false, true] {
            let mut cfg = env.config(arch, load);
            cfg.input_voq = voq;
            let (report, _) = run_cached(&env, cfg);
            let control = report.class("Control").unwrap();
            let be = report.class("Best-effort").unwrap();
            println!(
                "{:<18} {:>12} {:>14.2} {:>14.2} {:>14.3}",
                arch.label(),
                if voq { "VOQ (16x $)" } else { "single" },
                control.packet_latency.mean() / 1e3,
                control.packet_latency.quantile(0.99) as f64 / 1e3,
                be.delivered.throughput(report.window_start, report.window_end).as_gbps_f64()
            );
        }
    }
    println!("\n(the take-over queue recovers most of VOQ's benefit at a fraction of the cost — the paper's point)");
}
