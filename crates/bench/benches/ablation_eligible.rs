//! **Ablation — eligible time (§3.1/§3.2).**
//!
//! The paper proposes injecting a packet no earlier than
//! `deadline − 20 µs` to remove the injection bursts that cause order
//! errors downstream. This ablation runs the Advanced architecture at
//! full load with smoothing on and off and reports:
//!
//! * control latency (order errors downstream hurt it),
//! * take-over-queue admissions (a direct order-error count),
//! * video frame latency (smoothing is what pins it to the target).
//!
//! Run: `cargo bench -p dqos-bench --bench ablation_eligible`

use dqos_bench::{run_cached, BenchEnv};
use dqos_core::Architecture;

fn main() {
    let env = BenchEnv::from_env();
    let load = env.max_load();
    println!(
        "=== Ablation: eligible-time smoothing (Advanced 2 VCs @ {:.0}% load, {} hosts) ===",
        load * 100.0,
        env.hosts
    );

    for (label, lead) in [("eligible 20 us (paper)", Some(20_000u64)), ("no eligible time", None)] {
        let mut cfg = env.config(Architecture::Advanced2Vc, load);
        cfg.eligible_lead_ns = lead;
        let (report, summary) = run_cached(&env, cfg);
        let control = report.class("Control").unwrap();
        let video = report.class("Multimedia").unwrap();
        println!("\n--- {label} ---");
        println!(
            "control: avg {:>8.2} us  p99 {:>8.2} us  max {:>8.2} us",
            control.packet_latency.mean() / 1e3,
            control.packet_latency.quantile(0.99) as f64 / 1e3,
            control.packet_latency.max() as f64 / 1e3
        );
        println!(
            "video:   avg frame {:>7.3} ms  p99 {:>7.3} ms  jitter {:>7.2} us",
            video.message_latency.mean() / 1e6,
            video.message_latency.quantile(0.99) as f64 / 1e6,
            video.jitter.mean_abs_delta() / 1e3
        );
        println!(
            "order errors (take-over admissions): {}  |  in-order violations: {}",
            summary.take_over_total, summary.out_of_order
        );
    }
    println!("\n(paper: without eligible time, more order errors; with it, video frames land on the target)");
}
