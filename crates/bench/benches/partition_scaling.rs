//! **Micro-bench — conservative-parallel executor scaling.**
//!
//! Runs the same simulation serially (workers = 1) and partitioned over
//! 2 and 4 workers, verifying the reports are byte-identical before
//! timing anything — the executor's contract is exactness first, speed
//! second. Records events/sec per worker count plus the host's CPU
//! count into `BENCH_parallel.json`.
//!
//! The numbers are honest, not aspirational: on a single-CPU host the
//! worker threads time-slice one core and the parallel runs *cannot* be
//! faster than serial — expect a slowdown from barrier and inbox
//! overhead there. `host_cpus` is recorded precisely so a reader (or
//! `scripts/check.sh`) can tell "no speedup because one core" apart
//! from "no speedup because the executor is broken". Correctness is the
//! gate; speedup is reporting.
//!
//! Run: `cargo bench -p dqos-bench --bench partition_scaling`

use dqos_bench::harness::{measure, write_json_values, Measurement};
use dqos_bench::repo_root;
use dqos_core::Architecture;
use dqos_netsim::{Network, SimConfig};
use dqos_sim_core::SimDuration;
use dqos_stats::Json;
use dqos_topology::ClosParams;

/// 32 hosts = 4 leaves: enough partitions for a 4-worker point while
/// staying fast enough to repeat 5 times per worker count.
fn cfg(workers: usize) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, 0.5);
    c.topology = ClosParams::scaled(32);
    c.warmup = SimDuration::from_us(500);
    c.measure = SimDuration::from_ms(2);
    c.workers = workers;
    c
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# partition scaling bench (host has {host_cpus} CPU(s))\n");

    let worker_counts = [1usize, 2, 4];

    // Exactness gate first: every worker count must reproduce the
    // serial report bit for bit. A scaling number for a wrong answer
    // is worthless.
    let (baseline_json, baseline) = {
        let (r, s) = Network::new(cfg(1)).run();
        (r.to_json(), s)
    };
    for &w in &worker_counts[1..] {
        let (r, s) = Network::new(cfg(w)).run();
        assert_eq!(
            baseline_json,
            r.to_json(),
            "workers={w} diverged from serial — refusing to record timings"
        );
        assert_eq!(baseline.events, s.events, "workers={w}: event count diverged");
    }
    println!(
        "exactness: workers {{2, 4}} bit-identical to serial ({} events)\n",
        baseline.events
    );

    let mut results: Vec<Measurement> = Vec::new();
    for &w in &worker_counts {
        results.push(measure(
            &format!("partition_scaling/workers/{w}"),
            baseline.events,
            5,
            || Network::new(cfg(w)).run().1.events,
        ));
    }

    let rate = |w: usize| {
        results
            .iter()
            .find(|m| m.name == format!("partition_scaling/workers/{w}"))
            .map(|m| m.rate_per_sec)
            .expect("measured above")
    };
    let mut extra: Vec<(String, Json)> =
        vec![("host_cpus".to_string(), Json::Int(host_cpus as i128))];
    println!("\nevent-rate ratio vs serial:");
    for &w in &worker_counts[1..] {
        let s = rate(w) / rate(1);
        println!("  workers={w}: {s:.2}x");
        extra.push((format!("speedup_workers_{w}"), Json::Float(s)));
    }
    // An honest speedup number needs at least as many CPUs as the widest
    // worker count; anything less time-slices the workers over shared
    // cores and measures scheduler contention, not the executor. The
    // flag lets downstream readers (and the README table) discard such
    // ratios mechanically instead of eyeballing `host_cpus`.
    let widest = *worker_counts.last().expect("non-empty worker counts");
    let speedup_valid = host_cpus >= widest;
    extra.push(("speedup_valid".to_string(), Json::Bool(speedup_valid)));
    if !speedup_valid {
        println!(
            "\n({host_cpus} CPU(s) < {widest} workers: worker threads time-slice the \
             cores, so the ratios above measure contention, not scaling — recorded \
             with speedup_valid: false; re-run on a machine with >= {widest} cores)"
        );
    }

    let extra_refs: Vec<(&str, Json)> =
        extra.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    write_json_values(&repo_root().join("BENCH_parallel.json"), &results, &extra_refs);
}
