//! **Micro-bench — conservative-parallel executor scaling.**
//!
//! Runs the same simulation serially (workers = 1) and partitioned over
//! 2, 4 and 8 workers, verifying the reports are byte-identical at
//! *every* worker count before timing anything — the executor's
//! contract is exactness first, speed second. Records events/sec per
//! worker count plus the host's CPU count into `BENCH_parallel.json`.
//!
//! The numbers are honest, not aspirational: a worker count that
//! exceeds `host_cpus` time-slices the cores and measures scheduler
//! contention, not the executor, so those counts are exactness-checked
//! but **not timed** and get no speedup row. Every non-serial count
//! carries its own `speedup_valid_workers_{w}` flag so downstream
//! readers (`scripts/check.sh`, the README table) can discard invalid
//! ratios mechanically instead of eyeballing `host_cpus`. Correctness
//! is the gate; speedup is reporting.
//!
//! Run: `cargo bench -p dqos-bench --bench partition_scaling`

use dqos_bench::harness::{measure, write_json_values, Measurement};
use dqos_bench::repo_root;
use dqos_core::Architecture;
use dqos_netsim::{Network, SimConfig};
use dqos_sim_core::SimDuration;
use dqos_stats::Json;
use dqos_topology::ClosParams;

/// 64 hosts = 8 leaves: enough partitions for an 8-worker point while
/// staying fast enough to repeat 5 times per worker count.
fn cfg(workers: usize) -> SimConfig {
    let mut c = SimConfig::tiny(Architecture::Advanced2Vc, 0.5);
    c.topology = ClosParams::scaled(64);
    c.warmup = SimDuration::from_us(500);
    c.measure = SimDuration::from_ms(2);
    c.workers = workers;
    c
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# partition scaling bench (host has {host_cpus} CPU(s))\n");

    let worker_counts = [1usize, 2, 4, 8];

    // Exactness gate first: every worker count must reproduce the
    // serial report bit for bit. A scaling number for a wrong answer
    // is worthless.
    let (baseline_json, baseline) = {
        let (r, s) = Network::new(cfg(1)).run();
        (r.to_json(), s)
    };
    for &w in &worker_counts[1..] {
        let (r, s) = Network::new(cfg(w)).run();
        assert_eq!(
            baseline_json,
            r.to_json(),
            "workers={w} diverged from serial — refusing to record timings"
        );
        assert_eq!(baseline.events, s.events, "workers={w}: event count diverged");
    }
    println!(
        "exactness: workers {{2, 4, 8}} bit-identical to serial ({} events)\n",
        baseline.events
    );

    // Timing: serial always; a parallel count only when the host has a
    // core per worker, because an oversubscribed run's rate is a fact
    // about the scheduler, not the executor.
    let timed: Vec<usize> =
        worker_counts.iter().copied().filter(|&w| w == 1 || w <= host_cpus).collect();
    let mut results: Vec<Measurement> = Vec::new();
    for &w in &timed {
        results.push(measure(
            &format!("partition_scaling/workers/{w}"),
            baseline.events,
            5,
            || Network::new(cfg(w)).run().1.events,
        ));
    }

    let rate = |w: usize| {
        results
            .iter()
            .find(|m| m.name == format!("partition_scaling/workers/{w}"))
            .map(|m| m.rate_per_sec)
            .expect("measured above")
    };
    let mut extra: Vec<(String, Json)> =
        vec![("host_cpus".to_string(), Json::Int(host_cpus as i128))];
    println!("\nevent-rate ratio vs serial:");
    for &w in &worker_counts[1..] {
        let valid = w <= host_cpus;
        extra.push((format!("speedup_valid_workers_{w}"), Json::Bool(valid)));
        if valid {
            let s = rate(w) / rate(1);
            println!("  workers={w}: {s:.2}x");
            extra.push((format!("speedup_workers_{w}"), Json::Float(s)));
        } else {
            println!(
                "  workers={w}: not timed ({host_cpus} CPU(s) < {w} workers — \
                 exactness verified, speedup skipped)"
            );
        }
    }

    let extra_refs: Vec<(&str, Json)> =
        extra.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    write_json_values(&repo_root().join("BENCH_parallel.json"), &results, &extra_refs);
}
