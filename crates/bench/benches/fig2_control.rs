//! **Figure 2** — Control traffic across the four architectures:
//! (a) average latency vs injected load, (b) throughput vs load,
//! (c) latency CDF at the highest load, plus the §5 headline ratios
//! (Simple ≈ +25 %, Advanced ≈ +5 % average latency vs Ideal).
//!
//! Run: `cargo bench -p dqos-bench --bench fig2_control`
//! (scaling knobs documented in `dqos_bench`).

use dqos_bench::{print_cdf, print_series, run_sweep, BenchEnv};
use dqos_core::Architecture;

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "=== Figure 2: Control traffic ({} hosts, {} ms window) ===",
        env.hosts, env.measure_ms
    );
    let sweep = run_sweep(&env);

    print_series(
        "Figure 2a: Control average packet latency vs load",
        "us",
        &sweep,
        &env.loads,
        |r| r.class("Control").unwrap().packet_latency.mean() / 1e3,
    );
    print_series(
        "Figure 2a': Control p99 packet latency vs load",
        "us",
        &sweep,
        &env.loads,
        |r| r.class("Control").unwrap().packet_latency.quantile(0.99) as f64 / 1e3,
    );
    print_series(
        "Figure 2b: Control throughput vs load",
        "Gb/s",
        &sweep,
        &env.loads,
        |r| {
            r.class("Control")
                .unwrap()
                .delivered
                .throughput(r.window_start, r.window_end)
                .as_gbps_f64()
        },
    );
    print_cdf(
        "Figure 2c: Control latency",
        &sweep,
        env.max_load(),
        1e3,
        "us",
        24,
        |r| &r.class("Control").unwrap().packet_latency,
    );

    // §5 headline: latency penalty of the feasible designs vs Ideal.
    let mean_at = |arch: Architecture| {
        sweep
            .iter()
            .find(|(a, l, _, _)| *a == arch && *l == env.max_load())
            .map(|(_, _, r, _)| r.class("Control").unwrap().packet_latency.mean())
            .unwrap()
    };
    let ideal = mean_at(Architecture::Ideal);
    println!("\n## Headline ratios @ {:.0}% load (paper: Simple ~ +25%, Advanced ~ +5%)", env.max_load() * 100.0);
    for arch in [Architecture::Simple2Vc, Architecture::Advanced2Vc, Architecture::Traditional2Vc] {
        let m = mean_at(arch);
        println!(
            "{:<18} avg latency {:>9.2} us  ({:+.1}% vs Ideal)",
            arch.label(),
            m / 1e3,
            (m / ideal - 1.0) * 100.0
        );
    }

    // Order errors (§3.4): served while a smaller deadline waited in the
    // same buffer. Ideal must be zero; Advanced well below Simple.
    println!("\n## Order errors @ {:.0}% load", env.max_load() * 100.0);
    for arch in Architecture::ALL {
        let s = sweep
            .iter()
            .find(|(a, l, _, _)| *a == arch && *l == env.max_load())
            .map(|(_, _, _, s)| s)
            .unwrap();
        println!(
            "{:<18} {:>10} order errors / {:>10} delivered packets",
            arch.label(),
            s.order_errors,
            s.delivered_packets
        );
    }
}
