//! **Table 1** — "Traffic injected per host": validate that the workload
//! generators realise the specification — 25 % of bandwidth per class,
//! application-frame sizes inside the stated ranges, MPEG-4 streams at
//! one frame per 40 ms, self-similar classes with Pareto sizes.
//!
//! This bench drives the generators directly (no network) so it runs in
//! seconds at any scale.
//!
//! Run: `cargo bench -p dqos-bench --bench table1`

use dqos_core::TrafficClass;
use dqos_sim_core::{SimRng, SimTime};
use dqos_topology::HostId;
use dqos_traffic::{build_host_sources, MixConfig};

fn main() {
    let seconds = std::env::var("DQOS_TABLE1_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    let horizon = SimTime::from_secs(seconds);
    let cfg = MixConfig::paper(1.0);
    let n_hosts = 32;

    println!("=== Table 1: traffic injected per host (generator validation) ===");
    println!("horizon {seconds} s, link {}, load 100%\n", cfg.link_bw);

    let mut bytes = [0u64; 4];
    let mut msgs = [0u64; 4];
    let mut min_size = [u64::MAX; 4];
    let mut max_size = [0u64; 4];
    let mut rng = SimRng::new(7);
    // One representative host's full source set.
    let sources = build_host_sources(&cfg, HostId(0), n_hosts, &mut rng);
    let n_video = sources.iter().filter(|s| s.class() == TrafficClass::Multimedia).count();
    for mut s in sources {
        let class = s.class().idx();
        let mut t = s.first_arrival(&mut rng);
        while t <= horizon {
            let (m, next) = s.emit(t, &mut rng);
            bytes[class] += m.bytes;
            msgs[class] += 1;
            min_size[class] = min_size[class].min(m.bytes);
            max_size[class] = max_size[class].max(m.bytes);
            t = next;
        }
    }

    let total: u64 = bytes.iter().sum();
    println!(
        "{:<12} {:>7} {:>9} {:>14} {:>11} {:>11}  spec",
        "class", "% BW", "msgs", "bytes", "min frame", "max frame"
    );
    let spec = [
        "25% | frames 128 B..2 KiB | Poisson",
        "25% | frames 1..120 KiB | 40 ms cadence",
        "25% | frames 128 B..100 KiB | self-similar",
        "25% | frames 128 B..100 KiB | self-similar",
    ];
    for class in TrafficClass::ALL {
        let i = class.idx();
        println!(
            "{:<12} {:>6.1}% {:>9} {:>14} {:>11} {:>11}  {}",
            class.name(),
            bytes[i] as f64 / total as f64 * 100.0,
            msgs[i],
            bytes[i],
            if min_size[i] == u64::MAX { 0 } else { min_size[i] },
            max_size[i],
            spec[i]
        );
    }
    println!("\nvideo streams per host: {n_video} (share / 400 KB/s per stream; see DESIGN.md)");
    println!(
        "aggregate offered: {:.3} Gb/s of {:.3} Gb/s link",
        total as f64 * 8.0 / seconds as f64 / 1e9,
        cfg.link_bw.as_gbps_f64()
    );

    // Hard validation, so `cargo bench` fails loudly on regression.
    for class in TrafficClass::ALL {
        let i = class.idx();
        let share = bytes[i] as f64 / total as f64;
        assert!(
            (share - 0.25).abs() < 0.06,
            "{} share {share:.3} deviates from Table 1",
            class.name()
        );
    }
    assert!((128..=2048).contains(&min_size[0]) && max_size[0] <= 2048);
    assert!(min_size[1] >= 1024 && max_size[1] <= 120 * 1024);
    assert!(min_size[2] >= 128 && max_size[2] <= 100_000);
    assert!(min_size[3] >= 128 && max_size[3] <= 100_000);
    println!("\nOK: generated mix matches the Table 1 specification.");
}
