//! **Figure 4** — throughput of the two best-effort classes vs load.
//!
//! Paper's claim: under *Traditional 2 VCs* both classes share VC1
//! identically and get the same throughput; the EDF architectures
//! differentiate them inside a single VC via the weighted aggregated
//! flow records (Best-effort weighted 2:1 over Background here), and can
//! guarantee a minimum bandwidth to each.
//!
//! Run: `cargo bench -p dqos-bench --bench fig4_besteffort`

use dqos_bench::{print_series, run_sweep, BenchEnv};
use dqos_core::Architecture;
use dqos_stats::Report;

fn thru(r: &Report, class: &str) -> f64 {
    r.class(class)
        .unwrap()
        .delivered
        .throughput(r.window_start, r.window_end)
        .as_gbps_f64()
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "=== Figure 4: Best-effort traffic classes ({} hosts, {} ms window) ===",
        env.hosts, env.measure_ms
    );
    let sweep = run_sweep(&env);

    print_series(
        "Figure 4a: Best-effort throughput vs load",
        "Gb/s",
        &sweep,
        &env.loads,
        |r| thru(r, "Best-effort"),
    );
    print_series(
        "Figure 4b: Background throughput vs load",
        "Gb/s",
        &sweep,
        &env.loads,
        |r| thru(r, "Background"),
    );
    print_series(
        "Best-effort : Background delivered ratio vs load",
        "x",
        &sweep,
        &env.loads,
        |r| {
            let bg = thru(r, "Background");
            if bg > 0.0 {
                thru(r, "Best-effort") / bg
            } else {
                f64::NAN
            }
        },
    );

    println!("\n## Differentiation @ {:.0}% load", env.max_load() * 100.0);
    println!("(paper: Traditional equal split; EDF splits by the 2:1 record weights)");
    for arch in Architecture::ALL {
        let r = sweep
            .iter()
            .find(|(a, l, _, _)| *a == arch && *l == env.max_load())
            .map(|(_, _, r, _)| r)
            .unwrap();
        let be = thru(r, "Best-effort");
        let bg = thru(r, "Background");
        println!(
            "{:<18} BE {:>7.3} Gb/s  BG {:>7.3} Gb/s  ratio {:>5.2}",
            arch.label(),
            be,
            bg,
            be / bg
        );
    }
}
