//! # dqos-bench
//!
//! Shared harness for the figure/table benches (the `benches/` targets of
//! this crate regenerate every table and figure of the paper's
//! evaluation; see DESIGN.md §4 for the index).
//!
//! ## Scaling knobs (environment variables)
//!
//! | Variable          | Default        | Meaning |
//! |-------------------|----------------|---------|
//! | `DQOS_PAPER=1`    | off            | full 128-host paper network (slow) |
//! | `DQOS_HOSTS`      | 16             | host count (multiple of 8) |
//! | `DQOS_MEASURE_MS` | 10             | measurement window per point |
//! | `DQOS_WARMUP_MS`  | 12             | warm-up (must exceed the 10 ms frame pipeline) |
//! | `DQOS_LOADS`      | .2,.4,.6,.8,1  | sweep points |
//! | `DQOS_SEED`       | 0xD05E         | master seed |
//! | `DQOS_NO_CACHE=1` | off            | disable the sweep-result cache |
//!
//! Figures 2, 3 and 4 all read the *same* simulations (the paper runs one
//! workload and reports three views of it), so sweep results are cached
//! under `target/dqos-cache/` keyed by a hash of the full config — the
//! second and third figure benches reuse the first one's runs.

#![forbid(unsafe_code)]

use dqos_core::Architecture;
use dqos_netsim::{run_one, RunSummary, SimConfig};
use dqos_stats::{Json, Report};
use dqos_topology::ClosParams;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// Sweep parameters read from the environment.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// Host count.
    pub hosts: u16,
    /// Measurement window, ms.
    pub measure_ms: u64,
    /// Warm-up, ms.
    pub warmup_ms: u64,
    /// Load points.
    pub loads: Vec<f64>,
    /// Master seed.
    pub seed: u64,
    /// Cache sweep results on disk.
    pub cache: bool,
}

impl BenchEnv {
    /// Read the environment (see crate docs for the knobs).
    pub fn from_env() -> Self {
        let paper = std::env::var("DQOS_PAPER").map(|v| v == "1").unwrap_or(false);
        let get = |k: &str, d: u64| -> u64 {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let hosts = if paper {
            128
        } else {
            get("DQOS_HOSTS", 16) as u16
        };
        let loads = std::env::var("DQOS_LOADS")
            .ok()
            .map(|v| {
                v.split(',')
                    // tidy: allow(no-unwrap) -- bench harness CLI contract:
                    // a malformed DQOS_LOADS should abort the run loudly.
                    .map(|s| s.trim().parse::<f64>().expect("DQOS_LOADS entries are numbers"))
                    .collect()
            })
            .unwrap_or_else(|| vec![0.2, 0.4, 0.6, 0.8, 1.0]);
        BenchEnv {
            hosts,
            measure_ms: get("DQOS_MEASURE_MS", if paper { 50 } else { 10 }),
            warmup_ms: get("DQOS_WARMUP_MS", if paper { 15 } else { 12 }),
            loads,
            seed: get("DQOS_SEED", 0xD0_5E),
            cache: std::env::var("DQOS_NO_CACHE").map(|v| v != "1").unwrap_or(true),
        }
    }

    /// The simulation config for one (architecture, load) point.
    pub fn config(&self, arch: Architecture, load: f64) -> SimConfig {
        let mut c = SimConfig::paper(arch, load);
        c.topology = ClosParams::scaled(self.hosts);
        c.measure = dqos_sim_core::SimDuration::from_ms(self.measure_ms);
        c.warmup = dqos_sim_core::SimDuration::from_ms(self.warmup_ms);
        c.seed = self.seed;
        c
    }

    /// The highest load point (where the paper takes its CDFs).
    pub fn max_load(&self) -> f64 {
        self.loads.iter().cloned().fold(0.0, f64::max)
    }
}

/// The workspace `target/` directory. Bench binaries run with the
/// package directory as CWD, so a relative "target" would land under
/// `crates/bench/`; resolve against the manifest location instead.
fn target_dir() -> PathBuf {
    match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) => PathBuf::from(t),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
    }
}

fn cache_dir() -> PathBuf {
    target_dir().join("dqos-cache")
}

fn cache_key(cfg: &SimConfig) -> String {
    // `SimConfig` is plain data with a total `Debug` rendering, so the
    // debug string is a faithful serialisation for keying purposes.
    let text = format!("{cfg:?}");
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    // Include a schema version so stale caches die on model changes.
    3u32.hash(&mut h);
    format!("{:016x}", h.finish())
}

fn decode_pair(data: &str) -> Result<(Report, RunSummary), String> {
    let j = Json::parse(data)?;
    let report = j
        .get("report")
        .and_then(Report::from_json_value)
        .ok_or_else(|| "bad report".to_string())?;
    let summary =
        RunSummary::from_json_value(j.get("summary").ok_or_else(|| "missing summary".to_string())?)?;
    Ok((report, summary))
}

fn encode_pair(report: &Report, summary: &RunSummary) -> String {
    Json::obj(vec![
        ("report", report.to_json_value()),
        ("summary", summary.to_json_value()),
    ])
    .to_string_pretty()
}

/// Run one point, reading/writing the on-disk cache.
pub fn run_cached(env: &BenchEnv, cfg: SimConfig) -> (Report, RunSummary) {
    if !env.cache {
        return run_one(cfg);
    }
    let dir = cache_dir();
    let path = dir.join(format!("{}.json", cache_key(&cfg)));
    if let Ok(data) = std::fs::read_to_string(&path) {
        if let Ok(pair) = decode_pair(&data) {
            return pair;
        }
    }
    let pair = run_one(cfg);
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(&path, encode_pair(&pair.0, &pair.1));
    pair
}

/// Run the full figure sweep: every architecture at every load.
/// Returns `(arch, load, report, summary)` tuples in deterministic order.
pub fn run_sweep(env: &BenchEnv) -> Vec<(Architecture, f64, Report, RunSummary)> {
    let mut out = Vec::new();
    for &arch in &Architecture::ALL {
        for &load in &env.loads {
            eprintln!("  running {} @ {:.0}% ...", arch.label(), load * 100.0);
            let (report, summary) = run_cached(env, env.config(arch, load));
            assert_eq!(summary.out_of_order, 0, "in-order guarantee violated");
            out.push((arch, load, report, summary));
        }
    }
    out
}

/// Print a `load × architecture` series table, and mirror it as a
/// gnuplot-ready `.dat` file under `target/figures/` (one column per
/// architecture).
///
/// `value` extracts the plotted quantity from a report.
pub fn print_series(
    title: &str,
    unit: &str,
    sweep: &[(Architecture, f64, Report, RunSummary)],
    loads: &[f64],
    mut value: impl FnMut(&Report) -> f64,
) {
    println!("\n## {title} [{unit}]");
    let mut dat = format!("# {title} [{unit}]\n# load%");
    for arch in Architecture::ALL {
        dat.push_str(&format!(" \"{}\"", arch.label()));
    }
    dat.push('\n');
    print!("{:>8}", "load%");
    for arch in Architecture::ALL {
        print!(" {:>18}", arch.label());
    }
    println!();
    for &load in loads {
        print!("{:>8.0}", load * 100.0);
        dat.push_str(&format!("{:.0}", load * 100.0));
        for arch in Architecture::ALL {
            let r = sweep
                .iter()
                .find(|(a, l, _, _)| *a == arch && *l == load)
                .map(|(_, _, r, _)| r)
                // tidy: allow(no-unwrap) -- the sweep was built from this
                // exact (arch, load) grid, so every cell is present.
                .expect("sweep covers the grid");
            let v = value(r);
            print!(" {:>18.2}", v);
            dat.push_str(&format!(" {v:.4}"));
        }
        println!();
        dat.push('\n');
    }
    write_figure_file(title, &dat);
}

/// Slugify a title and write the data file under `target/figures/`.
fn write_figure_file(title: &str, contents: &str) {
    let slug: String = title
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let dir = target_dir().join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{slug}.dat")), contents);
    }
}

/// Print a latency CDF per architecture at one load (the paper's CDF
/// panels), as `value fraction` columns; the full-resolution curves are
/// also written to `target/figures/` (gnuplot `index`-separated blocks,
/// one per architecture).
pub fn print_cdf(
    title: &str,
    sweep: &[(Architecture, f64, Report, RunSummary)],
    load: f64,
    unit_div: f64,
    unit: &str,
    points: usize,
    hist_of: impl Fn(&Report) -> &dqos_stats::LogHistogram,
) {
    println!("\n## {title} (CDF @ {:.0}% load, {unit})", load * 100.0);
    let mut dat = format!("# {title} (CDF @ {:.0}% load, {unit})\n", load * 100.0);
    for arch in Architecture::ALL {
        let r = sweep
            .iter()
            .find(|(a, l, _, _)| *a == arch && *l == load)
            .map(|(_, _, r, _)| r)
            // tidy: allow(no-unwrap) -- max load is taken from the same
            // list the sweep was built from, so the point exists.
            .expect("sweep covers the max-load point");
        let hist = hist_of(r);
        let cdf = hist.cdf();
        println!("# {}", arch.label());
        dat.push_str(&format!("# {}\n", arch.label()));
        // Thin the printed curve to ~`points` rows; the file keeps all.
        let step = (cdf.len() / points.max(1)).max(1);
        for (i, (v, f)) in cdf.iter().enumerate() {
            if i % step == 0 || i + 1 == cdf.len() {
                println!("{:>12.3} {:>9.6}", *v as f64 / unit_div, f);
            }
            dat.push_str(&format!("{:.4} {:.6}\n", *v as f64 / unit_div, f));
        }
        dat.push_str("\n\n"); // gnuplot block separator
    }
    write_figure_file(&format!("{title} cdf"), &dat);
}

/// Dependency-free timing harness for the micro-benches.
///
/// Each measurement runs the workload once to warm caches, then `runs`
/// timed repetitions; the *median* per-element time is reported (robust
/// to scheduler noise without criterion's machinery).
pub mod harness {
    use std::hint::black_box;
    use std::time::Instant;

    /// One measured workload.
    #[derive(Debug, Clone)]
    pub struct Measurement {
        /// Workload name (`group/case`).
        pub name: String,
        /// Elements processed per repetition.
        pub elements: u64,
        /// Median nanoseconds per element.
        pub ns_per_elem: f64,
        /// Median element rate per second.
        pub rate_per_sec: f64,
    }

    /// Time `f`, which processes `elements` items per call.
    pub fn measure<R>(
        name: &str,
        elements: u64,
        runs: usize,
        mut f: impl FnMut() -> R,
    ) -> Measurement {
        black_box(f()); // warm-up
        let mut samples: Vec<f64> = (0..runs.max(1))
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_nanos() as f64 / elements.max(1) as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns_per_elem = samples[samples.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            elements,
            ns_per_elem,
            rate_per_sec: 1e9 / ns_per_elem,
        };
        println!(
            "{:<40} {:>10.1} ns/elem {:>14.0} elem/s",
            m.name, m.ns_per_elem, m.rate_per_sec
        );
        m
    }

    /// Write measurements (plus extra scalar entries) as a JSON object to
    /// `path`, one `name -> {ns_per_elem, rate_per_sec, elements}` entry
    /// per measurement.
    pub fn write_json(path: &std::path::Path, ms: &[Measurement], extra: &[(&str, f64)]) {
        use dqos_stats::Json;
        let extra: Vec<(&str, Json)> =
            extra.iter().map(|(k, v)| (*k, Json::Float(*v))).collect();
        write_json_values(path, ms, &extra);
    }

    /// [`write_json`] with arbitrary JSON scalars in the extra entries
    /// (e.g. the `speedup_valid_workers_{w}` booleans of the scaling
    /// bench).
    pub fn write_json_values(
        path: &std::path::Path,
        ms: &[Measurement],
        extra: &[(&str, dqos_stats::Json)],
    ) {
        use dqos_stats::Json;
        let mut fields: Vec<(&str, Json)> = ms
            .iter()
            .map(|m| {
                (
                    m.name.as_str(),
                    Json::obj(vec![
                        ("ns_per_elem", Json::Float(m.ns_per_elem)),
                        ("rate_per_sec", Json::Float(m.rate_per_sec)),
                        ("elements", Json::Int(m.elements as i128)),
                    ]),
                )
            })
            .collect();
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        let doc = Json::obj(fields).to_string_pretty();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }

    /// Like [`write_json`], but entries already present in `path` that
    /// this run did not re-measure survive verbatim. The file thereby
    /// accumulates history — e.g. the pre-optimisation `full_sim/...`
    /// rows stay on record next to the current `fullsim/...` rows —
    /// instead of being clobbered by every rerun.
    pub fn write_json_merged(path: &std::path::Path, ms: &[Measurement], extra: &[(&str, f64)]) {
        use dqos_stats::Json;
        let mut fields: Vec<(String, Json)> = match std::fs::read_to_string(path)
            .ok()
            .and_then(|s| Json::parse(&s).ok())
        {
            Some(Json::Obj(pairs)) => pairs,
            _ => Vec::new(),
        };
        fn set(fields: &mut Vec<(String, Json)>, k: &str, v: Json) {
            if let Some(slot) = fields.iter_mut().find(|(key, _)| key == k) {
                slot.1 = v;
            } else {
                fields.push((k.to_string(), v));
            }
        }
        for m in ms {
            set(
                &mut fields,
                &m.name,
                Json::obj(vec![
                    ("ns_per_elem", Json::Float(m.ns_per_elem)),
                    ("rate_per_sec", Json::Float(m.rate_per_sec)),
                    ("elements", Json::Int(m.elements as i128)),
                ]),
            );
        }
        for (k, v) in extra {
            set(&mut fields, k, Json::Float(*v));
        }
        let doc = Json::Obj(fields).to_string_pretty();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

/// The repository root (bench binaries run with `crates/bench` as CWD).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Not setting variables in tests (process-global); just check the
        // default constructor path works when vars are absent.
        let env = BenchEnv::from_env();
        assert!(env.hosts >= 8);
        assert!(!env.loads.is_empty());
        assert!(env.max_load() <= 1.0);
    }

    #[test]
    fn config_reflects_env() {
        let env = BenchEnv {
            hosts: 24,
            measure_ms: 7,
            warmup_ms: 13,
            loads: vec![0.5],
            seed: 9,
            cache: false,
        };
        let cfg = env.config(Architecture::Ideal, 0.5);
        assert_eq!(cfg.topology.n_hosts(), 24);
        assert_eq!(cfg.measure, dqos_sim_core::SimDuration::from_ms(7));
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let env = BenchEnv {
            hosts: 16,
            measure_ms: 5,
            warmup_ms: 5,
            loads: vec![0.5],
            seed: 1,
            cache: false,
        };
        let a = cache_key(&env.config(Architecture::Ideal, 0.5));
        let b = cache_key(&env.config(Architecture::Simple2Vc, 0.5));
        let c = cache_key(&env.config(Architecture::Ideal, 0.6));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable for identical configs.
        assert_eq!(a, cache_key(&env.config(Architecture::Ideal, 0.5)));
    }
}
