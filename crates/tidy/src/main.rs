//! CLI for `dqos-tidy`: run the workspace lint pass and report.
//!
//! ```text
//! cargo run --release --offline -p dqos-tidy            # check the workspace
//! cargo run --release --offline -p dqos-tidy -- --list  # print the rule catalog
//! cargo run --release --offline -p dqos-tidy -- <root>  # check another tree
//! ```
//!
//! Exit code 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => list = true,
            "--help" | "-h" => {
                println!("usage: dqos-tidy [--list] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("dqos-tidy: unknown flag {arg}");
                return ExitCode::from(2);
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    if list {
        for r in dqos_tidy::RULES {
            println!("{:16} {}", r.id, r.what);
        }
        return ExitCode::SUCCESS;
    }
    let root = root.unwrap_or_else(find_workspace_root);
    match dqos_tidy::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("dqos-tidy: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("dqos-tidy: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dqos-tidy: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
