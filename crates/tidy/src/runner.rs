//! Workspace walking and file classification.
//!
//! The runner decides, from a file's path alone, which rule groups
//! apply to it (see [`FileClass`]); `rules::check_source` then handles
//! the finer-grained `#[cfg(test)]` regions inside library files.

use crate::rules::{check_source, FileClass, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Crates exempt from the determinism rules (and from `no-print`).
/// `bench` exists to time wall-clock runs, read sweep knobs from the
/// environment and print result tables; `tidy` is build tooling that
/// never touches simulation state.
const NON_SIM_CRATES: &[&str] = &["bench", "tidy"];

/// Files allowed to contain `unsafe`. Deliberately empty: the
/// workspace builds with `#![forbid(unsafe_code)]` everywhere, and any
/// future exception must land here with a PR-reviewed rationale.
const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Files that take multiple locks and must declare a
/// `// tidy: lock-order(...)`. Deliberately empty since the executor
/// rebuild: the free-running exec.rs holds one cold-path Mutex (the
/// first-error slot) and no ordered lock pairs. Any future file that
/// nests two locks must land here with its declared order.
const LOCK_ORDER_REQUIRED: &[&str] = &[];

/// The only library files allowed to touch `std::net`/`std::process`:
/// the daemon's real-socket transport. Everything else — including the
/// rest of `dqosd` — runs on the deterministic loopback transport, so
/// tier-1 tests can never accidentally open a socket.
const NET_ALLOWLIST: &[&str] = &["crates/dqosd/src/transport/socket.rs"];

/// Classify one workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("deadline-qos");
    let in_src = rel.split('/').any(|seg| seg == "src");
    let is_main = rel.ends_with("/main.rs") || rel == "main.rs";
    let is_lib = in_src && !is_main;
    let is_crate_root = rel == "src/lib.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")));
    FileClass {
        is_sim: !NON_SIM_CRATES.contains(&crate_name),
        is_lib,
        is_crate_root,
        requires_lock_order: LOCK_ORDER_REQUIRED.contains(&rel),
        allow_unsafe: UNSAFE_ALLOWLIST.contains(&rel),
        allow_net: NET_ALLOWLIST.contains(&rel),
    }
}

/// Every `.rs` file dqos-tidy checks, workspace-relative. Scans the
/// umbrella crate's `src`/`tests`/`examples` and each member crate's
/// `src`/`tests`/`benches`/`examples`. Directories named `fixtures`
/// are skipped: they hold deliberately-violating inputs for the
/// fixture tests.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files: Vec<String> = Vec::new();
    let mut scan_roots: Vec<PathBuf> = vec![
        root.join("src"),
        root.join("tests"),
        root.join("examples"),
    ];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                for sub in ["src", "tests", "benches", "examples"] {
                    scan_roots.push(entry.path().join(sub));
                }
            }
        }
    }
    for sr in scan_roots {
        if sr.is_dir() {
            collect_rs(&sr, &mut files, root)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<String>, root: &Path) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, out, root)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Run the whole lint pass over the workspace at `root`.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(check_source(&rel, &src, &classify(&rel)));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let c = classify("crates/sim-core/src/exec.rs");
        assert!(c.is_sim && c.is_lib && !c.requires_lock_order && !c.is_crate_root);
        let c = classify("crates/bench/src/lib.rs");
        assert!(!c.is_sim && c.is_lib && c.is_crate_root);
        let c = classify("crates/tidy/src/main.rs");
        assert!(!c.is_sim && !c.is_lib && c.is_crate_root);
        let c = classify("crates/netsim/tests/some_test.rs");
        assert!(c.is_sim && !c.is_lib && !c.is_crate_root);
        let c = classify("src/lib.rs");
        assert!(c.is_sim && c.is_lib && c.is_crate_root);
        let c = classify("tests/determinism.rs");
        assert!(!c.is_lib);
        let c = classify("crates/queues/benches/bench.rs");
        assert!(!c.is_lib);
        let c = classify("crates/dqosd/src/transport/socket.rs");
        assert!(c.is_sim && c.is_lib && c.allow_net);
        let c = classify("crates/dqosd/src/server.rs");
        assert!(c.is_sim && c.is_lib && !c.allow_net);
    }
}
