//! A minimal, lossless-enough Rust tokenizer.
//!
//! `dqos-tidy` needs to see identifiers, punctuation and literals with
//! line numbers, with comments and string contents *removed* (so a rule
//! never fires on prose) but with **directive comments** (`// tidy:`,
//! `// ordering:`) surfaced as structured data. That is a far smaller
//! job than real Rust parsing, so the lexer is ~300 lines and has no
//! dependencies — the same trade rustc's `tidy` makes.
//!
//! What it understands:
//!
//! * line comments (`//`, `///`, `//!`) — scanned for directives;
//! * nested block comments (`/* /* */ */`) — skipped, no directives;
//! * string, raw string (`r#"…"#`), byte string, byte char and char
//!   literals — emitted as opaque [`TokKind::Str`] / [`TokKind::Char`]
//!   tokens whose contents rules never inspect;
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * numeric literals, with the float/int distinction rules need
//!   (`1.5`, `1e9`, `2.0f64` are floats; `1..2` and `1.max(2)` are not);
//! * identifiers (keywords included) and maximal-munch two-character
//!   operators (`==`, `!=`, `::`, `->`, …).

/// Token kind. Contents of string/char literals are not retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation / operator (possibly two characters, e.g. `==`).
    Punct,
    /// Integer literal.
    Int,
    /// Floating-point literal.
    Float,
    /// String / raw string / byte-string literal (contents dropped).
    Str,
    /// Char or byte-char literal (contents dropped).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (empty for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A parsed directive comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// tidy: allow(<rule>) -- <reason>` — suppress one rule on the
    /// same line, or on the next code line when the comment stands
    /// alone.
    Allow {
        /// Rule identifier being suppressed.
        rule: String,
        /// Mandatory human justification.
        reason: String,
    },
    /// `// tidy: sorted-before-use -- <reason>` — sugar for
    /// `allow(hash-iter)`: the unordered container's contents are
    /// sorted (or reduced order-independently) before anything
    /// observable consumes them.
    SortedBeforeUse {
        /// Mandatory human justification.
        reason: String,
    },
    /// `// ordering: <reason>` — justifies a relaxed (non-`SeqCst`)
    /// atomic memory ordering on the same or next code line.
    Ordering {
        /// Why the weaker ordering is sound.
        reason: String,
    },
    /// `// tidy: lock-order(a < b < c)` — file-level declaration of the
    /// order locks must be acquired in when held simultaneously.
    LockOrder {
        /// Lock names, outermost first.
        order: Vec<String>,
    },
    /// `// tidy: hot-path` — file-level declaration that this module is
    /// on the per-event hot path: rule `hot-path-alloc` forbids heap
    /// allocation inside loop bodies here.
    HotPath,
}

/// A directive plus where it appeared.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: u32,
    /// Parsed payload.
    pub kind: DirectiveKind,
}

/// Lexer output: the token stream, directives, and any malformed
/// directive comments (line, message).
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Tok>,
    /// All well-formed directives in source order.
    pub directives: Vec<Directive>,
    /// Malformed directive comments: `(line, what was wrong)`.
    pub errors: Vec<(u32, String)>,
}

/// Tokenize `src`. Never fails: unrecognized bytes are skipped (the
/// input is expected to be real Rust that rustc already accepted).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                parse_comment(&src[start..i], line, &mut out);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let tok_line = line;
                i = skip_raw_or_byte(b, i, &mut line);
                out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            b'\'' => {
                // Lifetime or char literal.
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i);
                    out.tokens.push(Tok { kind: TokKind::Char, text: String::new(), line });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(b, i);
                out.tokens.push(Tok {
                    kind: if is_float { TokKind::Float } else { TokKind::Int },
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] >= 0x80)
                {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                // Punctuation: maximal-munch the two-char operators the
                // rules care about distinguishing.
                const TWO: &[&[u8; 2]] = &[
                    b"==", b"!=", b"<=", b">=", b"=>", b"->", b"::", b"..", b"&&", b"||",
                    b"+=", b"-=", b"*=", b"/=", b"%=", b"^=", b"|=", b"&=", b"<<", b">>",
                ];
                let two = i + 1 < b.len() && TWO.iter().any(|t| t[0] == c && t[1] == b[i + 1]);
                let end = if two { i + 2 } else { i + 1 };
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
        }
    }
    out
}

/// `r"`, `r#"`, `br"`, `b"`, `b'` starters (but not identifiers like
/// `r` or `br` used as names).
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") || rest.starts_with(b"b\"") {
        // `r#ident` is a raw identifier, not a raw string: require the
        // `#` run to end in `"`.
        if rest.starts_with(b"r#") {
            let mut j = 1;
            while j < rest.len() && rest[j] == b'#' {
                j += 1;
            }
            return j < rest.len() && rest[j] == b'"';
        }
        return true;
    }
    if rest.starts_with(b"br\"") || rest.starts_with(b"br#") || rest.starts_with(b"b'") {
        if rest.starts_with(b"br#") {
            let mut j = 2;
            while j < rest.len() && rest[j] == b'#' {
                j += 1;
            }
            return j < rest.len() && rest[j] == b'"';
        }
        return true;
    }
    false
}

fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // Keep the line count right across `\<newline>`
                // continuations and escaped characters.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        // byte char b'x'
        return skip_char_literal(b, i);
    }
    let raw = i < b.len() && b[i] == b'r';
    if raw {
        i += 1;
    } else {
        // `b"…"` is an ordinary (escape-processing) string with a
        // prefix — `b"\""` must not end at the escaped quote.
        return skip_string(b, i, line);
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        // Raw string: no escapes; scan for `"` followed by `hashes`
        // many `#`.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
    }
    i
}

/// Is the `'` at `i` a char literal (vs a lifetime)?
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c.is_ascii_alphanumeric() || c == b'_' => {
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            // Multi-byte chars like 'é' also close with a quote.
            b.get(i + 2) == Some(&b'\'')
        }
        Some(_) => true, // '(' etc — a char literal like '('
        None => false,
    }
}

fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // opening '
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan a numeric literal starting at `i`; return (end, is_float).
fn scan_number(b: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let hex = b[j] == b'0' && matches!(b.get(j + 1), Some(b'x' | b'X' | b'o' | b'b'));
    if hex {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    let mut is_float = false;
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // `1.5` is a float; `1..2` is a range and `1.max()` a method call.
    if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent: `1e9`, `1.5e-3`.
    if j < b.len()
        && (b[j] == b'e' || b[j] == b'E')
        && (b.get(j + 1).is_some_and(u8::is_ascii_digit)
            || (matches!(b.get(j + 1), Some(b'+' | b'-'))
                && b.get(j + 2).is_some_and(u8::is_ascii_digit)))
    {
        is_float = true;
        j += 1;
        if matches!(b[j], b'+' | b'-') {
            j += 1;
        }
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Suffix: `1f64`, `2.0f32`, `3u32`.
    let suffix_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    let suffix = &b[suffix_start..j];
    if suffix == b"f32" || suffix == b"f64" {
        is_float = true;
    }
    (j, is_float)
}

/// Parse one `//…` comment for directives. Doc comments (`///`, `//!`)
/// never carry directives — they are documentation, and a literal
/// example of the grammar inside one must not count.
fn parse_comment(text: &str, line: u32, out: &mut Lexed) {
    let body = text.trim_start_matches('/');
    if body.starts_with('!') || text.starts_with("///") {
        return;
    }
    let body = body.trim();
    if let Some(rest) = body.strip_prefix("tidy:") {
        match parse_tidy(rest.trim()) {
            Ok(kind) => out.directives.push(Directive { line, kind }),
            Err(msg) => out.errors.push((line, msg)),
        }
    } else if let Some(rest) = body.strip_prefix("ordering:") {
        let reason = rest.trim();
        if reason.len() < 10 {
            out.errors.push((
                line,
                "`// ordering:` needs a real justification (>= 10 chars)".to_string(),
            ));
        } else {
            out.directives.push(Directive {
                line,
                kind: DirectiveKind::Ordering { reason: reason.to_string() },
            });
        }
    }
}

/// Parse the payload after `tidy:`.
fn parse_tidy(rest: &str) -> Result<DirectiveKind, String> {
    if let Some(args) = rest.strip_prefix("allow(") {
        let Some(close) = args.find(')') else {
            return Err("unclosed `allow(`".to_string());
        };
        let rule = args[..close].trim().to_string();
        if rule.is_empty() {
            return Err("`allow()` names no rule".to_string());
        }
        let reason = match args[close + 1..].trim().strip_prefix("--") {
            Some(r) => r.trim().to_string(),
            None => String::new(),
        };
        if reason.len() < 10 {
            return Err(format!(
                "`allow({rule})` needs `-- <reason>` (>= 10 chars) explaining why the \
                 rule does not apply"
            ));
        }
        return Ok(DirectiveKind::Allow { rule, reason });
    }
    if let Some(reason) = rest.strip_prefix("sorted-before-use") {
        let reason = match reason.trim().strip_prefix("--") {
            Some(r) => r.trim().to_string(),
            None => String::new(),
        };
        if reason.len() < 10 {
            return Err(
                "`sorted-before-use` needs `-- <reason>` (>= 10 chars) saying where the \
                 sort happens"
                    .to_string(),
            );
        }
        return Ok(DirectiveKind::SortedBeforeUse { reason });
    }
    if rest == "hot-path" {
        return Ok(DirectiveKind::HotPath);
    }
    if let Some(args) = rest.strip_prefix("lock-order(") {
        let Some(close) = args.find(')') else {
            return Err("unclosed `lock-order(`".to_string());
        };
        let order: Vec<String> = args[..close]
            .split('<')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if order.len() < 2 {
            return Err("`lock-order(a < b)` needs at least two lock names".to_string());
        }
        return Ok(DirectiveKind::LockOrder { order });
    }
    Err(format!("unknown tidy directive {rest:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_floats_ranges_methods() {
        let ks = kinds("1.5 1..2 1.max(2) 1e9 2.0f64 3f32 0x1f 7u64");
        let floats: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "1e9", "2.0f64", "3f32"]);
        // `1..2` lexed as Int, Punct(..), Int.
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn strings_and_comments_hide_contents() {
        let src = r####"let s = "Instant::now()"; /* HashMap */ let r = r#"SystemTime"#; // prose HashMap
"####;
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.text.contains("Instant")));
        assert!(!l.tokens.iter().any(|t| t.text.contains("HashMap")));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn directives_parse() {
        let src = "\
// tidy: allow(no-unwrap) -- invariant: pop follows successful peek
// tidy: sorted-before-use -- keys are collected and sorted two lines down
// ordering: counter is monotonic; readers only need eventual visibility
// tidy: lock-order(inbox < error)
// tidy: hot-path
";
        let l = lex(src);
        assert_eq!(l.errors, vec![]);
        assert_eq!(l.directives.len(), 5);
        assert!(matches!(
            &l.directives[0].kind,
            DirectiveKind::Allow { rule, .. } if rule == "no-unwrap"
        ));
        assert!(matches!(&l.directives[1].kind, DirectiveKind::SortedBeforeUse { .. }));
        assert!(matches!(&l.directives[2].kind, DirectiveKind::Ordering { .. }));
        assert!(matches!(
            &l.directives[3].kind,
            DirectiveKind::LockOrder { order } if order == &["inbox", "error"]
        ));
        assert!(matches!(&l.directives[4].kind, DirectiveKind::HotPath));
    }

    #[test]
    fn malformed_directives_error() {
        let l = lex("// tidy: allow(no-unwrap)\n// tidy: frobnicate\n// ordering: meh\n");
        assert_eq!(l.directives.len(), 0);
        assert_eq!(l.errors.len(), 3);
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let l = lex("/// tidy: allow(no-unwrap) -- doc example, not a directive\n//! ordering: also prose\n");
        assert!(l.directives.is_empty());
        assert!(l.errors.is_empty());
    }
}
