//! The rule catalog and the per-file checker.
//!
//! Rules operate on the token stream from [`crate::lexer`], never on raw
//! text: string literals, comments and doc examples can mention
//! `HashMap` or `.unwrap()` freely. Each rule fires as a [`Finding`];
//! findings can be suppressed by the justification directives defined
//! in the lexer (`tidy: allow`, `tidy: sorted-before-use`,
//! `ordering:`), and a justification that suppresses nothing is itself
//! a finding — stale allowances rot.
//!
//! See `DESIGN.md` §8 for the rationale behind every rule.

use crate::lexer::{self, DirectiveKind, Tok, TokKind};

/// One rule violation (or meta-finding such as a malformed directive).
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (workspace-relative when produced by the
    /// runner; the label passed in when produced by `check_source`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule identifier (`wall-clock`, `no-unwrap`, …).
    pub rule: &'static str,
    /// Human-readable description of this specific violation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Static description of a rule, for `--list` and the docs.
pub struct RuleInfo {
    /// Stable identifier used in findings and `allow(...)`.
    pub id: &'static str,
    /// One-line description.
    pub what: &'static str,
}

/// The full catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        what: "no Instant/SystemTime in sim-crate library code: simulated time only",
    },
    RuleInfo {
        id: "env-read",
        what: "no env::var/env::args in sim-crate library code: runs must not depend on ambient state",
    },
    RuleInfo {
        id: "hash-iter",
        what: "no HashMap/HashSet in sim-crate library code: iteration order is seeded per-process \
               (use BTreeMap/BTreeSet, or justify with `tidy: sorted-before-use`)",
    },
    RuleInfo {
        id: "float-eq",
        what: "no ==/!= on floating-point values in sim-crate library code: compare integer ticks",
    },
    RuleInfo {
        id: "float-ord",
        what: "no .partial_cmp() calls in sim-crate library code: use total_cmp so NaN cannot \
               poison an ordering",
    },
    RuleInfo {
        id: "atomic-ordering",
        what: "every Relaxed/Acquire/Release/AcqRel memory ordering needs an `// ordering:` \
               justification (SeqCst is the unjustified default)",
    },
    RuleInfo {
        id: "lock-order",
        what: "files with a `tidy: lock-order(...)` declaration must acquire locks in that order",
    },
    RuleInfo {
        id: "hot-path-sync",
        what: "modules declaring `tidy: hot-path` must not use blocking sync primitives (Barrier, \
               Mutex, RwLock, Condvar) in library code: the steady-state path is lock-free \
               rings and atomics (justify cold-path setup/teardown uses with \
               `tidy: allow(hot-path-sync)`)",
    },
    RuleInfo {
        id: "unsafe-code",
        what: "`unsafe` is forbidden outside the allowlist (currently empty)",
    },
    RuleInfo {
        id: "forbid-unsafe",
        what: "every crate root must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "no-print",
        what: "no println!/print!/eprintln!/eprint! in sim-crate library code: exporters and \
               reports go through writers or returned strings, never straight to the terminal",
    },
    RuleInfo {
        id: "no-unwrap",
        what: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test library \
               code: return SimError (or justify the invariant)",
    },
    RuleInfo {
        id: "hot-path-alloc",
        what: "modules declaring `tidy: hot-path` must not heap-allocate (Box::new, Vec::new, \
               vec![], .collect()) inside loop bodies: hoist into a reused scratch buffer",
    },
    RuleInfo {
        id: "net-isolation",
        what: "no std::net / std::process in sim-crate library code outside the daemon's socket \
               transport: tests must stay offline-deterministic on the loopback transport",
    },
    RuleInfo {
        id: "bad-directive",
        what: "malformed tidy/ordering directive comment",
    },
    RuleInfo {
        id: "unused-allow",
        what: "a justification directive that suppressed nothing (stale allowance)",
    },
];

/// How the runner classified a file; drives which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Determinism rules (wall-clock, env-read, hash-iter, float-eq,
    /// float-ord) apply. False for `bench` (it times wall-clock runs)
    /// and `tidy` itself.
    pub is_sim: bool,
    /// Library (non-test, non-bench, non-example) code: robustness and
    /// atomic-ordering rules apply.
    pub is_lib: bool,
    /// This file is a crate root and must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// This file must declare a `tidy: lock-order(...)`.
    pub requires_lock_order: bool,
    /// File is on the unsafe allowlist.
    pub allow_unsafe: bool,
    /// File may touch `std::net`/`std::process` (the daemon's socket
    /// transport is the only entry).
    pub allow_net: bool,
}

impl FileClass {
    /// The strictest classification: sim-crate library code.
    pub fn sim_lib() -> Self {
        FileClass {
            is_sim: true,
            is_lib: true,
            is_crate_root: false,
            requires_lock_order: false,
            allow_unsafe: false,
            allow_net: false,
        }
    }
}

/// Bookkeeping for one suppression directive.
struct Suppression {
    kind: DirectiveKind,
    line: u32,
    /// Lines this directive covers: its own line and the next line that
    /// carries code (for stand-alone comment lines).
    targets: [u32; 2],
    used: bool,
}

/// Run every applicable rule on one source file.
pub fn check_source(path: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let toks = &lexed.tokens;
    let test_mask = test_region_mask(toks);
    let mut findings: Vec<Finding> = Vec::new();

    for (line, msg) in &lexed.errors {
        findings.push(Finding {
            path: path.to_string(),
            line: *line,
            rule: "bad-directive",
            msg: msg.clone(),
        });
    }

    let mut supps: Vec<Suppression> = lexed
        .directives
        .iter()
        .filter(|d| !matches!(d.kind, DirectiveKind::LockOrder { .. } | DirectiveKind::HotPath))
        .map(|d| Suppression {
            kind: d.kind.clone(),
            line: d.line,
            targets: [d.line, next_code_line(toks, d.line)],
            used: false,
        })
        .collect();
    let lock_order: Option<Vec<String>> = lexed.directives.iter().find_map(|d| match &d.kind {
        DirectiveKind::LockOrder { order } => Some(order.clone()),
        _ => None,
    });
    let hot_path = lexed.directives.iter().any(|d| matches!(d.kind, DirectiveKind::HotPath));

    // Emit a finding unless a matching justification covers its line.
    let mut emit = |rule: &'static str, line: u32, msg: String, supps: &mut Vec<Suppression>| {
        for s in supps.iter_mut() {
            let covers = s.targets.contains(&line);
            let matches_rule = match &s.kind {
                DirectiveKind::Allow { rule: r, .. } => r == rule,
                DirectiveKind::SortedBeforeUse { .. } => rule == "hash-iter",
                DirectiveKind::Ordering { .. } => rule == "atomic-ordering",
                DirectiveKind::LockOrder { .. } | DirectiveKind::HotPath => false,
            };
            if covers && matches_rule {
                s.used = true;
                return;
            }
        }
        findings.push(Finding { path: path.to_string(), line, rule, msg });
    };

    // --- token-pattern rules ---------------------------------------
    for (i, t) in toks.iter().enumerate() {
        let in_test = test_mask[i];
        let lib_code = class.is_lib && !in_test;
        let sim_code = class.is_sim && lib_code;

        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            if sim_code && (name == "Instant" || name == "SystemTime") {
                emit(
                    "wall-clock",
                    t.line,
                    format!("`{name}` reads the host clock; simulations must use SimTime"),
                    &mut supps,
                );
            }
            if sim_code
                && name == "env"
                && punct(toks, i + 1, "::")
                && ident_in(toks, i + 2, &["var", "vars", "var_os", "vars_os", "args", "args_os"])
            {
                emit(
                    "env-read",
                    t.line,
                    format!(
                        "`env::{}` makes the run depend on ambient process state",
                        toks[i + 2].text
                    ),
                    &mut supps,
                );
            }
            if sim_code
                && !class.allow_net
                && name == "std"
                && punct(toks, i + 1, "::")
                && ident_in(toks, i + 2, &["net", "process"])
            {
                emit(
                    "net-isolation",
                    t.line,
                    format!(
                        "`std::{}` in sim-crate library code; real sockets and subprocesses \
                         live only in the daemon's socket transport — everything else runs \
                         on the deterministic loopback",
                        toks[i + 2].text
                    ),
                    &mut supps,
                );
            }
            if sim_code && (name == "HashMap" || name == "HashSet") {
                emit(
                    "hash-iter",
                    t.line,
                    format!(
                        "`{name}` iteration order is per-process; use BTreeMap/BTreeSet or \
                         justify with `tidy: sorted-before-use -- ...`"
                    ),
                    &mut supps,
                );
            }
            if lib_code && matches!(name, "Relaxed" | "Acquire" | "Release" | "AcqRel") {
                emit(
                    "atomic-ordering",
                    t.line,
                    format!(
                        "`Ordering::{name}` is weaker than SeqCst and needs an \
                         `// ordering:` justification"
                    ),
                    &mut supps,
                );
            }
            if name == "unsafe" && !class.allow_unsafe {
                emit(
                    "unsafe-code",
                    t.line,
                    "`unsafe` is forbidden outside the allowlist".to_string(),
                    &mut supps,
                );
            }
            if sim_code
                && matches!(name, "println" | "print" | "eprintln" | "eprint")
                && punct(toks, i + 1, "!")
            {
                emit(
                    "no-print",
                    t.line,
                    format!(
                        "`{name}!` in library code; route output through a writer or return \
                         a String (binaries and the bench harness may print)"
                    ),
                    &mut supps,
                );
            }
            if lib_code
                && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && punct(toks, i + 1, "!")
            {
                emit(
                    "no-unwrap",
                    t.line,
                    format!("`{name}!` in library code; return a structured SimError instead"),
                    &mut supps,
                );
            }
            if hot_path && lib_code && matches!(name, "Barrier" | "Mutex" | "RwLock" | "Condvar")
            {
                emit(
                    "hot-path-sync",
                    t.line,
                    format!(
                        "`{name}` in a `tidy: hot-path` module; the steady-state path must use \
                         lock-free rings and atomics (justify cold-path uses with \
                         `tidy: allow(hot-path-sync)`)"
                    ),
                    &mut supps,
                );
            }
        }

        if t.kind == TokKind::Punct && t.text == "." {
            if lib_code && ident_in(toks, i + 1, &["unwrap", "expect"]) {
                emit(
                    "no-unwrap",
                    toks[i + 1].line,
                    format!(
                        "`.{}()` in library code; return a structured SimError instead",
                        toks[i + 1].text
                    ),
                    &mut supps,
                );
            }
            if sim_code && ident_in(toks, i + 1, &["partial_cmp"]) {
                emit(
                    "float-ord",
                    toks[i + 1].line,
                    "`.partial_cmp()` returns None on NaN; use `total_cmp` for float keys"
                        .to_string(),
                    &mut supps,
                );
            }
        }

        if sim_code && t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            if let Some(side) = float_operand(toks, i) {
                emit(
                    "float-eq",
                    t.line,
                    format!(
                        "floating-point `{}` against {side}; compare integer ticks or use an \
                         epsilon",
                        t.text
                    ),
                    &mut supps,
                );
            }
        }
    }

    // --- hot-path allocation rule ----------------------------------
    // Declared per-file; only loop bodies are checked, because that is
    // where an allocation happens once per event rather than once per
    // run. Setup code above the loop may allocate freely.
    if hot_path && class.is_lib {
        let loop_mask = loop_body_mask(toks);
        for (i, t) in toks.iter().enumerate() {
            if !loop_mask[i] || test_mask[i] {
                continue;
            }
            if t.kind == TokKind::Ident {
                let name = t.text.as_str();
                if matches!(name, "Box" | "Vec")
                    && punct(toks, i + 1, "::")
                    && ident_in(toks, i + 2, &["new", "with_capacity"])
                {
                    emit(
                        "hot-path-alloc",
                        t.line,
                        format!(
                            "`{name}::{}` heap-allocates inside a loop body in a \
                             `tidy: hot-path` module; hoist it into a reused scratch buffer",
                            toks[i + 2].text
                        ),
                        &mut supps,
                    );
                }
                if name == "vec" && punct(toks, i + 1, "!") {
                    emit(
                        "hot-path-alloc",
                        t.line,
                        "`vec![...]` heap-allocates inside a loop body in a \
                         `tidy: hot-path` module; hoist it into a reused scratch buffer"
                            .to_string(),
                        &mut supps,
                    );
                }
            }
            if t.kind == TokKind::Punct && t.text == "." && ident_in(toks, i + 1, &["collect"]) {
                emit(
                    "hot-path-alloc",
                    toks[i + 1].line,
                    "`.collect()` builds a fresh container inside a loop body in a \
                     `tidy: hot-path` module; hoist it into a reused scratch buffer"
                        .to_string(),
                    &mut supps,
                );
            }
        }
    }

    // --- file-shape rules ------------------------------------------
    if class.is_crate_root && !has_forbid_unsafe(toks) {
        emit(
            "forbid-unsafe",
            1,
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
            &mut supps,
        );
    }

    match (&lock_order, class.requires_lock_order) {
        (None, true) => emit(
            "lock-order",
            1,
            "this file takes multiple locks and must declare \
             `// tidy: lock-order(a < b)`"
                .to_string(),
            &mut supps,
        ),
        (Some(order), _) => {
            // Route through `emit` so `tidy: allow(lock-order)` can cover
            // individual acquisitions (e.g. a generic lock helper whose
            // receiver name is a type parameter, not a real lock).
            let mut lo = Vec::new();
            check_lock_order(path, toks, order, &mut lo);
            for f in lo {
                emit("lock-order", f.line, f.msg, &mut supps);
            }
        }
        (None, false) => {}
    }

    for s in &supps {
        if !s.used {
            let what = match &s.kind {
                DirectiveKind::Allow { rule, .. } => format!("allow({rule})"),
                DirectiveKind::SortedBeforeUse { .. } => "sorted-before-use".to_string(),
                DirectiveKind::Ordering { .. } => "ordering:".to_string(),
                DirectiveKind::LockOrder { .. } => "lock-order".to_string(),
                DirectiveKind::HotPath => "hot-path".to_string(),
            };
            findings.push(Finding {
                path: path.to_string(),
                line: s.line,
                rule: "unused-allow",
                msg: format!("`{what}` justification suppressed nothing; remove it"),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Is `toks[i]` a punct with exactly this text?
fn punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Is `toks[i]` an ident among `set`?
fn ident_in(toks: &[Tok], i: usize, set: &[&str]) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && set.contains(&t.text.as_str()))
}

/// First line after `after` that carries a code token.
fn next_code_line(toks: &[Tok], after: u32) -> u32 {
    toks.iter().map(|t| t.line).filter(|&l| l > after).min().unwrap_or(0)
}

/// Mark every token inside a `for`/`while`/`loop` body. The body brace
/// is the first `{` after the loop keyword at paren/bracket depth 0, so
/// closure blocks inside the iterator or condition expression (always
/// inside a call's parentheses) do not truncate the body. `for` counts
/// only when a top-level `in` precedes the brace: `impl Trait for Type`
/// and HRTB `for<'a>` never have one.
fn loop_body_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_loop = match t.text.as_str() {
            "loop" | "while" => true,
            "for" => is_for_loop(toks, i),
            _ => false,
        };
        if !is_loop {
            continue;
        }
        if let Some(open) = body_brace(toks, i + 1) {
            let close = matching(toks, open, "{", "}");
            for m in mask.iter_mut().take(close + 1).skip(open) {
                *m = true;
            }
        }
    }
    mask
}

/// Is the `for` at `for_idx` a loop (vs `impl … for …` / HRTB)? A loop
/// has a top-level `in` between the keyword and its body brace.
fn is_for_loop(toks: &[Tok], for_idx: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[for_idx + 1..] {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(" | "[") => depth += 1,
            (TokKind::Punct, ")" | "]") => depth -= 1,
            (TokKind::Punct, "{" | ";") if depth == 0 => return false,
            (TokKind::Ident, "in") if depth == 0 => return true,
            _ => {}
        }
    }
    false
}

/// Index of the first `{` at paren/bracket depth 0 at or after `from`
/// (a loop's body brace), stopping at a top-level `;`.
fn body_brace(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(" | "[") => depth += 1,
            (TokKind::Punct, ")" | "]") => depth -= 1,
            (TokKind::Punct, "{") if depth == 0 => return Some(j),
            (TokKind::Punct, ";") if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Does either operand of the `==`/`!=` at `eq` look like a float?
/// Left: a float literal, or a call chain ending in `…_f64()`/`…_f32()`.
/// Right: a float literal, possibly negated.
fn float_operand(toks: &[Tok], eq: usize) -> Option<&'static str> {
    // Right side: `== 1.5` or `== -1.5`.
    match toks.get(eq + 1) {
        Some(t) if t.kind == TokKind::Float => return Some("a float literal"),
        Some(t) if t.kind == TokKind::Punct && t.text == "-" => {
            if toks.get(eq + 2).is_some_and(|t| t.kind == TokKind::Float) {
                return Some("a float literal");
            }
        }
        _ => {}
    }
    // Left side.
    if eq == 0 {
        return None;
    }
    let prev = &toks[eq - 1];
    if prev.kind == TokKind::Float {
        return Some("a float literal");
    }
    // `x.as_secs_f64() ==` — walk back over the `()` to the method name.
    if prev.kind == TokKind::Punct && prev.text == ")" {
        let mut depth = 1i32;
        let mut j = eq - 1;
        while j > 0 && depth > 0 {
            j -= 1;
            match toks[j].text.as_str() {
                ")" if toks[j].kind == TokKind::Punct => depth += 1,
                "(" if toks[j].kind == TokKind::Punct => depth -= 1,
                _ => {}
            }
        }
        if j > 0 {
            let callee = &toks[j - 1];
            if callee.kind == TokKind::Ident
                && (callee.text.ends_with("_f64") || callee.text.ends_with("_f32"))
            {
                return Some("an `…_f64()` conversion");
            }
        }
    }
    None
}

/// Does the file open with `#![forbid(unsafe_code)]`?
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Mark every token that lives inside a `#[cfg(test)]`- or
/// `#[test]`-gated item. Conservative: any attribute mentioning the
/// bare identifier `test` gates the item that follows.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if punct(toks, i, "#") && punct(toks, i + 1, "[") {
            let attr_end = matching(toks, i + 1, "[", "]");
            let gated = toks[i + 2..attr_end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test");
            if gated {
                // Skip any further attributes, then mark the item.
                let mut j = attr_end + 1;
                while punct(toks, j, "#") && punct(toks, j + 1, "[") {
                    j = matching(toks, j + 1, "[", "]") + 1;
                }
                let end = item_end(toks, j);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the delimiter matching `toks[open]`.
fn matching(toks: &[Tok], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            if toks[i].text == o {
                depth += 1;
            } else if toks[i].text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// End (inclusive) of the item starting at `start`: the matching `}` of
/// its first body brace, or the first top-level `;` (for `mod x;`,
/// `use …;`, statics).
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    let mut depth = 0i32;
    while i < toks.len() {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "{") => {
                let end = matching(toks, i, "{", "}");
                return end;
            }
            (TokKind::Punct, ";") if depth == 0 => return i,
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Enforce a declared lock order: scanning the file, every `.lock(`
/// acquisition must name a declared lock, and a lock may only be
/// acquired while all currently-held locks precede it in the declared
/// order. Held-until is approximated as "to the end of the enclosing
/// block", which is conservative (guards can drop earlier) but exact
/// for the `let guard = x.lock()…` shape the executor uses.
fn check_lock_order(path: &str, toks: &[Tok], order: &[String], findings: &mut Vec<Finding>) {
    let idx_of = |name: &str| order.iter().position(|o| o == name);
    let mut held: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|&(_, d)| d <= depth);
                }
                "." if ident_in(toks, i + 1, &["lock"]) && punct(toks, i + 2, "(") => {
                    let name = receiver_name(toks, i);
                    let line = toks[i + 1].line;
                    match name.as_deref().and_then(idx_of) {
                        None => findings.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "lock-order",
                            msg: format!(
                                "lock `{}` is not in the declared lock-order ({})",
                                name.as_deref().unwrap_or("<unknown>"),
                                order.join(" < ")
                            ),
                        }),
                        Some(my) => {
                            for (h, _) in &held {
                                if idx_of(h).is_some_and(|hi| hi > my) {
                                    findings.push(Finding {
                                        path: path.to_string(),
                                        line,
                                        rule: "lock-order",
                                        msg: format!(
                                            "acquiring `{}` while holding `{h}` violates the \
                                             declared order ({})",
                                            order[my],
                                            order.join(" < ")
                                        ),
                                    });
                                }
                            }
                            held.push((order[my].clone(), depth));
                        }
                    }
                    i += 2;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Name of the receiver of the `.lock()` whose dot is at `dot`: the
/// identifier before the dot, skipping one balanced `[…]`/`(…)` group
/// (for `slots[part].lock()` shapes).
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    if toks[j].kind == TokKind::Punct && (toks[j].text == "]" || toks[j].text == ")") {
        let (c, o) = if toks[j].text == "]" { ("]", "[") } else { (")", "(") };
        let mut depth = 0i32;
        loop {
            if toks[j].kind == TokKind::Punct {
                if toks[j].text == c {
                    depth += 1;
                } else if toks[j].text == o {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check_source("test.rs", src, &FileClass::sim_lib())
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "
fn lib() { }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u8, u8>::new(); foo().unwrap(); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn lib_code_outside_test_mod_is_checked() {
        let src = "
use std::collections::HashMap;
#[cfg(test)]
mod tests {}
";
        assert_eq!(rules_of(&run(src)), ["hash-iter"]);
    }

    #[test]
    fn suppression_covers_next_line() {
        let src = "
// tidy: allow(no-unwrap) -- invariant: the peek above guarantees Some
fn f(v: &mut Vec<u8>) -> u8 { v.pop().unwrap() }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn hot_path_flags_allocation_in_loop_bodies_only() {
        let src = "
// tidy: hot-path
pub fn f(n: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..n {
        let mut b = Vec::new();
        b.push(1u8);
        out.extend(b);
    }
    out
}
";
        let f = run(src);
        assert_eq!(rules_of(&f), ["hot-path-alloc"]);
        assert_eq!(f.len(), 1, "the pre-loop Vec::new must not fire: {f:?}");
    }

    #[test]
    fn hot_path_ignores_impl_for_and_silent_without_directive() {
        let hot = "
// tidy: hot-path
pub struct S(pub u8);
impl Clone for S {
    fn clone(&self) -> S {
        let b = Box::new(self.0);
        S(*b)
    }
}
";
        assert!(run(hot).is_empty(), "{:?}", run(hot));
        let undeclared = "
pub fn f(n: u32) { for _ in 0..n { let _ = Box::new(n); } }
";
        assert!(run(undeclared).is_empty(), "{:?}", run(undeclared));
    }

    #[test]
    fn hot_path_alloc_can_be_justified() {
        let src = "
// tidy: hot-path
pub fn f(n: u32) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for _ in 0..n {
        // tidy: allow(hot-path-alloc) -- cold error branch, taken at most once per run
        out.push(Vec::new());
    }
    out
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "
// tidy: allow(wall-clock) -- nothing here actually reads the clock
fn f() {}
";
        assert_eq!(rules_of(&run(src)), ["unused-allow"]);
    }
}
