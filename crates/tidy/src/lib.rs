//! # dqos-tidy
//!
//! A hand-rolled, zero-dependency static analysis pass for the
//! `deadline-qos` workspace, in the spirit of rustc's `tidy`. The
//! simulator's headline guarantee — parallel reports bit-identical to
//! the serial oracle for every seed, architecture, fault plan and
//! worker count — is exactly the property that dies quietly from a
//! stray `HashMap` iteration, a wall-clock read, or an under-ordered
//! atomic. These rules machine-check the contracts the executor's
//! correctness argument rests on; reviewer vigilance does not scale.
//!
//! Three rule groups (full catalog in [`rules::RULES`] and DESIGN.md §8):
//!
//! * **determinism** — no host clocks, no ambient environment, no
//!   unordered-container iteration, no float equality in simulation
//!   library code;
//! * **concurrency hygiene** — relaxed atomic orderings need written
//!   justification, multi-lock files declare and respect a lock order,
//!   `unsafe` is forbidden;
//! * **robustness** — library code returns structured errors instead
//!   of panicking, and never prints to the terminal (exporters and
//!   reports go through writers or returned strings).
//!
//! Violations that are deliberate carry inline justification
//! directives (`// tidy: allow(<rule>) -- <reason>`); a directive that
//! suppresses nothing is itself an error, so allowances cannot rot.
//!
//! There is no `syn`, no `proc-macro2`, no regex crate: [`lexer`] is a
//! ~300-line comment/string-aware tokenizer, which is all these rules
//! need and keeps the workspace dependency-free (DESIGN.md
//! "Dependency policy").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod runner;

pub use rules::{check_source, FileClass, Finding, RuleInfo, RULES};
pub use runner::{check_workspace, classify, workspace_files};
