//! Every rule demonstrably fires (bad fixture) and demonstrably stays
//! quiet on the idiomatic alternative (ok fixture) — plus the self-check
//! that the real workspace is clean, which is what keeps the justification
//! comments in the tree honest.
//!
//! Fixtures live under `tests/fixtures/`; the workspace walker skips any
//! directory named `fixtures`, so the deliberate violations in the bad
//! files never pollute a real `dqos-tidy` run.

use dqos_tidy::{check_source, check_workspace, FileClass, Finding};

/// Run one fixture under the given classification.
fn run(name: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    check_source(name, src, class)
}

/// Rules that fired, deduplicated, in finding order.
fn rules_of(findings: &[Finding]) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    for f in findings {
        if !out.contains(&f.rule) {
            out.push(f.rule);
        }
    }
    out
}

/// Assert the bad fixture fires `rule` and the ok fixture is silent.
fn assert_pair(rule: &str, bad: &str, ok: &str, class: &FileClass) {
    let bad_findings = run("bad", bad, class);
    assert!(
        bad_findings.iter().any(|f| f.rule == rule),
        "bad fixture for `{rule}` did not fire it; got {:?}",
        rules_of(&bad_findings)
    );
    let ok_findings = run("ok", ok, class);
    assert!(
        ok_findings.is_empty(),
        "ok fixture for `{rule}` is not clean; got {ok_findings:?}"
    );
}

fn crate_root_class() -> FileClass {
    let mut c = FileClass::sim_lib();
    c.is_crate_root = true;
    c
}

fn lock_order_class() -> FileClass {
    let mut c = FileClass::sim_lib();
    c.requires_lock_order = true;
    c
}

#[test]
fn wall_clock() {
    assert_pair(
        "wall-clock",
        include_str!("fixtures/bad_wall_clock.rs"),
        include_str!("fixtures/ok_wall_clock.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn env_read() {
    assert_pair(
        "env-read",
        include_str!("fixtures/bad_env_read.rs"),
        include_str!("fixtures/ok_env_read.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn hash_iter() {
    assert_pair(
        "hash-iter",
        include_str!("fixtures/bad_hash_iter.rs"),
        include_str!("fixtures/ok_hash_iter.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn float_eq() {
    assert_pair(
        "float-eq",
        include_str!("fixtures/bad_float_eq.rs"),
        include_str!("fixtures/ok_float_eq.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn float_ord() {
    assert_pair(
        "float-ord",
        include_str!("fixtures/bad_float_ord.rs"),
        include_str!("fixtures/ok_float_ord.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn atomic_ordering() {
    assert_pair(
        "atomic-ordering",
        include_str!("fixtures/bad_atomic_ordering.rs"),
        include_str!("fixtures/ok_atomic_ordering.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn lock_order() {
    assert_pair(
        "lock-order",
        include_str!("fixtures/bad_lock_order.rs"),
        include_str!("fixtures/ok_lock_order.rs"),
        &lock_order_class(),
    );
}

#[test]
fn lock_order_missing_declaration_fires() {
    // A file classified as lock-order-required but carrying no
    // `tidy: lock-order(...)` declaration is itself a finding.
    let findings = run("bad", "pub fn f() {}\n", &lock_order_class());
    assert!(
        findings.iter().any(|f| f.rule == "lock-order"),
        "missing declaration did not fire lock-order; got {findings:?}"
    );
}

#[test]
fn unsafe_code() {
    assert_pair(
        "unsafe-code",
        include_str!("fixtures/bad_unsafe.rs"),
        include_str!("fixtures/ok_unsafe.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn forbid_unsafe() {
    assert_pair(
        "forbid-unsafe",
        include_str!("fixtures/bad_forbid_unsafe.rs"),
        include_str!("fixtures/ok_forbid_unsafe.rs"),
        &crate_root_class(),
    );
}

#[test]
fn no_print() {
    assert_pair(
        "no-print",
        include_str!("fixtures/bad_no_print.rs"),
        include_str!("fixtures/ok_no_print.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn no_unwrap() {
    assert_pair(
        "no-unwrap",
        include_str!("fixtures/bad_no_unwrap.rs"),
        include_str!("fixtures/ok_no_unwrap.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn hot_path_alloc() {
    assert_pair(
        "hot-path-alloc",
        include_str!("fixtures/bad_hot_path_alloc.rs"),
        include_str!("fixtures/ok_hot_path_alloc.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn hot_path_alloc_fires_once_per_allocation() {
    // The bad fixture allocates in three distinct loops (Vec::new,
    // Box::new, .collect()) — each must be its own finding.
    let findings = run(
        "bad",
        include_str!("fixtures/bad_hot_path_alloc.rs"),
        &FileClass::sim_lib(),
    );
    let hits = findings.iter().filter(|f| f.rule == "hot-path-alloc").count();
    assert_eq!(hits, 3, "expected one finding per allocating loop; got {findings:?}");
}

#[test]
fn hot_path_sync() {
    assert_pair(
        "hot-path-sync",
        include_str!("fixtures/bad_hot_path_sync.rs"),
        include_str!("fixtures/ok_hot_path_sync.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn hot_path_sync_only_applies_to_declared_modules() {
    // The same blocking primitives are fine in a module that never
    // declares `tidy: hot-path` — this rule bans them on the executor's
    // steady-state path, not workspace-wide.
    let src = include_str!("fixtures/bad_hot_path_sync.rs")
        .replace("// tidy: hot-path\n", "");
    let findings = run("bad", &src, &FileClass::sim_lib());
    assert!(
        !findings.iter().any(|f| f.rule == "hot-path-sync"),
        "hot-path-sync fired without a hot-path declaration: {findings:?}"
    );
}

#[test]
fn net_isolation() {
    assert_pair(
        "net-isolation",
        include_str!("fixtures/bad_net_isolation.rs"),
        include_str!("fixtures/ok_net_isolation.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn net_isolation_allowlisted_file_is_exempt() {
    let mut class = FileClass::sim_lib();
    class.allow_net = true;
    let findings = run(
        "socket.rs",
        include_str!("fixtures/bad_net_isolation.rs"),
        &class,
    );
    assert!(
        !findings.iter().any(|f| f.rule == "net-isolation"),
        "allowlisted socket transport must not fire net-isolation; got {findings:?}"
    );
}

#[test]
fn bad_directive() {
    assert_pair(
        "bad-directive",
        include_str!("fixtures/bad_bad_directive.rs"),
        include_str!("fixtures/ok_bad_directive.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn unused_allow() {
    assert_pair(
        "unused-allow",
        include_str!("fixtures/bad_unused_allow.rs"),
        include_str!("fixtures/ok_unused_allow.rs"),
        &FileClass::sim_lib(),
    );
}

#[test]
fn every_rule_has_a_fixture_pair() {
    // Rules added to the catalog must come with fixture coverage; this
    // keeps the pairs above in lock-step with `RULES`.
    let covered = [
        "wall-clock",
        "env-read",
        "hash-iter",
        "float-eq",
        "float-ord",
        "atomic-ordering",
        "lock-order",
        "unsafe-code",
        "forbid-unsafe",
        "no-print",
        "no-unwrap",
        "hot-path-alloc",
        "hot-path-sync",
        "net-isolation",
        "bad-directive",
        "unused-allow",
    ];
    for r in dqos_tidy::RULES {
        assert!(
            covered.contains(&r.id),
            "rule `{}` has no fixture pair in tests/fixtures.rs",
            r.id
        );
    }
    assert_eq!(covered.len(), dqos_tidy::RULES.len());
}

#[test]
fn real_workspace_is_clean() {
    // CARGO_MANIFEST_DIR is crates/tidy; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = check_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "dqos-tidy found {} finding(s) in the real workspace:\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
