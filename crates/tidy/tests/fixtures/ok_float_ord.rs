//! Fixture: total_cmp gives floats a total order, NaN included.
pub fn sort_loads(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
