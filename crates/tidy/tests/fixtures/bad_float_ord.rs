//! Fixture: partial_cmp on float sort keys (None on NaN).
pub fn sort_loads(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
