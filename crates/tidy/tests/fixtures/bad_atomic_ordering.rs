//! Fixture: relaxed atomic with no ordering justification.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim(next: &AtomicUsize) -> usize {
    next.fetch_add(1, Ordering::Relaxed)
}
