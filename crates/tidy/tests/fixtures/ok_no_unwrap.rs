//! Fixture: structured handling in the library, unwrap only in tests.
pub fn last(v: &[u8]) -> Result<u8, String> {
    v.last().copied().ok_or_else(|| "empty slice".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(super::last(&[1, 2]).unwrap(), 2);
    }
}
