//! Fixture: the safe equivalent.
pub fn transmuted(x: u32) -> f32 {
    f32::from_bits(x)
}
