//! Fixture: HashMap in sim code with no iteration-order justification.
use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
