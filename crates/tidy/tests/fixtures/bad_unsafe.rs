//! Fixture: unsafe block outside the allowlist.
pub fn transmuted(x: u32) -> f32 {
    unsafe { std::mem::transmute(x) }
}
