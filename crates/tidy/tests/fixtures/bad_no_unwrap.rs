//! Fixture: unwrap in library code.
pub fn last(v: &[u8]) -> u8 {
    *v.last().unwrap()
}
