//! Fixture: a justification left behind after the code it excused went away.
// tidy: allow(no-unwrap) -- stale note from a refactor that removed the unwrap
pub fn add_one(x: u8) -> u8 {
    x.saturating_add(1)
}
