//! Fixture: the idiomatic alternative — allocations hoisted out of the
//! loop into reused scratch buffers, cleared per iteration.
// tidy: hot-path

pub fn drain(events: &[u32], scratch: &mut Vec<u32>) -> u64 {
    let mut sum = 0u64;
    for &e in events {
        scratch.clear();
        scratch.push(e);
        sum += u64::from(scratch[0]);
    }
    sum
}

pub fn setup_may_allocate(n: usize) -> Vec<u32> {
    // Allocation outside any loop body is fine: it happens once per
    // run, not once per event.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(i as u32);
    }
    out
}
