//! Fixture: a crate root carrying the forbid attribute.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inner {}
