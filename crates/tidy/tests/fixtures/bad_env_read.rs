//! Fixture: worker count pulled from ambient process state.
pub fn workers() -> usize {
    match std::env::var("WORKERS") {
        Ok(s) => s.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
