//! Fixture: time passed in as simulation ticks, never read from the host.
pub fn elapsed_ns(now: u64, start: u64) -> u64 {
    now.saturating_sub(start)
}
