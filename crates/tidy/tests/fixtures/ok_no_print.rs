//! Fixture: library code renders to a writer or a returned String;
//! only the caller (a binary, an example, a test) decides where it goes.
use std::io::Write;

pub fn export<W: Write>(events: &[u64], out: &mut W) -> std::io::Result<()> {
    for e in events {
        writeln!(out, "event {e}")?;
    }
    Ok(())
}

pub fn summary(events: &[u64]) -> String {
    format!("exported {} events", events.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("{}", super::summary(&[1, 2, 3]));
    }
}
