//! Fixture: configuration arrives as a parameter, not from the environment.
pub fn workers(configured: usize) -> usize {
    configured.max(1)
}
