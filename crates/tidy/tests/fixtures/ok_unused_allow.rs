//! Fixture: every justification present suppresses a real finding.
pub fn head(v: &[u8]) -> u8 {
    // tidy: allow(no-unwrap) -- fixture invariant: callers never pass empty
    *v.first().unwrap()
}
