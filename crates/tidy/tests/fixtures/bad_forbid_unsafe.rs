//! Fixture: a crate root without the forbid attribute.
#![warn(missing_docs)]

pub mod inner {}
