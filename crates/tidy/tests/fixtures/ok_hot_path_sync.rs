//! Fixture: the idiomatic alternative — atomics on the steady-state
//! path, with the one cold-path `Mutex` (a first-error latch that is
//! only locked when the run is already failing) justified by an
//! `allow(hot-path-sync)` comment.
// tidy: hot-path

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
// tidy: allow(hot-path-sync) -- cold first-error latch, locked only after a run has already failed.
use std::sync::Mutex;

pub struct Progress {
    pub head: AtomicU64,
    // tidy: allow(hot-path-sync) -- cold first-error latch, locked only after a run has already failed.
    pub error: Mutex<Option<String>>,
}

pub fn publish(p: &Progress, head: u64) {
    p.head.store(head, SeqCst);
}

pub fn fail(p: &Progress, why: String) {
    let mut slot = match p.error.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.get_or_insert(why);
}
