//! Fixture: nested acquisition respecting the declared order.
// tidy: lock-order(inbox < error)
use std::sync::Mutex;

pub struct Shared {
    pub inbox: Mutex<Vec<u64>>,
    pub error: Mutex<Option<String>>,
}

pub fn drain_and_fail(s: &Shared) {
    let mut i = s.inbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut e = s.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *e = Some(format!("{} pending", i.len()));
    i.clear();
}
