//! Fixture: printing straight to the terminal from library code.
pub fn export(events: &[u64]) {
    for e in events {
        println!("event {e}");
    }
    eprintln!("exported {} events", events.len());
}
