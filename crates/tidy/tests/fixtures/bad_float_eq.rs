//! Fixture: exact floating-point equality on a measured value.
pub fn is_unit_load(load: f64) -> bool {
    load == 1.0
}
