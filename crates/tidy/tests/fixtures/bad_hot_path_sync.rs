//! Fixture: a declared hot-path module reaching for blocking sync
//! primitives — the barrier-stepped executor style the free-running
//! rebuild removed.
// tidy: hot-path

use std::sync::{Barrier, Mutex};

pub struct Stepper {
    pub barrier: Barrier,
    pub shared: Mutex<Vec<u64>>,
}

pub fn step(s: &Stepper, v: u64) {
    s.shared.lock().unwrap().push(v);
    s.barrier.wait();
}
