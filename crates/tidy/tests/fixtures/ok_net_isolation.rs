//! Fixture: frames travel through an injected transport, never a socket.
pub trait Transport {
    fn send(&mut self, frame: &[u8]);
}

pub fn publish(t: &mut impl Transport, frame: &[u8]) {
    t.send(frame);
}
