//! Fixture: relaxed atomic carrying its justification comment.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim(next: &AtomicUsize) -> usize {
    // ordering: the counter only hands out unique indices; the claimed
    // data is published before the threads spawn, so no pairing needed.
    next.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::SeqCst)
}
