//! Fixture: an allow directive with no `-- reason` clause.
// tidy: allow(no-unwrap)
pub fn last(v: &[u8]) -> u8 {
    *v.last().unwrap()
}
