//! Fixture: epsilon comparison instead of exact float equality.
pub fn is_unit_load(load: f64) -> bool {
    (load - 1.0).abs() < 1e-9
}
