//! Fixture: heap-allocates once per event inside the drain loops of a
//! declared hot-path module.
// tidy: hot-path

pub fn drain(events: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for &e in events {
        let mut batch = Vec::new();
        batch.push(e);
        out.push(batch);
    }
    out
}

pub fn widen(events: &[u32]) -> Vec<Box<u32>> {
    let mut out = Vec::new();
    let mut it = events.iter();
    while let Some(&e) = it.next() {
        out.push(Box::new(e));
    }
    out
}

pub fn doubled(events: &[u32]) -> u64 {
    let mut sum = 0u64;
    for &e in events {
        let pair: Vec<u64> = [e, e].iter().map(|&x| u64::from(x)).collect();
        sum += pair[0] + pair[1];
    }
    sum
}
