//! Fixture: a well-formed, used justification directive.
pub fn last(v: &[u8]) -> u8 {
    // tidy: allow(no-unwrap) -- fixture invariant: callers never pass empty
    *v.last().unwrap()
}
