//! Fixture: ordered map by default; hash map only with a justification.
use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

// tidy: sorted-before-use -- membership queries only; this set is never iterated
pub fn dedup_count(keys: &[u32], seen: &mut std::collections::HashSet<u32>) -> usize {
    keys.iter().filter(|&&k| seen.insert(k)).count()
}
