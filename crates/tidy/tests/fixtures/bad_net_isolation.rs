//! Fixture: library code opening real sockets and spawning processes.
pub fn listen() -> std::io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind("127.0.0.1:0")
}

pub fn shell_out() -> std::io::Result<std::process::Output> {
    std::process::Command::new("true").output()
}
