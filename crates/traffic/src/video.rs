//! Synthetic MPEG-4 video streams.
//!
//! The paper transmits "actual MPEG video sequences" at 3 Mbyte/s, one
//! frame every 40 ms, frame sizes 1–120 KiB (Table 1, §3.1). We lack the
//! trace files, so we synthesise sequences with the structure that
//! matters to the experiments:
//!
//! * fixed 40 ms frame cadence with a per-stream random phase,
//! * a 12-frame group of pictures (GoP) `I B B P B B P B B P B B` whose
//!   I/P/B frames have mean sizes in ratio 5 : 3 : 1 (typical for
//!   MPEG-4), scaled so the long-run rate equals the stream bandwidth,
//! * log-normal size jitter per frame (cv 0.3), clamped to Table 1's
//!   1–120 KiB.
//!
//! Each stream has a fixed destination (it is an admitted, routed flow).

use crate::source::{AppMessage, TrafficSource};
use dqos_core::TrafficClass;
use dqos_sim_core::dist::LogNormal;
use dqos_sim_core::{Bandwidth, SimDuration, SimRng, SimTime};
use dqos_topology::HostId;

/// The paper's GoP pattern: I, then (B B P) x3, then B B.
const GOP: [FrameKind; 12] = [
    FrameKind::I,
    FrameKind::B,
    FrameKind::B,
    FrameKind::P,
    FrameKind::B,
    FrameKind::B,
    FrameKind::P,
    FrameKind::B,
    FrameKind::B,
    FrameKind::P,
    FrameKind::B,
    FrameKind::B,
];

/// Relative mean sizes I : P : B.
const SIZE_RATIO: [f64; 3] = [5.0, 3.0, 1.0];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    I,
    P,
    B,
}

impl FrameKind {
    fn ratio(self) -> f64 {
        match self {
            FrameKind::I => SIZE_RATIO[0],
            FrameKind::P => SIZE_RATIO[1],
            FrameKind::B => SIZE_RATIO[2],
        }
    }
}

/// One MPEG-4 stream.
#[derive(Debug, Clone)]
pub struct VideoSource {
    dst: HostId,
    stream: u32,
    frame_period: SimDuration,
    /// Mean size per GoP slot, bytes.
    slot_means: [f64; 12],
    jitter: LogNormal,
    min_frame: u64,
    max_frame: u64,
    gop_pos: usize,
}

impl VideoSource {
    /// A stream of `rate` (3 MB/s in the paper) to `dst`, one frame per
    /// `frame_period` (40 ms in the paper), sizes clamped to
    /// `[min_frame, max_frame]` (1–120 KiB in Table 1).
    pub fn new(
        dst: HostId,
        stream: u32,
        rate: Bandwidth,
        frame_period: SimDuration,
        min_frame: u64,
        max_frame: u64,
    ) -> Self {
        assert!(min_frame > 0 && min_frame < max_frame, "bad frame size range");
        let mean_frame = rate.as_bytes_per_sec() as f64 * frame_period.as_secs_f64();
        // Normalise the GoP ratios so the average slot equals mean_frame.
        let ratio_mean: f64 = GOP.iter().map(|k| k.ratio()).sum::<f64>() / GOP.len() as f64;
        let mut slot_means = [0.0; 12];
        for (s, k) in slot_means.iter_mut().zip(GOP.iter()) {
            *s = mean_frame * k.ratio() / ratio_mean;
        }
        VideoSource {
            dst,
            stream,
            frame_period,
            slot_means,
            jitter: LogNormal::from_mean_cv(1.0, 0.3),
            min_frame,
            max_frame,
            gop_pos: 0,
        }
    }

    /// The frame cadence.
    pub fn frame_period(&self) -> SimDuration {
        self.frame_period
    }
}

impl TrafficSource for VideoSource {
    fn class(&self) -> TrafficClass {
        TrafficClass::Multimedia
    }

    fn fixed_dst(&self) -> Option<HostId> {
        Some(self.dst)
    }

    fn first_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        // Random phase within one period, and a random GoP start, so
        // streams (and their I frames) de-synchronise.
        self.gop_pos = rng.index(GOP.len());
        SimTime::from_ns(rng.range_u64(0, self.frame_period.as_ns() - 1))
    }

    fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (AppMessage, SimTime) {
        let mean = self.slot_means[self.gop_pos];
        self.gop_pos = (self.gop_pos + 1) % GOP.len();
        let size = (mean * self.jitter.sample(rng)) as u64;
        let bytes = size.clamp(self.min_frame, self.max_frame);
        let msg = AppMessage {
            dst: self.dst,
            class: TrafficClass::Multimedia,
            bytes,
            stream: Some(self.stream),
        };
        (msg, now + self.frame_period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_stream() -> VideoSource {
        // §3.1's self-consistent numbers: 400 KB/s, 40 ms cadence,
        // 1–120 KiB frames (see MixConfig::paper for why not Table 1's
        // "3 Mbyte/s").
        VideoSource::new(
            HostId(1),
            0,
            Bandwidth::bytes_per_sec(400_000),
            SimDuration::from_ms(40),
            1024,
            120 * 1024,
        )
    }

    fn frames(src: &mut VideoSource, seed: u64, n: usize) -> Vec<(SimTime, u64)> {
        let mut rng = SimRng::new(seed);
        let mut t = src.first_arrival(&mut rng);
        let mut out = vec![];
        for _ in 0..n {
            let (m, next) = src.emit(t, &mut rng);
            out.push((t, m.bytes));
            t = next;
        }
        out
    }

    #[test]
    fn fixed_cadence() {
        let mut s = paper_stream();
        let fs = frames(&mut s, 1, 50);
        assert!(fs[0].0 < SimTime::from_ms(40), "phase within one period");
        for w in fs.windows(2) {
            assert_eq!(w[1].0 - w[0].0, SimDuration::from_ms(40));
        }
    }

    #[test]
    fn sizes_in_range_and_bursty() {
        let mut s = paper_stream();
        let fs = frames(&mut s, 2, 600);
        let sizes: Vec<u64> = fs.iter().map(|&(_, b)| b).collect();
        assert!(sizes.iter().all(|&b| (1024..=120 * 1024).contains(&b)));
        // I frames are several times larger than B frames: the max/min
        // ratio over a few GoPs must be substantial.
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 3.0, "GoP burstiness missing: {max}/{min}");
    }

    #[test]
    fn long_run_rate_matches_stream_bandwidth() {
        let mut s = paper_stream();
        let n = 1200; // 48 seconds of video
        let total: u64 = frames(&mut s, 3, n).iter().map(|&(_, b)| b).sum();
        let rate = total as f64 / (n as f64 * 0.040);
        let err = (rate - 4.0e5).abs() / 4.0e5;
        assert!(err < 0.05, "rate {rate:.0} B/s, err {err:.3}");
    }

    #[test]
    fn gop_pattern_repeats() {
        let mut s = paper_stream();
        s.gop_pos = 0; // force I first for the test
        let mut rng = SimRng::new(4);
        // Average many GoPs per slot position to beat the jitter.
        let mut slot_sums = [0f64; 12];
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            for sum in slot_sums.iter_mut() {
                let (m, next) = s.emit(t, &mut rng);
                *sum += m.bytes as f64;
                t = next;
            }
        }
        // Configured ratios are I:P:B = 5:3:1; with cv-0.3 jitter the
        // averages should sit close to them.
        assert!(slot_sums[0] > 1.3 * slot_sums[3], "I ≈ 1.67x P expected");
        assert!(slot_sums[3] > 2.0 * slot_sums[1], "P ≈ 3x B expected");
    }

    #[test]
    fn phase_randomised_across_streams() {
        let mut phases = std::collections::HashSet::new();
        for i in 0..20 {
            let mut s = paper_stream();
            let mut rng = SimRng::new(100 + i);
            phases.insert(s.first_arrival(&mut rng).as_ns());
        }
        assert!(phases.len() > 15, "streams start in lockstep");
    }
}
