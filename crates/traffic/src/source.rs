//! The generator interface.

use dqos_core::TrafficClass;
use dqos_sim_core::{SimRng, SimTime};
use dqos_topology::HostId;

/// One application message (frame / control message / transfer) handed to
/// the source host's NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppMessage {
    /// Destination host.
    pub dst: HostId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Message length in bytes (segmented into MTU packets by the host).
    pub bytes: u64,
    /// Source-local stream index for per-stream flows (video); `None`
    /// for classes using aggregated flow records.
    pub stream: Option<u32>,
}

/// A pull-based traffic source.
///
/// The simulator calls [`TrafficSource::first_arrival`] once to learn the
/// initial event time, then [`TrafficSource::emit`] at each firing, which
/// returns the message plus the absolute time of the next firing.
///
/// Sources are `Send` so the partitioned runtime can move a host's
/// sources onto whichever worker thread owns that host's partition.
pub trait TrafficSource: Send {
    /// The class this source produces.
    fn class(&self) -> TrafficClass;

    /// Initial arrival time (sources randomise their phase so hosts do
    /// not beat in lockstep).
    fn first_arrival(&mut self, rng: &mut SimRng) -> SimTime;

    /// Produce the message due now and schedule the next.
    fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (AppMessage, SimTime);

    /// The fixed destination, for sources that are admitted point-to-point
    /// flows (video streams). `None` for sources that draw destinations
    /// per message/burst.
    fn fixed_dst(&self) -> Option<HostId> {
        None
    }
}

/// A traffic source bound to its own private RNG stream: the node-model
/// form of a generator.
///
/// The monolithic loop drew all of a host's sources from one host RNG in
/// whatever order their events happened to pop; giving each source its
/// own forked stream makes a firing's randomness a pure function of
/// *which* source fired, independent of global event interleaving — the
/// property the conservative-parallel executor needs.
pub struct SourceNode {
    /// The generator.
    pub source: Box<dyn TrafficSource>,
    /// Its private random stream.
    pub rng: SimRng,
}

impl SourceNode {
    /// Wrap `source` with its own random stream.
    pub fn new(source: Box<dyn TrafficSource>, rng: SimRng) -> Self {
        SourceNode { source, rng }
    }

    /// Initial firing time (see [`TrafficSource::first_arrival`]).
    pub fn first_arrival(&mut self) -> SimTime {
        self.source.first_arrival(&mut self.rng)
    }
}

impl dqos_core::NodeModel for SourceNode {
    type Event = ();
    type Effect = (AppMessage, SimTime);

    /// A firing: produce the message due at local time `local` and the
    /// absolute time of the next firing.
    fn on_event(&mut self, local: SimTime, _ev: ()) -> (AppMessage, SimTime) {
        self.source.emit(local, &mut self.rng)
    }
}

/// Draw a uniformly random destination different from `src`.
pub fn random_dst(src: HostId, n_hosts: u32, rng: &mut SimRng) -> HostId {
    debug_assert!(n_hosts >= 2, "need at least two hosts");
    let mut d = rng.range_u64(0, n_hosts as u64 - 2) as u32;
    if d >= src.0 {
        d += 1;
    }
    HostId(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dst_never_self_and_covers_all() {
        let mut rng = SimRng::new(1);
        let src = HostId(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let d = random_dst(src, 8, &mut rng);
            assert_ne!(d, src);
            assert!(d.0 < 8);
            seen[d.idx()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn random_dst_two_hosts() {
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            assert_eq!(random_dst(HostId(0), 2, &mut rng), HostId(1));
            assert_eq!(random_dst(HostId(1), 2, &mut rng), HostId(0));
        }
    }
}
