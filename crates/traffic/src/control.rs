//! Control traffic: small latency-critical messages.
//!
//! Poisson arrivals (exponential inter-arrival), message sizes uniform in
//! Table 1's 128 B – 2 KiB range, each message to an independently drawn
//! random destination. The exponential mean is chosen so the long-run
//! byte rate matches the configured share of link bandwidth.

use crate::source::{random_dst, AppMessage, TrafficSource};
use dqos_core::TrafficClass;
use dqos_sim_core::dist::Exponential;
use dqos_sim_core::{Bandwidth, SimDuration, SimRng, SimTime};
use dqos_topology::HostId;

/// Poisson control-message source for one host.
#[derive(Debug, Clone)]
pub struct ControlSource {
    src: HostId,
    n_hosts: u32,
    size_lo: u32,
    size_hi: u32,
    gap: Exponential,
}

impl ControlSource {
    /// A source emitting `rate` bytes/sec of messages sized uniformly in
    /// `[size_lo, size_hi]`.
    pub fn new(src: HostId, n_hosts: u32, rate: Bandwidth, size_lo: u32, size_hi: u32) -> Self {
        assert!(size_lo > 0 && size_lo <= size_hi, "bad size range");
        assert!(rate.as_bytes_per_sec() > 0, "rate must be positive");
        let mean_size = (size_lo as f64 + size_hi as f64) / 2.0;
        let mean_gap_ns = mean_size / rate.as_bytes_per_sec() as f64 * 1e9;
        ControlSource {
            src,
            n_hosts,
            size_lo,
            size_hi,
            gap: Exponential::new(mean_gap_ns),
        }
    }
}

impl TrafficSource for ControlSource {
    fn class(&self) -> TrafficClass {
        TrafficClass::Control
    }

    fn first_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        SimTime::from_ns(self.gap.sample(rng) as u64)
    }

    fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (AppMessage, SimTime) {
        let bytes = rng.range_u64(self.size_lo as u64, self.size_hi as u64);
        let msg = AppMessage {
            dst: random_dst(self.src, self.n_hosts, rng),
            class: TrafficClass::Control,
            bytes,
            stream: None,
        };
        let next = now + SimDuration::from_ns(self.gap.sample(rng).max(1.0) as u64);
        (msg, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut ControlSource, seed: u64, horizon: SimTime) -> Vec<(SimTime, AppMessage)> {
        let mut rng = SimRng::new(seed);
        let mut out = vec![];
        let mut t = src.first_arrival(&mut rng);
        while t <= horizon {
            let (m, next) = src.emit(t, &mut rng);
            out.push((t, m));
            assert!(next > t, "time must advance");
            t = next;
        }
        out
    }

    #[test]
    fn sizes_in_table1_range() {
        let mut s = ControlSource::new(HostId(0), 16, Bandwidth::gbps(2), 128, 2048);
        for (_, m) in drain(&mut s, 7, SimTime::from_ms(5)) {
            assert!((128..=2048).contains(&m.bytes));
            assert_eq!(m.class, TrafficClass::Control);
            assert_ne!(m.dst, HostId(0));
            assert!(m.stream.is_none());
        }
    }

    #[test]
    fn rate_calibration() {
        // 2 Gb/s for 20 ms should deliver ~5 MB of messages.
        let mut s = ControlSource::new(HostId(3), 32, Bandwidth::gbps(2), 128, 2048);
        let msgs = drain(&mut s, 11, SimTime::from_ms(20));
        let bytes: u64 = msgs.iter().map(|(_, m)| m.bytes).sum();
        let expect = 2.0e9 / 8.0 * 0.020;
        let err = (bytes as f64 - expect).abs() / expect;
        assert!(err < 0.05, "rate error {err:.3} (bytes {bytes})");
    }

    #[test]
    fn destinations_spread() {
        let mut s = ControlSource::new(HostId(0), 16, Bandwidth::gbps(2), 128, 2048);
        let msgs = drain(&mut s, 13, SimTime::from_ms(5));
        let distinct: std::collections::HashSet<u32> =
            msgs.iter().map(|(_, m)| m.dst.0).collect();
        assert!(distinct.len() >= 14, "only {} destinations", distinct.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = ControlSource::new(HostId(0), 16, Bandwidth::gbps(2), 128, 2048);
        let mut b = ControlSource::new(HostId(0), 16, Bandwidth::gbps(2), 128, 2048);
        assert_eq!(drain(&mut a, 5, SimTime::from_ms(1)), drain(&mut b, 5, SimTime::from_ms(1)));
    }
}
