//! # dqos-traffic
//!
//! Workload generators reproducing Table 1 of the paper (which follows
//! the Network Processing Forum switch-fabric benchmark):
//!
//! | Class       | % BW | Application frame        | Model here |
//! |-------------|------|--------------------------|------------|
//! | Control     | 25   | 128 B – 2 KiB            | Poisson arrivals, uniform sizes ([`ControlSource`]) |
//! | Multimedia  | 25   | 1 KiB – 120 KiB          | synthetic MPEG-4: fixed 40 ms cadence, GoP I/P/B size pattern, 3 MB/s per stream ([`VideoSource`]) |
//! | Best-effort | 25   | 128 B – 100 KiB          | self-similar: Pareto ON/OFF bursts to one destination, Pareto sizes ([`SelfSimilarSource`]) |
//! | Background  | 25   | 128 B – 100 KiB          | same model, lower deadline weight |
//!
//! The paper used real MPEG-4 traces, which we don't have; the synthetic
//! GoP generator preserves what the experiments exercise — bursty frame
//! sizes on a fixed cadence (see DESIGN.md for the substitution note).
//!
//! All sources implement [`TrafficSource`]: a pull-based interface the
//! simulator drives from its event loop, one event per application
//! message. Rates are calibrated analytically and verified by tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod hotspot;
pub mod mix;
pub mod selfsimilar;
pub mod source;
pub mod video;

pub use control::ControlSource;
pub use hotspot::HotspotSource;
pub use mix::{build_host_sources, HotspotSpec, MixConfig};
pub use selfsimilar::SelfSimilarSource;
pub use source::{AppMessage, SourceNode, TrafficSource};
pub use video::VideoSource;
