//! The Table-1 workload: four classes, 25 % of injected bandwidth each.

use crate::control::ControlSource;
use crate::selfsimilar::SelfSimilarSource;
use crate::source::{random_dst, TrafficSource};
use crate::video::VideoSource;
use dqos_core::TrafficClass;
use dqos_sim_core::{Bandwidth, SimDuration, SimRng};
use dqos_topology::HostId;

/// Workload parameters (§4.2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Link bandwidth (8 Gb/s in the paper).
    pub link_bw: Bandwidth,
    /// Global injected load as a fraction of link bandwidth (the x axis
    /// of the paper's figures, 0.1 ..= 1.0).
    pub load: f64,
    /// Bandwidth share per class (Table 1: 25 % each).
    pub shares: [f64; 4],
    /// Per-stream video bandwidth (3 MB/s).
    pub video_stream_bw: Bandwidth,
    /// Video frame period (40 ms).
    pub video_frame_period: SimDuration,
    /// Video frame size bounds (1 KiB – 120 KiB).
    pub video_frame_bounds: (u64, u64),
    /// Control message size bounds (128 B – 2 KiB).
    pub control_msg_bounds: (u32, u32),
    /// Best-effort message size bounds (128 B – 100 KiB).
    pub besteffort_msg_bounds: (f64, f64),
    /// Pareto shape for the self-similar classes.
    pub pareto_alpha: f64,
    /// Optional hotspot overlay: every host additionally aims traffic at
    /// one destination (the congestion-spreading scenario of
    /// `examples/hotspot.rs`). `None` is the Table-1 workload.
    pub hotspot: Option<HotspotSpec>,
}

/// Hotspot overlay parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotspotSpec {
    /// The victim destination.
    pub dst: u32,
    /// Extra offered load per host toward the hotspot, as a fraction of
    /// link bandwidth.
    pub share: f64,
    /// The class the hotspot traffic rides in.
    pub class: TrafficClass,
    /// Message size, bytes.
    pub msg_bytes: u64,
}

impl MixConfig {
    /// The paper's Table 1 at a given load fraction.
    ///
    /// Per-stream video bandwidth: Table 1 says "3 Mbyte/s MPEG-4
    /// traces", but 3 MB/s at one frame per 40 ms forces a 120 KB *mean*
    /// frame — equal to Table 1's own *maximum* frame size, which is
    /// impossible. §3.1's worked example (400 KB/s average, frames
    /// 1–120 KB, 40 ms cadence) is self-consistent, so streams run at
    /// 400 KB/s and the 25 % class share is met by stream count
    /// (see DESIGN.md).
    pub fn paper(load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        MixConfig {
            link_bw: Bandwidth::gbps(8),
            load,
            shares: [0.25; 4],
            video_stream_bw: Bandwidth::bytes_per_sec(400_000),
            video_frame_period: SimDuration::from_ms(40),
            video_frame_bounds: (1024, 120 * 1024),
            control_msg_bounds: (128, 2048),
            besteffort_msg_bounds: (128.0, 100_000.0),
            pareto_alpha: 1.5,
            hotspot: None,
        }
    }

    /// The byte rate one host offers for `class` at this load.
    pub fn class_rate(&self, class: TrafficClass) -> Bandwidth {
        self.link_bw.scaled(self.shares[class.idx()] * self.load)
    }

    /// Number of video streams per host at this load (each stream is
    /// `video_stream_bw`; the share is met by stream count, as the paper
    /// sweeps load by adding/removing connections).
    pub fn video_streams_per_host(&self) -> u32 {
        let share = self.class_rate(TrafficClass::Multimedia).as_bytes_per_sec() as f64;
        (share / self.video_stream_bw.as_bytes_per_sec() as f64).round().max(0.0) as u32
    }
}

/// Build the Table-1 source set for one host.
///
/// Video destinations are drawn uniformly (excluding the source itself)
/// with `rng`, so the whole fleet's stream matrix is deterministic per
/// seed.
pub fn build_host_sources(
    cfg: &MixConfig,
    src: HostId,
    n_hosts: u32,
    rng: &mut SimRng,
) -> Vec<Box<dyn TrafficSource>> {
    let mut out: Vec<Box<dyn TrafficSource>> = Vec::new();
    // Control: one Poisson source.
    let control_rate = cfg.class_rate(TrafficClass::Control);
    if control_rate.as_bytes_per_sec() > 0 {
        out.push(Box::new(ControlSource::new(
            src,
            n_hosts,
            control_rate,
            cfg.control_msg_bounds.0,
            cfg.control_msg_bounds.1,
        )));
    }
    // Multimedia: one source per admitted stream.
    for stream in 0..cfg.video_streams_per_host() {
        let dst = random_dst(src, n_hosts, rng);
        out.push(Box::new(VideoSource::new(
            dst,
            stream,
            cfg.video_stream_bw,
            cfg.video_frame_period,
            cfg.video_frame_bounds.0,
            cfg.video_frame_bounds.1,
        )));
    }
    // Best-effort and Background: one ON/OFF source each.
    for class in [TrafficClass::BestEffort, TrafficClass::Background] {
        let rate = cfg.class_rate(class);
        if rate.as_bytes_per_sec() > 0 {
            out.push(Box::new(SelfSimilarSource::new(
                src,
                n_hosts,
                class,
                rate,
                cfg.link_bw,
                cfg.besteffort_msg_bounds.0,
                cfg.besteffort_msg_bounds.1,
                cfg.pareto_alpha,
            )));
        }
    }
    // Optional hotspot overlay.
    if let Some(h) = cfg.hotspot {
        if h.dst != src.0 {
            out.push(Box::new(crate::hotspot::HotspotSource::new(
                dqos_topology::HostId(h.dst),
                h.class,
                cfg.link_bw.scaled(h.share),
                h.msg_bytes,
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_sim_core::SimTime;

    #[test]
    fn paper_mix_dimensions() {
        let cfg = MixConfig::paper(1.0);
        // 25% of 8 Gb/s = 2 Gb/s = 250 MB/s per class.
        assert_eq!(cfg.class_rate(TrafficClass::Control).as_bytes_per_sec(), 250_000_000);
        // 250 MB/s / 400 KB/s = 625 streams.
        assert_eq!(cfg.video_streams_per_host(), 625);
    }

    #[test]
    fn load_scales_rates() {
        let half = MixConfig::paper(0.5);
        assert_eq!(half.class_rate(TrafficClass::Background).as_bytes_per_sec(), 125_000_000);
        assert_eq!(half.video_streams_per_host(), 313);
    }

    #[test]
    fn host_sources_cover_all_classes() {
        let cfg = MixConfig::paper(1.0);
        let mut rng = SimRng::new(42);
        let sources = build_host_sources(&cfg, HostId(0), 32, &mut rng);
        let mut counts = [0usize; 4];
        for s in &sources {
            counts[s.class().idx()] += 1;
        }
        assert_eq!(counts[TrafficClass::Control.idx()], 1);
        assert_eq!(counts[TrafficClass::Multimedia.idx()], 625);
        assert_eq!(counts[TrafficClass::BestEffort.idx()], 1);
        assert_eq!(counts[TrafficClass::Background.idx()], 1);
    }

    #[test]
    fn per_class_offered_rates_match_table1() {
        // Run every source of one host for 200 ms of simulated arrivals
        // and check per-class byte shares are ~25 % each.
        let cfg = MixConfig::paper(1.0);
        let mut rng = SimRng::new(7);
        let sources = build_host_sources(&cfg, HostId(3), 32, &mut rng);
        let horizon = SimTime::from_ms(200);
        let mut bytes = [0u64; 4];
        for mut s in sources {
            let mut t = s.first_arrival(&mut rng);
            while t <= horizon {
                let (m, next) = s.emit(t, &mut rng);
                bytes[m.class.idx()] += m.bytes;
                t = next;
            }
        }
        let total: u64 = bytes.iter().sum();
        let expect_total = 1.0e9 * 0.2; // 1 GB/s for 0.2 s
        assert!(
            (total as f64 - expect_total).abs() / expect_total < 0.1,
            "total {total}"
        );
        for (i, &b) in bytes.iter().enumerate() {
            let share = b as f64 / total as f64;
            assert!(
                (share - 0.25).abs() < 0.06,
                "class {i} share {share:.3} (bytes {b})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_rejected() {
        MixConfig::paper(0.0);
    }
}
