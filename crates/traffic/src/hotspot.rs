//! Hotspot traffic: many hosts converge on one destination.
//!
//! Not part of Table 1, but the canonical adversarial workload for
//! lossless fabrics: when the aggregate offered to one endpoint exceeds
//! its delivery link, back-pressure trees form and — without QoS
//! isolation — spread into unrelated traffic. The deadline architectures
//! confine the damage to the best-effort VC; `examples/hotspot.rs` runs
//! the comparison.

use crate::source::{AppMessage, TrafficSource};
use dqos_core::TrafficClass;
use dqos_sim_core::dist::Exponential;
use dqos_sim_core::{Bandwidth, SimDuration, SimRng, SimTime};
use dqos_topology::HostId;

/// A Poisson stream of fixed-size messages aimed at one destination.
#[derive(Debug, Clone)]
pub struct HotspotSource {
    dst: HostId,
    class: TrafficClass,
    msg_bytes: u64,
    gap: Exponential,
}

impl HotspotSource {
    /// A source offering `rate` toward `dst` in `class`, as `msg_bytes`
    /// messages.
    pub fn new(dst: HostId, class: TrafficClass, rate: Bandwidth, msg_bytes: u64) -> Self {
        assert!(msg_bytes > 0, "messages need bytes");
        assert!(rate.as_bytes_per_sec() > 0, "rate must be positive");
        let mean_gap_ns = msg_bytes as f64 / rate.as_bytes_per_sec() as f64 * 1e9;
        HotspotSource { dst, class, msg_bytes, gap: Exponential::new(mean_gap_ns) }
    }
}

impl TrafficSource for HotspotSource {
    fn class(&self) -> TrafficClass {
        self.class
    }

    fn first_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        SimTime::from_ns(self.gap.sample(rng) as u64)
    }

    fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (AppMessage, SimTime) {
        let msg = AppMessage {
            dst: self.dst,
            class: self.class,
            bytes: self.msg_bytes,
            stream: None,
        };
        let next = now + SimDuration::from_ns(self.gap.sample(rng).max(1.0) as u64);
        (msg, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aims_at_one_destination() {
        let mut s = HotspotSource::new(
            HostId(3),
            TrafficClass::Background,
            Bandwidth::gbps(2),
            4096,
        );
        let mut rng = SimRng::new(1);
        let mut t = s.first_arrival(&mut rng);
        for _ in 0..1000 {
            let (m, next) = s.emit(t, &mut rng);
            assert_eq!(m.dst, HostId(3));
            assert_eq!(m.bytes, 4096);
            assert_eq!(m.class, TrafficClass::Background);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn rate_calibration() {
        let mut s = HotspotSource::new(
            HostId(0),
            TrafficClass::Background,
            Bandwidth::gbps(1),
            2048,
        );
        let mut rng = SimRng::new(2);
        let horizon = SimTime::from_ms(50);
        let mut t = s.first_arrival(&mut rng);
        let mut bytes = 0u64;
        while t <= horizon {
            let (m, next) = s.emit(t, &mut rng);
            bytes += m.bytes;
            t = next;
        }
        let expect = 1.0e9 / 8.0 * 0.05;
        assert!(
            (bytes as f64 - expect).abs() / expect < 0.1,
            "rate off: {bytes} vs {expect}"
        );
    }
}
