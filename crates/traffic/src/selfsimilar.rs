//! Self-similar internet-like traffic (Best-effort and Background).
//!
//! The paper describes it as "bursts of packets heading to the same
//! destination" with Pareto-distributed sizes, per Jain's recommendation
//! — the classic result being that superposing many Pareto ON/OFF
//! sources yields self-similar aggregate traffic.
//!
//! Model per source: alternate ON bursts and OFF gaps.
//!
//! * Burst: pick one destination; the number of messages is bounded
//!   Pareto; messages arrive back-to-back at link rate; sizes are
//!   bounded Pareto on Table 1's 128 B – 100 KiB range.
//! * OFF gap: bounded Pareto, scaled so the long-run byte rate equals
//!   the configured share (computed analytically from the distribution
//!   means, verified by test).

use crate::source::{random_dst, AppMessage, TrafficSource};
use dqos_core::TrafficClass;
use dqos_sim_core::dist::BoundedPareto;
use dqos_sim_core::{Bandwidth, SimDuration, SimRng, SimTime};
use dqos_topology::HostId;

/// A Pareto ON/OFF source for one host and one best-effort class.
#[derive(Debug, Clone)]
pub struct SelfSimilarSource {
    src: HostId,
    n_hosts: u32,
    class: TrafficClass,
    size: BoundedPareto,
    burst_len: BoundedPareto,
    /// OFF gap shape (mean 1.0 before scaling).
    off_shape: BoundedPareto,
    off_scale_ns: f64,
    /// Rate during a burst (bytes/sec): messages arrive back-to-back at
    /// link speed.
    burst_rate: f64,
    // Current burst.
    dst: HostId,
    remaining: u64,
}

impl SelfSimilarSource {
    /// Table 1 defaults: sizes 128 B – 100 KiB, Pareto shape 1.5.
    pub fn table1(
        src: HostId,
        n_hosts: u32,
        class: TrafficClass,
        rate: Bandwidth,
        link_bw: Bandwidth,
    ) -> Self {
        Self::new(src, n_hosts, class, rate, link_bw, 128.0, 100_000.0, 1.5)
    }

    /// Fully parameterised constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src: HostId,
        n_hosts: u32,
        class: TrafficClass,
        rate: Bandwidth,
        link_bw: Bandwidth,
        size_lo: f64,
        size_hi: f64,
        alpha: f64,
    ) -> Self {
        assert!(rate.as_bytes_per_sec() > 0, "rate must be positive");
        assert!(
            rate.as_bytes_per_sec() < link_bw.as_bytes_per_sec(),
            "offered rate must be below the burst (link) rate"
        );
        let size = BoundedPareto::new(size_lo, size_hi, alpha);
        let burst_len = BoundedPareto::new(1.0, 1_000.0, alpha);
        let off_shape = BoundedPareto::new(1.0, 1_000.0, alpha);
        let r = rate.as_bytes_per_sec() as f64;
        let big_r = link_bw.as_bytes_per_sec() as f64;
        // Long-run rate = E[burst bytes] / (E[on] + E[off]).
        let burst_bytes = burst_len.mean() * size.mean();
        let on_ns = burst_bytes / big_r * 1e9;
        let off_mean_ns = (burst_bytes / r * 1e9 - on_ns).max(1.0);
        let off_scale_ns = off_mean_ns / off_shape.mean();
        SelfSimilarSource {
            src,
            n_hosts,
            class,
            size,
            burst_len,
            off_shape,
            off_scale_ns,
            burst_rate: big_r,
            dst: src, // replaced at first burst
            remaining: 0,
        }
    }

    fn off_gap(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_ns((self.off_shape.sample(rng) * self.off_scale_ns).max(1.0) as u64)
    }

    fn intra_gap(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns(((bytes as f64 / self.burst_rate) * 1e9).max(1.0) as u64)
    }
}

impl TrafficSource for SelfSimilarSource {
    fn class(&self) -> TrafficClass {
        self.class
    }

    fn first_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        SimTime::ZERO + self.off_gap(rng)
    }

    fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (AppMessage, SimTime) {
        if self.remaining == 0 {
            // Begin a new burst: one destination for the whole burst.
            self.dst = random_dst(self.src, self.n_hosts, rng);
            self.remaining = self.burst_len.sample(rng).round().max(1.0) as u64;
        }
        let bytes = self.size.sample(rng).round() as u64;
        let msg = AppMessage { dst: self.dst, class: self.class, bytes, stream: None };
        self.remaining -= 1;
        let next = if self.remaining > 0 {
            now + self.intra_gap(bytes)
        } else {
            now + self.off_gap(rng)
        };
        (msg, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_src(rate_gbps: u64) -> SelfSimilarSource {
        SelfSimilarSource::table1(
            HostId(0),
            32,
            TrafficClass::BestEffort,
            Bandwidth::gbps(rate_gbps),
            Bandwidth::gbps(8),
        )
    }

    fn drain(s: &mut SelfSimilarSource, seed: u64, horizon: SimTime) -> Vec<(SimTime, AppMessage)> {
        let mut rng = SimRng::new(seed);
        let mut t = s.first_arrival(&mut rng);
        let mut out = vec![];
        while t <= horizon {
            let (m, next) = s.emit(t, &mut rng);
            out.push((t, m));
            assert!(next > t);
            t = next;
        }
        out
    }

    #[test]
    fn sizes_in_table1_range() {
        let mut s = table1_src(2);
        for (_, m) in drain(&mut s, 1, SimTime::from_ms(20)) {
            assert!((128..=100_000).contains(&m.bytes), "size {}", m.bytes);
            assert_eq!(m.class, TrafficClass::BestEffort);
            assert_ne!(m.dst, HostId(0));
        }
    }

    #[test]
    fn bursts_share_destination() {
        let mut s = table1_src(2);
        let msgs = drain(&mut s, 2, SimTime::from_ms(50));
        // Consecutive messages share a destination far more often than
        // the 1/31 chance independent draws would give.
        let same: usize = msgs.windows(2).filter(|w| w[0].1.dst == w[1].1.dst).count();
        let frac = same as f64 / (msgs.len() - 1) as f64;
        assert!(frac > 0.3, "burst structure missing: same-dst fraction {frac:.3}");
    }

    #[test]
    fn rate_calibration() {
        // Heavy-tailed, so use a long horizon and allow 15 %.
        let mut s = table1_src(2);
        let horizon = SimTime::from_ms(400);
        let bytes: u64 = drain(&mut s, 3, horizon).iter().map(|(_, m)| m.bytes).sum();
        let expect = 2.0e9 / 8.0 * 0.4;
        let err = (bytes as f64 - expect).abs() / expect;
        assert!(err < 0.15, "rate error {err:.3} (bytes {bytes})");
    }

    #[test]
    fn heavy_tail_visible_in_gaps() {
        let mut s = table1_src(1);
        let msgs = drain(&mut s, 4, SimTime::from_ms(100));
        let gaps: Vec<u64> = msgs.windows(2).map(|w| (w[1].0 - w[0].0).as_ns()).collect();
        let max = *gaps.iter().max().unwrap() as f64;
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(max / mean > 10.0, "no heavy tail: max/mean {}", max / mean);
    }

    #[test]
    fn rejects_rate_at_or_above_link() {
        let r = std::panic::catch_unwind(|| {
            SelfSimilarSource::table1(
                HostId(0),
                8,
                TrafficClass::Background,
                Bandwidth::gbps(8),
                Bandwidth::gbps(8),
            )
        });
        assert!(r.is_err());
    }
}
