//! Plain FIFO buffer.
//!
//! The structure both baseline architectures use. Under *Traditional*
//! arbitration the deadline at the head is ignored; under *Simple 2 VCs*
//! the arbiter compares head deadlines across queues — correct whenever
//! arrivals are deadline-ordered, and the source of the ≈25 % "order
//! error" penalty when they are not (§3.2, §3.4).

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;
use std::collections::VecDeque;

/// A FIFO queue with byte accounting.
#[derive(Debug, Clone)]
pub struct FifoQueue<T> {
    q: VecDeque<T>,
    bytes: u64,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FifoQueue { q: VecDeque::new(), bytes: 0 }
    }

    /// Iterate items front to back (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }
}

impl<T: Deadlined> SchedQueue<T> for FifoQueue<T> {
    fn enqueue(&mut self, item: T) {
        self.bytes += item.len_bytes() as u64;
        self.q.push_back(item);
    }

    fn head_deadline(&self) -> Option<SimTime> {
        self.q.front().map(|p| p.deadline())
    }

    fn peek(&self) -> Option<&T> {
        self.q.front()
    }

    fn dequeue(&mut self) -> Option<T> {
        let item = self.q.pop_front()?;
        self.bytes -= item.len_bytes() as u64;
        Some(item)
    }

    fn min_deadline(&self) -> Option<SimTime> {
        self.q.iter().map(|p| p.deadline()).min()
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_util::Item;

    #[test]
    fn fifo_order_regardless_of_deadline() {
        let mut q = FifoQueue::new();
        q.enqueue(Item::new(0, 0, 100));
        q.enqueue(Item::new(1, 0, 50)); // earlier deadline, behind in FIFO
        assert_eq!(q.head_deadline(), Some(SimTime::from_ns(100)));
        assert_eq!(q.dequeue().unwrap().deadline, 100);
        assert_eq!(q.dequeue().unwrap().deadline, 50);
    }

    #[test]
    fn byte_accounting() {
        let mut q = FifoQueue::new();
        assert_eq!(q.bytes(), 0);
        q.enqueue(Item { flow: 0, seq: 0, deadline: 1, len: 300 });
        q.enqueue(Item { flow: 0, seq: 1, deadline: 2, len: 200 });
        assert_eq!(q.bytes(), 500);
        q.dequeue();
        assert_eq!(q.bytes(), 200);
        q.dequeue();
        assert_eq!(q.bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_behaviour() {
        let mut q: FifoQueue<Item> = FifoQueue::new();
        assert!(q.dequeue().is_none());
        assert!(q.peek().is_none());
        assert!(q.head_deadline().is_none());
        assert_eq!(q.len(), 0);
    }
}
