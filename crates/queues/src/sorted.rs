//! True ordered-insert queues, used at the **end hosts**.
//!
//! §3.2: "In the first queue, packets are stored in ascending eligible
//! time. As soon as the first packet in the queue is eligible, it goes to
//! another queue where packets are sorted according to ascending
//! deadlines." Hosts, unlike single-chip switches, can afford the
//! random-access insertion this needs.
//!
//! [`SortedQueue`] sorts by an explicit key supplied at insert time so
//! the same structure serves both the eligible-time queue (key =
//! eligible time) and the injection queue (key = deadline). Equal keys
//! preserve insertion order (stable).

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;
use std::collections::VecDeque;

/// A stable, key-ordered queue.
#[derive(Debug, Clone)]
pub struct SortedQueue<T> {
    // (key, tie-break seq, item), ascending.
    q: VecDeque<(SimTime, u64, T)>,
    seq: u64,
    bytes: u64,
}

impl<T> Default for SortedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SortedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        SortedQueue { q: VecDeque::new(), seq: 0, bytes: 0 }
    }

    /// The smallest key currently queued.
    pub fn head_key(&self) -> Option<SimTime> {
        self.q.front().map(|(k, _, _)| *k)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Total queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrow the head item.
    pub fn peek(&self) -> Option<&T> {
        self.q.front().map(|(_, _, it)| it)
    }
}

impl<T: Deadlined> SortedQueue<T> {
    /// Insert `item` ordered by `key` (stable among equal keys).
    pub fn insert(&mut self, key: SimTime, item: T) {
        self.bytes += item.len_bytes() as u64;
        let seq = self.seq;
        self.seq += 1;
        // Binary search for the first entry with a strictly greater key;
        // equal keys keep arrival order because seq increases.
        let pos = self.q.partition_point(|(k, s, _)| (*k, *s) <= (key, seq));
        self.q.insert(pos, (key, seq, item));
    }

    /// Remove the head item (smallest key).
    pub fn pop(&mut self) -> Option<T> {
        let (_, _, item) = self.q.pop_front()?;
        self.bytes -= item.len_bytes() as u64;
        Some(item)
    }

    /// Pop the head only if its key is `<= now` (e.g. "the first packet
    /// in the queue is eligible").
    pub fn pop_due(&mut self, now: SimTime) -> Option<T> {
        match self.head_key() {
            Some(k) if k <= now => self.pop(),
            _ => None,
        }
    }
}

/// Convenience: a `SortedQueue` always keyed by the item's deadline
/// behaves like the other [`SchedQueue`]s (the host injection queue).
#[derive(Debug, Clone, Default)]
pub struct DeadlineSortedQueue<T>(SortedQueue<T>);

impl<T> DeadlineSortedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DeadlineSortedQueue(SortedQueue::new())
    }
}

impl<T: Deadlined> SchedQueue<T> for DeadlineSortedQueue<T> {
    fn enqueue(&mut self, item: T) {
        let key = item.deadline();
        self.0.insert(key, item);
    }
    fn head_deadline(&self) -> Option<SimTime> {
        self.0.head_key()
    }
    fn peek(&self) -> Option<&T> {
        self.0.peek()
    }
    fn dequeue(&mut self) -> Option<T> {
        self.0.pop()
    }
    fn min_deadline(&self) -> Option<SimTime> {
        // Sorted by deadline: the head is the minimum.
        self.0.head_key()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn bytes(&self) -> u64 {
        self.0.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_util::Item;

    #[test]
    fn orders_by_key() {
        let mut q = SortedQueue::new();
        q.insert(SimTime::from_ns(300), Item::new(0, 0, 300));
        q.insert(SimTime::from_ns(100), Item::new(1, 0, 100));
        q.insert(SimTime::from_ns(200), Item::new(2, 0, 200));
        assert_eq!(q.head_key(), Some(SimTime::from_ns(100)));
        assert_eq!(q.pop().unwrap().flow, 1);
        assert_eq!(q.pop().unwrap().flow, 2);
        assert_eq!(q.pop().unwrap().flow, 0);
    }

    #[test]
    fn stable_among_equal_keys() {
        let mut q = SortedQueue::new();
        for i in 0..5 {
            q.insert(SimTime::from_ns(42), Item::new(i, 0, 42));
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().flow, i);
        }
    }

    #[test]
    fn pop_due_gates_on_time() {
        let mut q = SortedQueue::new();
        q.insert(SimTime::from_ns(100), Item::new(0, 0, 100));
        q.insert(SimTime::from_ns(200), Item::new(1, 0, 200));
        assert!(q.pop_due(SimTime::from_ns(50)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(100)).unwrap().flow, 0);
        assert!(q.pop_due(SimTime::from_ns(150)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(500)).unwrap().flow, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_sorted_queue_is_a_sched_queue() {
        let mut q = DeadlineSortedQueue::new();
        q.enqueue(Item::new(0, 0, 500));
        q.enqueue(Item::new(1, 0, 100));
        assert_eq!(q.head_deadline(), Some(SimTime::from_ns(100)));
        assert_eq!(SchedQueue::len(&q), 2);
        assert_eq!(q.dequeue().unwrap().deadline, 100);
    }

    #[test]
    fn byte_accounting() {
        let mut q = SortedQueue::new();
        q.insert(SimTime::from_ns(1), Item { flow: 0, seq: 0, deadline: 1, len: 7 });
        q.insert(SimTime::from_ns(2), Item { flow: 0, seq: 1, deadline: 2, len: 11 });
        assert_eq!(q.bytes(), 18);
        q.pop();
        assert_eq!(q.bytes(), 11);
    }

    /// Dependency-free port of the property: pops come out key-sorted and
    /// stable for any insertion order.
    #[test]
    fn randomized_sorted_and_stable() {
        use dqos_sim_core::SimRng;
        let mut rng = SimRng::new(0x50F7);
        for _ in 0..200 {
            let mut q = SortedQueue::new();
            for i in 0..1 + rng.index(200) {
                let k = rng.range_u64(0, 999);
                q.insert(SimTime::from_ns(k), Item::new(i as u32, 0, k));
            }
            let mut last: Option<(u64, u32)> = None;
            while let Some(it) = q.pop() {
                if let Some((lk, lflow)) = last {
                    assert!(it.deadline >= lk);
                    if it.deadline == lk {
                        assert!(it.flow > lflow, "stability violated");
                    }
                }
                last = Some((it.deadline, it.flow));
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Pops come out key-sorted and stable for any insertion order.
            #[test]
            fn prop_sorted_and_stable(keys in proptest::collection::vec(0u64..1000, 1..200)) {
                let mut q = SortedQueue::new();
                for (i, &k) in keys.iter().enumerate() {
                    q.insert(SimTime::from_ns(k), Item::new(i as u32, 0, k));
                }
                let mut last: Option<(u64, u32)> = None;
                while let Some(it) = q.pop() {
                    if let Some((lk, lflow)) = last {
                        prop_assert!(it.deadline >= lk);
                        if it.deadline == lk {
                            prop_assert!(it.flow > lflow, "stability violated");
                        }
                    }
                    last = Some((it.deadline, it.flow));
                }
            }
        }
    }
}
