//! # dqos-queues
//!
//! The buffer structures the paper builds its scheduling on, behind one
//! trait ([`SchedQueue`]):
//!
//! * [`FifoQueue`] — a plain FIFO. Used by *Traditional 2 VCs* (which
//!   round-robins) and *Simple 2 VCs* (whose arbiter compares the
//!   deadlines at the queue **heads** only — the merge-sort argument of
//!   §3.2).
//! * [`HeapQueue`] — a deadline-ordered heap, modelling the pipelined
//!   heap of Ioannou & Katevenis. This is the *Ideal* architecture's
//!   buffer: it always exposes the true minimum deadline, and the paper
//!   deems it unfeasible for high-radix single-chip switches.
//! * [`TwoQueue`] — the paper's contribution (§3.4): an *ordered queue*
//!   plus a *take-over queue*, both FIFO. Enqueue compares against the
//!   ordered queue's tail; dequeue takes the smaller of the two heads.
//!   The appendix proves this never reorders packets within a flow; the
//!   property tests here replay those theorems against adversarial
//!   inputs.
//! * [`SortedQueue`] — true ordered-insert queue, used in the **end
//!   hosts** (which, unlike switches, can afford real sorted queues) for
//!   the eligible-time queue and the deadline injection queue.
//! * [`Voq`] — per-output-port composition of any of the above
//!   (virtual output queuing, the paper's head-of-line-blocking
//!   countermeasure at the switch level).
//! * [`FlatFifo`] / [`FlatTwoQueue`] — flat ring/slot re-implementations
//!   of the FIFO and two-queue structures used on the simulator's hot
//!   path ([`flat`]); observably identical to the originals, which stay
//!   around as differential-test oracles.
//!
//! All structures are generic over any [`Deadlined`] item so the
//! simulator's `Packet` and the tests' tiny stand-ins share the code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fifo;
pub mod flat;
pub mod heap;
pub mod sorted;
pub mod traits;
pub mod two_queue;
pub mod voq;

pub use fifo::FifoQueue;
pub use flat::{FlatFifo, FlatTwoQueue};
pub use heap::HeapQueue;
pub use sorted::{DeadlineSortedQueue, SortedQueue};
pub use traits::{AnyQueue, Deadlined, SchedQueue};
pub use two_queue::TwoQueue;
pub use voq::Voq;
