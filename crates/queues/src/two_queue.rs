//! The ordered + take-over two-queue system of §3.4 — the paper's key
//! hardware contribution.
//!
//! Both queues are plain FIFOs (hardware-cheap). Notation follows the
//! appendix: `L` is the *ordered queue*, `U` the *take-over queue*.
//!
//! **Enqueue** (Definition 1): if both queues are empty, or the incoming
//! deadline is ≥ the deadline at `L`'s tail, append to `L`; otherwise
//! append to `U`. `L` therefore stays deadline-sorted (Theorem 1) and its
//! tail holds the global maximum (Theorem 2).
//!
//! **Dequeue** (Definition 2): take the smaller of the two heads — this
//! is how a late low-deadline packet "takes over" packets that arrived
//! before it but are due later. A state with packets only in `U` is
//! unreachable (Lemma 1).
//!
//! The appendix proves the discipline never reorders packets *within a
//! flow* (Theorem 3), given the hypotheses that each flow's packets
//! arrive in order with strictly increasing deadlines. The property
//! tests in this module replay all four results against adversarial
//! arrival/service interleavings; the whole-network integration tests
//! check the same end to end.

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;
use std::collections::VecDeque;

/// The two-queue buffer structure ("Advanced 2 VCs").
///
/// ```
/// use dqos_queues::{SchedQueue, TwoQueue};
/// use dqos_sim_core::SimTime;
///
/// #[derive(Clone, Copy)]
/// struct Pkt(u64);
/// impl dqos_queues::Deadlined for Pkt {
///     fn deadline(&self) -> SimTime { SimTime::from_ns(self.0) }
///     fn len_bytes(&self) -> u32 { 100 }
/// }
///
/// let mut q = TwoQueue::new();
/// q.enqueue(Pkt(100));
/// q.enqueue(Pkt(500));   // ordered queue: 100, 500
/// q.enqueue(Pkt(200));   // below the tail -> take-over queue
/// assert_eq!(q.take_over_len(), 1);
/// // Dequeue always serves the smaller of the two heads: the late
/// // low-deadline packet overtakes 500 without reordering any flow.
/// assert_eq!(q.dequeue().unwrap().0, 100);
/// assert_eq!(q.dequeue().unwrap().0, 200);
/// assert_eq!(q.dequeue().unwrap().0, 500);
/// ```
#[derive(Debug, Clone)]
pub struct TwoQueue<T> {
    /// Ordered queue (appendix: `L`).
    ordered: VecDeque<T>,
    /// Take-over queue (appendix: `U`).
    take_over: VecDeque<T>,
    bytes: u64,
    /// Cumulative count of packets routed to the take-over queue —
    /// each one is an *order error* the Simple architecture would have
    /// suffered. Diagnostic for the §3.4 / Figure 2 analysis.
    take_over_total: u64,
}

impl<T> Default for TwoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TwoQueue<T> {
    /// An empty structure.
    pub fn new() -> Self {
        TwoQueue {
            ordered: VecDeque::new(),
            take_over: VecDeque::new(),
            bytes: 0,
            take_over_total: 0,
        }
    }

    /// Current take-over queue occupancy.
    pub fn take_over_len(&self) -> usize {
        self.take_over.len()
    }

    /// Current ordered queue occupancy.
    pub fn ordered_len(&self) -> usize {
        self.ordered.len()
    }

    /// Cumulative count of packets that went to the take-over queue.
    pub fn take_over_total(&self) -> u64 {
        self.take_over_total
    }
}

impl<T: Deadlined> TwoQueue<T> {
    /// Which queue the dequeue candidate currently sits in. Public so the
    /// switch can tag crossbar grants for the flight recorder (was the
    /// winner served via the take-over path?).
    pub fn candidate_is_take_over(&self) -> Option<bool> {
        match (self.ordered.front(), self.take_over.front()) {
            (None, None) => None,
            (Some(_), None) => Some(false),
            (None, Some(_)) => {
                // Lemma 1: unreachable through this API.
                debug_assert!(false, "take-over queue non-empty while ordered queue empty");
                Some(true)
            }
            (Some(l), Some(u)) => {
                // Ties go to the ordered queue: deterministic, and within
                // a flow ties are impossible (deadlines strictly increase).
                Some(u.deadline() < l.deadline())
            }
        }
    }

    /// Debug check of Theorems 1 and 2 on the live structure.
    ///
    /// * `L` is deadline-sorted.
    /// * Every element of `U` is strictly below `L`'s tail deadline.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<SimTime> = None;
        for p in &self.ordered {
            if let Some(pd) = prev {
                if p.deadline() < pd {
                    return Err(format!(
                        "ordered queue not sorted: {:?} after {:?}",
                        p.deadline(),
                        pd
                    ));
                }
            }
            prev = Some(p.deadline());
        }
        if let Some(tail) = self.ordered.back() {
            for u in &self.take_over {
                if u.deadline() >= tail.deadline() {
                    return Err(format!(
                        "take-over element {:?} not below ordered tail {:?}",
                        u.deadline(),
                        tail.deadline()
                    ));
                }
            }
        } else if !self.take_over.is_empty() {
            return Err("take-over non-empty while ordered empty (Lemma 1)".into());
        }
        Ok(())
    }
}

impl<T: Deadlined> SchedQueue<T> for TwoQueue<T> {
    fn enqueue(&mut self, item: T) {
        self.bytes += item.len_bytes() as u64;
        match self.ordered.back() {
            // Definition 1: both queues empty -> L. (If L is empty, U is
            // empty too, by Lemma 1.)
            None => self.ordered.push_back(item),
            Some(tail) => {
                if item.deadline() >= tail.deadline() {
                    self.ordered.push_back(item);
                } else {
                    self.take_over_total += 1;
                    self.take_over.push_back(item);
                }
            }
        }
        debug_assert!(self.check_invariants().is_ok());
    }

    fn head_deadline(&self) -> Option<SimTime> {
        match (self.ordered.front(), self.take_over.front()) {
            (None, None) => None,
            (Some(l), None) => Some(l.deadline()),
            (None, Some(u)) => Some(u.deadline()),
            (Some(l), Some(u)) => Some(l.deadline().min(u.deadline())),
        }
    }

    fn peek(&self) -> Option<&T> {
        match self.candidate_is_take_over()? {
            true => self.take_over.front(),
            false => self.ordered.front(),
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        let item = match self.candidate_is_take_over()? {
            true => self.take_over.pop_front(),
            false => self.ordered.pop_front(),
        }?;
        self.bytes -= item.len_bytes() as u64;
        debug_assert!(self.check_invariants().is_ok());
        Some(item)
    }

    fn min_deadline(&self) -> Option<SimTime> {
        // The ordered queue's minimum is its head (Theorem 1); the
        // take-over queue is unordered and needs a scan.
        let l = self.ordered.front().map(|p| p.deadline());
        let u = self.take_over.iter().map(|p| p.deadline()).min();
        match (l, u) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn len(&self) -> usize {
        self.ordered.len() + self.take_over.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_util::Item;

    #[test]
    fn in_order_arrivals_all_go_to_ordered() {
        let mut q = TwoQueue::new();
        for i in 0..10 {
            q.enqueue(Item::new(0, i, 100 * (i as u64 + 1)));
        }
        assert_eq!(q.ordered_len(), 10);
        assert_eq!(q.take_over_len(), 0);
        assert_eq!(q.take_over_total(), 0);
    }

    #[test]
    fn late_low_deadline_packet_takes_over() {
        let mut q = TwoQueue::new();
        q.enqueue(Item::new(0, 0, 100));
        q.enqueue(Item::new(0, 1, 500)); // high deadline
        q.enqueue(Item::new(1, 0, 200)); // lower than tail -> take-over
        assert_eq!(q.take_over_len(), 1);
        // Dequeue order: 100 (L), then 200 (U takes over 500), then 500.
        assert_eq!(q.dequeue().unwrap().deadline, 100);
        assert_eq!(q.dequeue().unwrap().deadline, 200);
        assert_eq!(q.dequeue().unwrap().deadline, 500);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn equal_deadline_goes_to_ordered() {
        let mut q = TwoQueue::new();
        q.enqueue(Item::new(0, 0, 100));
        q.enqueue(Item::new(1, 0, 100)); // ">=" tail -> ordered queue
        assert_eq!(q.ordered_len(), 2);
        assert_eq!(q.take_over_len(), 0);
        // FIFO among equals.
        assert_eq!(q.dequeue().unwrap().flow, 0);
        assert_eq!(q.dequeue().unwrap().flow, 1);
    }

    #[test]
    fn tie_between_heads_prefers_ordered() {
        let mut q = TwoQueue::new();
        q.enqueue(Item::new(0, 0, 100));
        q.enqueue(Item::new(0, 1, 300));
        q.enqueue(Item::new(1, 0, 100)); // -> U, ties L's head
        assert_eq!(q.dequeue().unwrap().flow, 0, "ordered head wins ties");
        assert_eq!(q.dequeue().unwrap().flow, 1);
    }

    #[test]
    fn byte_accounting_across_both_queues() {
        let mut q = TwoQueue::new();
        q.enqueue(Item { flow: 0, seq: 0, deadline: 100, len: 10 });
        q.enqueue(Item { flow: 0, seq: 1, deadline: 300, len: 20 });
        q.enqueue(Item { flow: 1, seq: 0, deadline: 50, len: 40 }); // U
        assert_eq!(q.bytes(), 70);
        q.dequeue(); // 50 from U
        assert_eq!(q.bytes(), 30);
    }

    /// Drive an arrival/service interleaving through the structure and
    /// return departures. Arrivals satisfy the appendix hypotheses:
    /// within each flow, arrival order == generation order and deadlines
    /// strictly increase.
    fn run_model(
        n_flows: u32,
        // (flow, deadline-gap) per arrival; gaps accumulate per flow.
        arrivals: &[(u32, u64)],
        // Service pattern: after arrival i, dequeue while pattern says so.
        service: &[bool],
    ) -> Vec<Item> {
        let mut q = TwoQueue::new();
        let mut next_deadline = vec![0u64; n_flows as usize];
        let mut next_seq = vec![0u32; n_flows as usize];
        let mut out = vec![];
        for (i, &(f, gap)) in arrivals.iter().enumerate() {
            let f = f % n_flows;
            next_deadline[f as usize] += gap.max(1); // strictly increasing
            let item = Item::new(f, next_seq[f as usize], next_deadline[f as usize]);
            next_seq[f as usize] += 1;
            q.enqueue(item);
            q.check_invariants().unwrap();
            if *service.get(i % service.len().max(1)).unwrap_or(&false) {
                if let Some(it) = q.dequeue() {
                    out.push(it);
                }
                q.check_invariants().unwrap();
            }
        }
        while let Some(it) = q.dequeue() {
            q.check_invariants().unwrap();
            out.push(it);
        }
        out
    }

    /// Count, at each dequeue, whether some queued packet had a smaller
    /// deadline than the one served (§3.4 "order errors"), serving once
    /// every `period` arrivals and then draining.
    fn count_errors<Q: SchedQueue<Item>>(mut q: Q, items: &[Item], period: usize) -> u64 {
        let mut errors = 0u64;
        let mut pending: Vec<u64> = vec![];
        let serve = |q: &mut Q, pending: &mut Vec<u64>, errors: &mut u64| {
            if let Some(it) = q.dequeue() {
                if pending.iter().any(|&d| d < it.deadline) {
                    *errors += 1;
                }
                let pos = pending.iter().position(|&d| d == it.deadline).unwrap();
                pending.remove(pos);
            }
        };
        for (i, it) in items.iter().enumerate() {
            q.enqueue(*it);
            pending.push(it.deadline);
            if i % period == 0 {
                serve(&mut q, &mut pending, &mut errors);
            }
        }
        while !pending.is_empty() {
            serve(&mut q, &mut pending, &mut errors);
        }
        errors
    }

    /// Dependency-free randomized ports of the appendix property suite
    /// (Theorems 1–3, Lemma 1; DESIGN §5), driven by the in-house RNG so
    /// they run in the offline tier-1 build. The proptest originals are
    /// kept under the `proptest` feature.
    mod randomized {
        use super::*;
        use crate::fifo::FifoQueue;
        use dqos_sim_core::SimRng;

        fn random_arrivals(rng: &mut SimRng, n_flows: u32, len_max: usize) -> Vec<(u32, u64)> {
            let n = 1 + rng.index(len_max);
            (0..n)
                .map(|_| (rng.range_u64(0, (n_flows - 1) as u64) as u32, rng.range_u64(0, 499)))
                .collect()
        }

        /// Theorem 3: no out-of-order delivery within any flow, plus
        /// Theorems 1 & 2 and Lemma 1 at every step (checked inside
        /// `run_model`), over many random interleavings.
        #[test]
        fn theorem3_no_out_of_order_delivery() {
            let mut rng = SimRng::new(0x7EA3);
            for _ in 0..150 {
                let n_flows = 1 + rng.range_u64(0, 6) as u32;
                let arrivals = random_arrivals(&mut rng, n_flows, 300);
                let service: Vec<bool> =
                    (0..1 + rng.index(15)).map(|_| rng.chance(0.5)).collect();
                let out = run_model(n_flows, &arrivals, &service);
                let mut last_seq = std::collections::HashMap::new();
                for it in &out {
                    if let Some(&prev) = last_seq.get(&it.flow) {
                        assert!(
                            it.seq > prev,
                            "flow {} delivered seq {} after {}",
                            it.flow,
                            it.seq,
                            prev
                        );
                    }
                    last_seq.insert(it.flow, it.seq);
                }
                assert_eq!(out.len(), arrivals.len(), "conservation");
            }
        }

        /// Exhaustive small-case sweep of the same invariants: every
        /// arrival pattern of 2 flows × 5 arrivals × 2 gap choices, with
        /// every service period. Complements the randomized sweep with
        /// certainty on the small state space.
        #[test]
        fn theorem3_exhaustive_small_cases() {
            // Each arrival is (flow ∈ {0,1}, gap ∈ {1, 60}): 4 choices,
            // 5 arrivals -> 1024 patterns × 3 service patterns.
            for pattern in 0..4u32.pow(5) {
                let arrivals: Vec<(u32, u64)> = (0..5)
                    .map(|i| {
                        let c = (pattern / 4u32.pow(i)) % 4;
                        (c % 2, if c / 2 == 0 { 1 } else { 60 })
                    })
                    .collect();
                for service in [&[true][..], &[false, true][..], &[false][..]] {
                    let out = run_model(2, &arrivals, service);
                    assert_eq!(out.len(), 5);
                    for f in 0..2 {
                        let seqs: Vec<u32> =
                            out.iter().filter(|it| it.flow == f).map(|it| it.seq).collect();
                        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "flow {f} reordered");
                    }
                }
            }
        }

        /// The dequeue candidate is never worse than the best FIFO head.
        #[test]
        fn candidate_at_least_as_urgent_as_fifo() {
            let mut rng = SimRng::new(0x51EF);
            for _ in 0..150 {
                let arrivals = random_arrivals(&mut rng, 4, 200);
                let mut tq = TwoQueue::new();
                let mut fifo = FifoQueue::new();
                let mut next_deadline = [0u64; 4];
                for &(f, gap) in &arrivals {
                    next_deadline[f as usize] += gap.max(1);
                    let item = Item::new(f, 0, next_deadline[f as usize]);
                    tq.enqueue(item);
                    fifo.enqueue(item);
                    assert!(tq.head_deadline() <= fifo.head_deadline());
                }
            }
        }

        /// Order errors: two-queue <= plain FIFO under identical history.
        #[test]
        fn order_errors_not_worse_than_fifo() {
            let mut rng = SimRng::new(0x0E44);
            for _ in 0..150 {
                let arrivals = random_arrivals(&mut rng, 4, 200);
                if arrivals.len() < 2 {
                    continue;
                }
                let period = 1 + rng.index(3);
                let mut next_deadline = [0u64; 4];
                let items: Vec<Item> = arrivals
                    .iter()
                    .map(|&(f, gap)| {
                        next_deadline[f as usize] += gap.max(1);
                        Item::new(f, 0, next_deadline[f as usize])
                    })
                    .collect();
                let tq_err = count_errors(TwoQueue::new(), &items, period);
                let fifo_err = count_errors(FifoQueue::new(), &items, period);
                assert!(tq_err <= fifo_err, "two-queue errors {tq_err} > fifo errors {fifo_err}");
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

    proptest! {
        /// Theorem 3: no out-of-order delivery within any flow.
        #[test]
        fn prop_theorem3_no_out_of_order_delivery(
            n_flows in 1u32..8,
            arrivals in proptest::collection::vec((0u32..8, 0u64..500), 1..300),
            service in proptest::collection::vec(any::<bool>(), 1..16),
        ) {
            let out = run_model(n_flows, &arrivals, &service);
            let mut last_seq = std::collections::HashMap::new();
            for it in &out {
                if let Some(&prev) = last_seq.get(&it.flow) {
                    prop_assert!(
                        it.seq > prev,
                        "flow {} delivered seq {} after {}",
                        it.flow, it.seq, prev
                    );
                }
                last_seq.insert(it.flow, it.seq);
            }
            // Everything injected is delivered exactly once.
            prop_assert_eq!(out.len(), arrivals.len());
        }

        /// Theorems 1 & 2 and Lemma 1 hold at every step — exercised via
        /// `check_invariants` inside `run_model`; this test exists to
        /// drive many interleavings through it.
        #[test]
        fn prop_invariants_hold_under_interleaving(
            arrivals in proptest::collection::vec((0u32..4, 0u64..100), 1..200),
            service in proptest::collection::vec(any::<bool>(), 1..8),
        ) {
            run_model(4, &arrivals, &service);
        }

        /// The dequeue candidate is never worse than the best FIFO head:
        /// the two-queue system's candidate deadline is <= a plain
        /// FIFO's head deadline under identical history.
        #[test]
        fn prop_candidate_at_least_as_urgent_as_fifo(
            arrivals in proptest::collection::vec((0u32..4, 0u64..100), 1..200),
        ) {
            use crate::fifo::FifoQueue;
            let mut tq = TwoQueue::new();
            let mut fifo = FifoQueue::new();
            let mut next_deadline = [0u64; 4];
            for &(f, gap) in &arrivals {
                let f = f % 4;
                next_deadline[f as usize] += gap.max(1);
                let item = Item::new(f, 0, next_deadline[f as usize]);
                tq.enqueue(item);
                fifo.enqueue(item);
                prop_assert!(tq.head_deadline() <= fifo.head_deadline());
            }
        }

        /// Fewer order errors than Simple, no more than Ideal (zero):
        /// count, at each dequeue, whether some queued packet had a
        /// smaller deadline than the one served. The two-queue system's
        /// count is <= the plain FIFO's.
        #[test]
        fn prop_order_errors_not_worse_than_fifo(
            arrivals in proptest::collection::vec((0u32..4, 0u64..100), 2..200),
            period in 1usize..4,
        ) {
            use crate::fifo::FifoQueue;
            let mut next_deadline = [0u64; 4];
            let items: Vec<Item> = arrivals.iter().map(|&(f, gap)| {
                let f = f % 4;
                next_deadline[f as usize] += gap.max(1);
                Item::new(f, 0, next_deadline[f as usize])
            }).collect();

            fn count_errors<Q: SchedQueue<Item>>(mut q: Q, items: &[Item], period: usize) -> (u64, Vec<u64>) {
                let mut errors = 0;
                let mut pending: Vec<u64> = vec![];
                let mut served = vec![];
                let serve = |q: &mut Q, pending: &mut Vec<u64>, errors: &mut u64, served: &mut Vec<u64>| {
                    if let Some(it) = q.dequeue() {
                        if pending.iter().any(|&d| d < it.deadline) {
                            *errors += 1;
                        }
                        let pos = pending.iter().position(|&d| d == it.deadline).unwrap();
                        pending.remove(pos);
                        served.push(it.deadline);
                    }
                };
                for (i, it) in items.iter().enumerate() {
                    q.enqueue(*it);
                    pending.push(it.deadline);
                    if i % period == 0 {
                        serve(&mut q, &mut pending, &mut errors, &mut served);
                    }
                }
                while !pending.is_empty() {
                    serve(&mut q, &mut pending, &mut errors, &mut served);
                }
                (errors, served)
            }

            let (tq_err, _) = count_errors(TwoQueue::new(), &items, period);
            let (fifo_err, _) = count_errors(FifoQueue::new(), &items, period);
            prop_assert!(
                tq_err <= fifo_err,
                "two-queue errors {tq_err} > fifo errors {fifo_err}"
            );
        }
    }
    }
}
