//! The queue abstraction shared by all buffer structures.

use dqos_sim_core::SimTime;

/// An item that carries a deadline tag and a length.
///
/// Implemented for the simulator's `Packet` below and for lightweight
/// test items inside this crate.
pub trait Deadlined {
    /// The deadline tag (in the holder's clock domain).
    fn deadline(&self) -> SimTime;
    /// Length in bytes, for occupancy accounting.
    fn len_bytes(&self) -> u32;
}

impl Deadlined for dqos_core::Packet {
    #[inline]
    fn deadline(&self) -> SimTime {
        self.deadline
    }
    #[inline]
    fn len_bytes(&self) -> u32 {
        self.len
    }
}

impl Deadlined for dqos_core::PktTok {
    #[inline]
    fn deadline(&self) -> SimTime {
        self.deadline
    }
    #[inline]
    fn len_bytes(&self) -> u32 {
        self.len
    }
}

/// A scheduler-facing queue.
///
/// `head_deadline`/`peek`/`dequeue` all refer to the same element: the
/// **candidate** the structure offers to the arbiter next. For a FIFO
/// that is the front in arrival order; for a heap it is the true minimum
/// deadline; for the two-queue system it is the smaller of the two queue
/// heads. The arbiter never sees past the candidate — that restriction
/// is exactly what makes the structures hardware-feasible.
pub trait SchedQueue<T: Deadlined> {
    /// Insert an item.
    fn enqueue(&mut self, item: T);
    /// Deadline of the current candidate.
    fn head_deadline(&self) -> Option<SimTime>;
    /// Borrow the current candidate.
    fn peek(&self) -> Option<&T>;
    /// Remove and return the current candidate.
    fn dequeue(&mut self) -> Option<T>;
    /// The smallest deadline anywhere in the structure — **not** what the
    /// hardware scheduler can see (that is [`SchedQueue::head_deadline`])
    /// but what an omniscient EDF would serve. The gap between the two at
    /// dequeue time is exactly the paper's *order error*; the simulator
    /// counts them. O(n) scans are acceptable: buffers hold at most a few
    /// packets (8 KiB / 2 KiB MTU).
    fn min_deadline(&self) -> Option<SimTime>;
    /// Number of queued items.
    fn len(&self) -> usize;
    /// Total queued bytes.
    fn bytes(&self) -> u64;
    /// True when no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runtime-selected queue structure (one per architecture), dispatching
/// to the concrete implementations.
///
/// The `Fifo` and `TwoQueue` kinds dispatch to the flat ring/slot
/// versions ([`crate::flat`]); the original `VecDeque`-based structures
/// remain exported as the differential-test oracles.
#[derive(Debug, Clone)]
pub enum AnyQueue<T> {
    /// Plain FIFO (flat ring).
    Fifo(crate::flat::FlatFifo<T>),
    /// Deadline heap ("Ideal").
    Heap(crate::heap::HeapQueue<T>),
    /// Ordered + take-over queue pair ("Advanced", flat rings).
    TwoQueue(crate::flat::FlatTwoQueue<T>),
}

impl<T: Deadlined> AnyQueue<T> {
    /// Build the queue structure for an architecture's switch buffers.
    pub fn for_kind(kind: dqos_core::SwitchQueueKind) -> Self {
        match kind {
            dqos_core::SwitchQueueKind::Fifo => AnyQueue::Fifo(crate::flat::FlatFifo::new()),
            dqos_core::SwitchQueueKind::Heap => AnyQueue::Heap(crate::heap::HeapQueue::new()),
            dqos_core::SwitchQueueKind::TwoQueue => {
                AnyQueue::TwoQueue(crate::flat::FlatTwoQueue::new())
            }
        }
    }

    /// Take-over occupancy (Advanced only; 0 otherwise). Diagnostic for
    /// the order-error ablation.
    pub fn take_over_len(&self) -> usize {
        match self {
            AnyQueue::TwoQueue(q) => q.take_over_len(),
            _ => 0,
        }
    }

    /// Cumulative count of packets that needed the take-over queue
    /// (Advanced only; 0 otherwise) — each is an order error the Simple
    /// architecture would have served late.
    pub fn take_over_total(&self) -> u64 {
        match self {
            AnyQueue::TwoQueue(q) => q.take_over_total(),
            _ => 0,
        }
    }

    /// True when the current dequeue candidate sits in the take-over
    /// queue (Advanced only; `false` otherwise, including when empty).
    /// Read by the switch just before a crossbar grant to tag the
    /// flight-recorder event.
    pub fn candidate_is_take_over(&self) -> bool {
        match self {
            AnyQueue::TwoQueue(q) => q.candidate_is_take_over().unwrap_or(false),
            _ => false,
        }
    }

    /// True when this structure serves in plain arrival order, so a wait
    /// at its head is head-of-line blocking rather than deadline-ordered
    /// arbitration.
    pub fn is_fifo(&self) -> bool {
        matches!(self, AnyQueue::Fifo(_))
    }
}

impl<T: Deadlined> SchedQueue<T> for AnyQueue<T> {
    fn enqueue(&mut self, item: T) {
        match self {
            AnyQueue::Fifo(q) => q.enqueue(item),
            AnyQueue::Heap(q) => q.enqueue(item),
            AnyQueue::TwoQueue(q) => q.enqueue(item),
        }
    }
    fn head_deadline(&self) -> Option<SimTime> {
        match self {
            AnyQueue::Fifo(q) => q.head_deadline(),
            AnyQueue::Heap(q) => q.head_deadline(),
            AnyQueue::TwoQueue(q) => q.head_deadline(),
        }
    }
    fn peek(&self) -> Option<&T> {
        match self {
            AnyQueue::Fifo(q) => q.peek(),
            AnyQueue::Heap(q) => q.peek(),
            AnyQueue::TwoQueue(q) => q.peek(),
        }
    }
    fn dequeue(&mut self) -> Option<T> {
        match self {
            AnyQueue::Fifo(q) => q.dequeue(),
            AnyQueue::Heap(q) => q.dequeue(),
            AnyQueue::TwoQueue(q) => q.dequeue(),
        }
    }
    fn min_deadline(&self) -> Option<SimTime> {
        match self {
            AnyQueue::Fifo(q) => q.min_deadline(),
            AnyQueue::Heap(q) => q.min_deadline(),
            AnyQueue::TwoQueue(q) => q.min_deadline(),
        }
    }
    fn len(&self) -> usize {
        match self {
            AnyQueue::Fifo(q) => SchedQueue::len(q),
            AnyQueue::Heap(q) => SchedQueue::len(q),
            AnyQueue::TwoQueue(q) => SchedQueue::len(q),
        }
    }
    fn bytes(&self) -> u64 {
        match self {
            AnyQueue::Fifo(q) => SchedQueue::bytes(q),
            AnyQueue::Heap(q) => SchedQueue::bytes(q),
            AnyQueue::TwoQueue(q) => SchedQueue::bytes(q),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::Deadlined;
    use dqos_sim_core::SimTime;

    /// Minimal test item: a flow id, a per-flow sequence number, a
    /// deadline and a length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Item {
        pub flow: u32,
        pub seq: u32,
        pub deadline: u64,
        pub len: u32,
    }

    impl Item {
        pub fn new(flow: u32, seq: u32, deadline: u64) -> Self {
            Item { flow, seq, deadline, len: 100 }
        }
    }

    impl Deadlined for Item {
        fn deadline(&self) -> SimTime {
            SimTime::from_ns(self.deadline)
        }
        fn len_bytes(&self) -> u32 {
            self.len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::Item;
    use super::*;
    use dqos_core::SwitchQueueKind;

    #[test]
    fn any_queue_selects_structure() {
        let fifo: AnyQueue<Item> = AnyQueue::for_kind(SwitchQueueKind::Fifo);
        assert!(matches!(fifo, AnyQueue::Fifo(_)));
        let heap: AnyQueue<Item> = AnyQueue::for_kind(SwitchQueueKind::Heap);
        assert!(matches!(heap, AnyQueue::Heap(_)));
        let tq: AnyQueue<Item> = AnyQueue::for_kind(SwitchQueueKind::TwoQueue);
        assert!(matches!(tq, AnyQueue::TwoQueue(_)));
    }

    #[test]
    fn discipline_queries_reflect_structure() {
        let mut fifo: AnyQueue<Item> = AnyQueue::for_kind(SwitchQueueKind::Fifo);
        assert!(fifo.is_fifo());
        assert!(!fifo.candidate_is_take_over());
        fifo.enqueue(Item::new(0, 0, 50));
        assert!(!fifo.candidate_is_take_over());

        let mut tq: AnyQueue<Item> = AnyQueue::for_kind(SwitchQueueKind::TwoQueue);
        assert!(!tq.is_fifo());
        assert!(!tq.candidate_is_take_over());
        // An in-order arrival stays in the ordered queue...
        tq.enqueue(Item::new(0, 0, 50));
        assert!(!tq.candidate_is_take_over());
        // ...but a tighter-deadline late arrival rides the take-over queue
        // and becomes the candidate.
        tq.enqueue(Item::new(1, 0, 40));
        assert!(tq.candidate_is_take_over());
    }

    #[test]
    fn any_queue_dispatches() {
        for kind in [SwitchQueueKind::Fifo, SwitchQueueKind::Heap, SwitchQueueKind::TwoQueue] {
            let mut q: AnyQueue<Item> = AnyQueue::for_kind(kind);
            assert!(q.is_empty());
            q.enqueue(Item::new(0, 0, 50));
            q.enqueue(Item::new(0, 1, 60));
            assert_eq!(SchedQueue::len(&q), 2);
            assert_eq!(SchedQueue::bytes(&q), 200);
            assert_eq!(q.head_deadline(), Some(dqos_sim_core::SimTime::from_ns(50)));
            assert_eq!(q.peek().unwrap().deadline, 50);
            assert_eq!(q.dequeue().unwrap().deadline, 50);
            assert_eq!(q.dequeue().unwrap().deadline, 60);
            assert!(q.dequeue().is_none());
        }
    }
}
