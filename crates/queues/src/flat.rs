//! Flat ring/slot storage for the hot-path queue structures.
//!
//! The original [`FifoQueue`](crate::fifo::FifoQueue) and
//! [`TwoQueue`](crate::two_queue::TwoQueue) sit on `VecDeque`s, which are
//! fine structures but carry per-call branch and bounds overhead the
//! simulator's inner loop can feel at tens of millions of operations per
//! second. The versions here keep the **identical observable semantics**
//! (the differential tests at the bottom of this file replay random
//! op-sequences against the originals as oracles) on top of a single
//! power-of-two slot ring per queue:
//!
//! * slots are `Option<T>` in one contiguous `Vec`, head/length indices
//!   wrap with a mask — no per-element allocation ever, and growth
//!   (doubling, with an in-order copy) happens only until the ring
//!   reaches the high-water mark of its port, after which enqueue and
//!   dequeue are straight-line slot writes;
//! * the two-queue dequeue choice is a **branchless compare**: each
//!   ring's head deadline is read through an `u64::MAX` sentinel for
//!   "empty", and the candidate is the take-over head exactly when its
//!   key is *strictly* below the ordered key — which encodes Definition
//!   2, Lemma 1 (empty-ordered ⇒ empty-take-over ⇒ both sentinels), and
//!   the ties-go-to-ordered rule in one unsigned comparison.
//!
//! [`AnyQueue`](crate::traits::AnyQueue) dispatches to these for the
//! `Fifo` and `TwoQueue` kinds; the originals remain exported (and
//! covered by the paper's theorem suite) as the differential oracles.

// tidy: hot-path

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;

/// Deadline key used for the branchless head compare: empty reads as
/// `u64::MAX`, so any real head wins and two empties tie (→ ordered,
/// which `candidate_is_take_over` maps back to `None`).
const EMPTY_KEY: u64 = u64::MAX;

/// A power-of-two slot ring: the storage primitive under both flat
/// queues. Not a scheduler-facing type — no deadline logic lives here.
#[derive(Debug, Clone)]
struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> Ring<T> {
    const INITIAL_CAP: usize = 8;

    fn new() -> Self {
        Ring { slots: Vec::new(), head: 0, len: 0 }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Double the ring, copying live slots back in queue order so the
    /// head lands on index 0. Runs O(log n) times total per ring.
    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() { Self::INITIAL_CAP } else { self.slots.len() * 2 };
        let mut slots: Vec<Option<T>> = Vec::with_capacity(new_cap);
        if !self.slots.is_empty() {
            let mask = self.mask();
            for i in 0..self.len {
                slots.push(self.slots[(self.head + i) & mask].take());
            }
        }
        slots.resize_with(new_cap, || None);
        self.slots = slots;
        self.head = 0;
    }

    #[inline]
    fn push_back(&mut self, item: T) {
        if self.len == self.slots.len() {
            self.grow();
        }
        let idx = (self.head + self.len) & self.mask();
        self.slots[idx] = Some(item);
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some(), "ring slot under head must be occupied");
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        item
    }

    #[inline]
    fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    #[inline]
    fn back(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[(self.head + self.len - 1) & self.mask()].as_ref()
        }
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| {
            self.slots[(self.head + i) & self.mask()]
                .as_ref()
                // tidy: allow(no-unwrap) -- every slot in [head, head+len)
                // is occupied by the ring invariant.
                .expect("ring slot within live range")
        })
    }
}

/// Flat-ring FIFO: observably identical to
/// [`FifoQueue`](crate::fifo::FifoQueue).
#[derive(Debug, Clone)]
pub struct FlatFifo<T> {
    ring: Ring<T>,
    bytes: u64,
}

impl<T> Default for FlatFifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlatFifo<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FlatFifo { ring: Ring::new(), bytes: 0 }
    }

    /// Iterate items front to back (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.ring.iter()
    }
}

impl<T: Deadlined> SchedQueue<T> for FlatFifo<T> {
    #[inline]
    fn enqueue(&mut self, item: T) {
        self.bytes += item.len_bytes() as u64;
        self.ring.push_back(item);
    }

    #[inline]
    fn head_deadline(&self) -> Option<SimTime> {
        self.ring.front().map(|p| p.deadline())
    }

    #[inline]
    fn peek(&self) -> Option<&T> {
        self.ring.front()
    }

    #[inline]
    fn dequeue(&mut self) -> Option<T> {
        let item = self.ring.pop_front()?;
        self.bytes -= item.len_bytes() as u64;
        Some(item)
    }

    fn min_deadline(&self) -> Option<SimTime> {
        self.ring.iter().map(|p| p.deadline()).min()
    }

    #[inline]
    fn len(&self) -> usize {
        self.ring.len
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Flat-ring two-queue system: observably identical to
/// [`TwoQueue`](crate::two_queue::TwoQueue), with the dequeue-side
/// head compare reduced to one branchless unsigned comparison.
#[derive(Debug, Clone)]
pub struct FlatTwoQueue<T> {
    /// Ordered queue (appendix: `L`).
    ordered: Ring<T>,
    /// Take-over queue (appendix: `U`).
    take_over: Ring<T>,
    bytes: u64,
    take_over_total: u64,
}

impl<T> Default for FlatTwoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlatTwoQueue<T> {
    /// An empty structure.
    pub fn new() -> Self {
        FlatTwoQueue {
            ordered: Ring::new(),
            take_over: Ring::new(),
            bytes: 0,
            take_over_total: 0,
        }
    }

    /// Current take-over queue occupancy.
    pub fn take_over_len(&self) -> usize {
        self.take_over.len
    }

    /// Current ordered queue occupancy.
    pub fn ordered_len(&self) -> usize {
        self.ordered.len
    }

    /// Cumulative count of packets that went to the take-over queue.
    pub fn take_over_total(&self) -> u64 {
        self.take_over_total
    }
}

impl<T: Deadlined> FlatTwoQueue<T> {
    /// Head deadline of a ring through the empty sentinel.
    #[inline]
    fn key(ring: &Ring<T>) -> u64 {
        ring.front().map_or(EMPTY_KEY, |p| p.deadline().0)
    }

    /// The branchless Definition-2 compare: `true` iff the candidate is
    /// the take-over head. Strict `<` gives ties to the ordered queue
    /// and makes the empty/empty case `false`; Lemma 1 rules out
    /// ordered-empty with take-over occupied, so the sentinel ordering
    /// is exhaustive.
    #[inline]
    fn take_over_wins(&self) -> bool {
        Self::key(&self.take_over) < Self::key(&self.ordered)
    }

    /// Which queue the dequeue candidate currently sits in (`None` when
    /// empty). Same contract as
    /// [`TwoQueue::candidate_is_take_over`](crate::two_queue::TwoQueue::candidate_is_take_over).
    pub fn candidate_is_take_over(&self) -> Option<bool> {
        if self.ordered.len + self.take_over.len == 0 {
            None
        } else {
            Some(self.take_over_wins())
        }
    }

    /// Debug check of Theorems 1 and 2 on the live structure (mirrors
    /// the oracle's checker).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<SimTime> = None;
        for p in self.ordered.iter() {
            if let Some(pd) = prev {
                if p.deadline() < pd {
                    return Err(format!(
                        "ordered ring not sorted: {:?} after {:?}",
                        p.deadline(),
                        pd
                    ));
                }
            }
            prev = Some(p.deadline());
        }
        if let Some(tail) = self.ordered.back() {
            for u in self.take_over.iter() {
                if u.deadline() >= tail.deadline() {
                    return Err(format!(
                        "take-over element {:?} not below ordered tail {:?}",
                        u.deadline(),
                        tail.deadline()
                    ));
                }
            }
        } else if self.take_over.len != 0 {
            return Err("take-over non-empty while ordered empty (Lemma 1)".into());
        }
        Ok(())
    }
}

impl<T: Deadlined> SchedQueue<T> for FlatTwoQueue<T> {
    #[inline]
    fn enqueue(&mut self, item: T) {
        self.bytes += item.len_bytes() as u64;
        // Definition 1: at or above the ordered tail -> ordered queue
        // (sentinel: an empty ordered queue reads as tail ZERO, which any
        // deadline is >=, matching the both-empty -> L rule).
        let tail = self.ordered.back().map_or(0, |p| p.deadline().0);
        if item.deadline().0 >= tail {
            self.ordered.push_back(item);
        } else {
            self.take_over_total += 1;
            self.take_over.push_back(item);
        }
        debug_assert!(self.check_invariants().is_ok());
    }

    #[inline]
    fn head_deadline(&self) -> Option<SimTime> {
        let key = Self::key(&self.ordered).min(Self::key(&self.take_over));
        if key == EMPTY_KEY {
            None
        } else {
            Some(SimTime(key))
        }
    }

    #[inline]
    fn peek(&self) -> Option<&T> {
        if self.take_over_wins() {
            self.take_over.front()
        } else {
            self.ordered.front()
        }
    }

    #[inline]
    fn dequeue(&mut self) -> Option<T> {
        let item = if self.take_over_wins() {
            self.take_over.pop_front()
        } else {
            self.ordered.pop_front()
        }?;
        self.bytes -= item.len_bytes() as u64;
        debug_assert!(self.check_invariants().is_ok());
        Some(item)
    }

    fn min_deadline(&self) -> Option<SimTime> {
        // Theorem 1: the ordered ring's minimum is its head; the
        // take-over ring is unordered and needs the scan.
        let l = self.ordered.front().map(|p| p.deadline());
        let u = self.take_over.iter().map(|p| p.deadline()).min();
        match (l, u) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.ordered.len + self.take_over.len
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }
}

// ---------------------------------------------------------------------
// Differential suite: flat vs. original, random op-sequences
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::traits::test_util::Item;
    use crate::two_queue::TwoQueue;
    use crate::voq::Voq;
    use dqos_sim_core::SimRng;

    /// Assert every observable of the trait agrees between the flat
    /// structure and its oracle at the current state.
    fn assert_observables<A, B>(flat: &A, oracle: &B, step: usize)
    where
        A: SchedQueue<Item>,
        B: SchedQueue<Item>,
    {
        assert_eq!(flat.len(), oracle.len(), "len diverged at step {step}");
        assert_eq!(flat.bytes(), oracle.bytes(), "bytes diverged at step {step}");
        assert_eq!(flat.is_empty(), oracle.is_empty(), "is_empty diverged at step {step}");
        assert_eq!(
            flat.head_deadline(),
            oracle.head_deadline(),
            "head_deadline diverged at step {step}"
        );
        assert_eq!(flat.peek(), oracle.peek(), "peek diverged at step {step}");
        assert_eq!(
            flat.min_deadline(),
            oracle.min_deadline(),
            "min_deadline diverged at step {step}"
        );
    }

    fn random_item(rng: &mut SimRng, seq: u32) -> Item {
        Item {
            flow: rng.range_u64(0, 7) as u32,
            seq,
            // Small range on purpose: plenty of deadline ties, the case
            // where the candidate compare could diverge.
            deadline: rng.range_u64(0, 63),
            len: 64 + 64 * rng.range_u64(0, 31) as u32,
        }
    }

    /// Drive identical random op-sequences (biased toward enqueue so the
    /// structures fill and wrap) through a flat structure and its oracle,
    /// checking every observable after every op.
    fn differential<A, B>(mut flat: A, mut oracle: B, seed: u64, ops: usize)
    where
        A: SchedQueue<Item>,
        B: SchedQueue<Item>,
    {
        let mut rng = SimRng::new(seed);
        let mut seq = 0u32;
        for step in 0..ops {
            if rng.chance(0.6) {
                let item = random_item(&mut rng, seq);
                seq += 1;
                flat.enqueue(item);
                oracle.enqueue(item);
            } else {
                assert_eq!(flat.dequeue(), oracle.dequeue(), "dequeue diverged at step {step}");
            }
            assert_observables(&flat, &oracle, step);
        }
        // Drain both to the end: the wrap-around exit path must agree too.
        loop {
            let (f, o) = (flat.dequeue(), oracle.dequeue());
            assert_eq!(f, o, "drain diverged");
            if f.is_none() {
                break;
            }
        }
    }

    #[test]
    fn flat_fifo_matches_fifo_oracle() {
        for seed in [1u64, 0xF1F0, 0xDEAD_BEEF] {
            differential(FlatFifo::new(), FifoQueue::new(), seed, 2_000);
        }
    }

    #[test]
    fn flat_two_queue_matches_two_queue_oracle() {
        for seed in [2u64, 0x2277, 0xCAFE_F00D] {
            differential(FlatTwoQueue::new(), TwoQueue::new(), seed, 2_000);
        }
    }

    /// The Advanced-specific observables (take-over routing and the
    /// grant tag) must agree as well — they feed `take_over_total` in the
    /// run reports, which the determinism matrix compares bit-for-bit.
    #[test]
    fn flat_two_queue_matches_take_over_accounting() {
        let mut rng = SimRng::new(0x7A0C);
        let mut flat = FlatTwoQueue::new();
        let mut oracle = TwoQueue::new();
        let mut seq = 0u32;
        for step in 0..3_000 {
            if rng.chance(0.55) {
                let item = random_item(&mut rng, seq);
                seq += 1;
                flat.enqueue(item);
                oracle.enqueue(item);
            } else {
                assert_eq!(flat.dequeue(), oracle.dequeue(), "dequeue diverged at step {step}");
            }
            assert_eq!(flat.take_over_len(), oracle.take_over_len(), "U len at step {step}");
            assert_eq!(flat.ordered_len(), oracle.ordered_len(), "L len at step {step}");
            assert_eq!(
                flat.take_over_total(),
                oracle.take_over_total(),
                "take_over_total at step {step}"
            );
            assert_eq!(
                flat.candidate_is_take_over(),
                oracle.candidate_is_take_over(),
                "candidate tag at step {step}"
            );
            flat.check_invariants().unwrap();
        }
    }

    /// VOQ banks composed over the flat structures behave identically to
    /// banks over the originals under per-output random traffic.
    #[test]
    fn voq_over_flat_matches_voq_over_oracles() {
        let n_out = 4;
        let mut flat: Voq<FlatTwoQueue<Item>> = Voq::new(n_out, FlatTwoQueue::new);
        let mut oracle: Voq<TwoQueue<Item>> = Voq::new(n_out, TwoQueue::new);
        let mut rng = SimRng::new(0xB00);
        let mut seq = 0u32;
        for step in 0..2_000 {
            let out = rng.index(n_out);
            if rng.chance(0.6) {
                let item = random_item(&mut rng, seq);
                seq += 1;
                flat.enqueue(out, item);
                oracle.enqueue(out, item);
            } else {
                assert_eq!(
                    flat.dequeue(out),
                    oracle.dequeue(out),
                    "voq dequeue diverged at step {step}"
                );
            }
            assert_eq!(flat.total_len(), oracle.total_len(), "voq len at step {step}");
            assert_eq!(flat.bytes(), oracle.bytes(), "voq bytes at step {step}");
            for o in 0..n_out {
                assert_eq!(
                    flat.head_deadline(o),
                    oracle.head_deadline(o),
                    "voq head at out {o}, step {step}"
                );
            }
        }
    }

    #[test]
    fn ring_grows_and_wraps() {
        let mut q = FlatFifo::new();
        let mut popped = 0usize;
        // Interleave so the head walks around the ring across growth.
        for i in 0..200u32 {
            q.enqueue(Item::new(0, i, (i as u64) + 1));
            if i % 3 == 0 && q.dequeue().is_some() {
                popped += 1;
            }
        }
        // Everything still comes out in strict FIFO order.
        let mut prev = 0u64;
        let mut drained = 0usize;
        while let Some(it) = q.dequeue() {
            assert!(it.deadline > prev, "FIFO order broken across wrap");
            prev = it.deadline;
            drained += 1;
        }
        assert_eq!(popped + drained, 200, "conservation across growth and wrap");
    }
}
