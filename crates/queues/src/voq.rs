//! Virtual output queuing: one queue structure per output port.
//!
//! §4.1: "We use virtual output queuing (VOQ) at the switch level, which
//! is the usual solution to avoid head-of-line blocking." Each input
//! buffer is logically partitioned by destination output port; the
//! arbiter for an output port consults only the sub-queues heading to it.

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;

/// A bank of queues, one per output port, sharing a byte budget.
#[derive(Debug, Clone)]
pub struct Voq<Q> {
    queues: Vec<Q>,
    bytes: u64,
}

impl<Q> Voq<Q> {
    /// Build a VOQ bank with `n_outputs` sub-queues created by `make`.
    pub fn new(n_outputs: usize, make: impl Fn() -> Q) -> Self {
        Voq { queues: (0..n_outputs).map(|_| make()).collect(), bytes: 0 }
    }

    /// Number of sub-queues.
    pub fn n_outputs(&self) -> usize {
        self.queues.len()
    }

    /// Total bytes across all sub-queues (the shared input-buffer
    /// occupancy that credit flow control accounts).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrow a sub-queue.
    pub fn queue(&self, output: usize) -> &Q {
        &self.queues[output]
    }
}

impl<Q> Voq<Q> {
    /// Enqueue an item heading to `output`.
    pub fn enqueue<T: Deadlined>(&mut self, output: usize, item: T)
    where
        Q: SchedQueue<T>,
    {
        self.bytes += item.len_bytes() as u64;
        self.queues[output].enqueue(item);
    }

    /// The candidate deadline offered towards `output`.
    pub fn head_deadline<T: Deadlined>(&self, output: usize) -> Option<SimTime>
    where
        Q: SchedQueue<T>,
    {
        self.queues[output].head_deadline()
    }

    /// Borrow the candidate heading to `output`.
    pub fn peek<T: Deadlined>(&self, output: usize) -> Option<&T>
    where
        Q: SchedQueue<T>,
    {
        self.queues[output].peek()
    }

    /// Whether any item is waiting for `output`.
    pub fn has_for<T: Deadlined>(&self, output: usize) -> bool
    where
        Q: SchedQueue<T>,
    {
        !self.queues[output].is_empty()
    }

    /// Dequeue the candidate heading to `output`.
    pub fn dequeue<T: Deadlined>(&mut self, output: usize) -> Option<T>
    where
        Q: SchedQueue<T>,
    {
        let item = self.queues[output].dequeue()?;
        self.bytes -= item.len_bytes() as u64;
        Some(item)
    }

    /// Total queued items across sub-queues.
    pub fn total_len<T: Deadlined>(&self) -> usize
    where
        Q: SchedQueue<T>,
    {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when every sub-queue is empty.
    pub fn is_empty<T: Deadlined>(&self) -> bool
    where
        Q: SchedQueue<T>,
    {
        self.queues.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::traits::test_util::Item;
    use crate::two_queue::TwoQueue;

    #[test]
    fn routes_to_sub_queues() {
        let mut v: Voq<FifoQueue<Item>> = Voq::new(4, FifoQueue::new);
        v.enqueue(0, Item::new(0, 0, 10));
        v.enqueue(2, Item::new(1, 0, 20));
        v.enqueue(2, Item::new(1, 1, 30));
        assert!(v.has_for(0));
        assert!(!v.has_for(1));
        assert!(v.has_for(2));
        assert_eq!(v.total_len(), 3);
        assert_eq!(v.head_deadline(2), Some(SimTime::from_ns(20)));
        assert_eq!(v.dequeue(2).unwrap().deadline, 20);
        assert_eq!(v.dequeue(0).unwrap().deadline, 10);
        assert!(v.dequeue(1).is_none());
        assert!(!v.is_empty());
        v.dequeue(2);
        assert!(v.is_empty());
    }

    #[test]
    fn shared_byte_budget() {
        let mut v: Voq<TwoQueue<Item>> = Voq::new(2, TwoQueue::new);
        v.enqueue(0, Item { flow: 0, seq: 0, deadline: 5, len: 100 });
        v.enqueue(1, Item { flow: 1, seq: 0, deadline: 6, len: 200 });
        assert_eq!(v.bytes(), 300);
        v.dequeue(1);
        assert_eq!(v.bytes(), 100);
    }

    #[test]
    fn no_hol_blocking_across_outputs() {
        // A packet stuck for output 0 does not hide packets for output 1
        // — the definitional property of VOQ.
        let mut v: Voq<FifoQueue<Item>> = Voq::new(2, FifoQueue::new);
        v.enqueue(0, Item::new(0, 0, 999)); // "blocked" head for output 0
        v.enqueue(1, Item::new(1, 0, 1));
        assert_eq!(v.dequeue(1).unwrap().deadline, 1);
    }
}
