//! Deadline-ordered heap buffer — the *Ideal* architecture.
//!
//! Models the pipelined heap (priority queue) of Ioannou & Katevenis
//! [ICC'01]: the packet with the smallest deadline is always at the top,
//! so the arbiter sees the true EDF candidate and order errors cannot
//! occur. The paper uses it as the performance upper bound while arguing
//! its per-port cost is not practical at high radix.
//!
//! Ties on deadline break by arrival order (a stable heap), so behaviour
//! is deterministic and matches what a hardware heap with an age field
//! would do.

use crate::traits::{Deadlined, SchedQueue};
use dqos_sim_core::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Entry<T> {
    deadline: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (deadline, seq).
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

/// A stable min-heap keyed by deadline.
#[derive(Debug, Clone)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    bytes: u64,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapQueue<T> {
    /// An empty heap.
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new(), seq: 0, bytes: 0 }
    }
}

impl<T: Deadlined> SchedQueue<T> for HeapQueue<T> {
    fn enqueue(&mut self, item: T) {
        self.bytes += item.len_bytes() as u64;
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { deadline: item.deadline(), seq, item });
    }

    fn head_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.deadline)
    }

    fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.item)
    }

    fn dequeue(&mut self) -> Option<T> {
        let e = self.heap.pop()?;
        self.bytes -= e.item.len_bytes() as u64;
        Some(e.item)
    }

    fn min_deadline(&self) -> Option<SimTime> {
        // A heap's candidate *is* the minimum: order errors impossible.
        self.head_deadline()
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_util::Item;

    #[test]
    fn always_exposes_minimum() {
        let mut q = HeapQueue::new();
        q.enqueue(Item::new(0, 0, 300));
        q.enqueue(Item::new(1, 0, 100));
        q.enqueue(Item::new(2, 0, 200));
        assert_eq!(q.head_deadline(), Some(SimTime::from_ns(100)));
        assert_eq!(q.dequeue().unwrap().deadline, 100);
        assert_eq!(q.dequeue().unwrap().deadline, 200);
        assert_eq!(q.dequeue().unwrap().deadline, 300);
    }

    #[test]
    fn ties_break_by_arrival() {
        let mut q = HeapQueue::new();
        q.enqueue(Item::new(7, 0, 100));
        q.enqueue(Item::new(8, 0, 100));
        q.enqueue(Item::new(9, 0, 100));
        assert_eq!(q.dequeue().unwrap().flow, 7);
        assert_eq!(q.dequeue().unwrap().flow, 8);
        assert_eq!(q.dequeue().unwrap().flow, 9);
    }

    #[test]
    fn byte_accounting() {
        let mut q = HeapQueue::new();
        q.enqueue(Item { flow: 0, seq: 0, deadline: 5, len: 42 });
        assert_eq!(q.bytes(), 42);
        q.dequeue();
        assert_eq!(q.bytes(), 0);
    }

    /// Dependency-free port of the property suite: random interleaved
    /// enqueue/dequeue against a linear-scan model.
    #[test]
    fn randomized_head_is_min() {
        use dqos_sim_core::SimRng;
        let mut rng = SimRng::new(0x4EA9);
        for _ in 0..100 {
            let mut q = HeapQueue::new();
            let mut model: Vec<u64> = vec![];
            for i in 0..1 + rng.index(300) {
                if rng.chance(0.6) || model.is_empty() {
                    let d = rng.range_u64(0, 999);
                    q.enqueue(Item::new(0, i as u32, d));
                    model.push(d);
                } else {
                    let got = q.dequeue().unwrap().deadline;
                    let min_pos = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &v)| v)
                        .map(|(p, _)| p)
                        .unwrap();
                    assert_eq!(got, model.remove(min_pos));
                }
                assert_eq!(q.head_deadline().map(|t| t.as_ns()), model.iter().min().copied());
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

    proptest! {
        /// Dequeues come out in non-decreasing deadline order whatever
        /// the insertion order (the defining heap property).
        #[test]
        fn prop_dequeue_sorted(deadlines in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = HeapQueue::new();
            for (i, &d) in deadlines.iter().enumerate() {
                q.enqueue(Item::new(0, i as u32, d));
            }
            let mut last = 0;
            while let Some(it) = q.dequeue() {
                prop_assert!(it.deadline >= last);
                last = it.deadline;
            }
        }

        /// Interleaved enqueue/dequeue: the head is always the minimum of
        /// the current contents.
        #[test]
        fn prop_head_is_min(ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..300)) {
            let mut q = HeapQueue::new();
            let mut model: Vec<u64> = vec![];
            for (i, (push, d)) in ops.into_iter().enumerate() {
                if push || model.is_empty() {
                    q.enqueue(Item::new(0, i as u32, d));
                    model.push(d);
                } else {
                    let got = q.dequeue().unwrap().deadline;
                    let min_pos = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &v)| v)
                        .map(|(p, _)| p)
                        .unwrap();
                    let want = model.remove(min_pos);
                    prop_assert_eq!(got, want);
                }
                prop_assert_eq!(q.head_deadline().map(|t| t.as_ns()), model.iter().min().copied());
            }
        }
    }
    }
}
