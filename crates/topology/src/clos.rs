//! The folded-Clos (bidirectional MIN) builder.
//!
//! Layout conventions (all ids dense, all assignments deterministic):
//!
//! * Hosts `0..l*d` attach in order to leaves: leaf `i` serves hosts
//!   `i*d .. i*d+d`.
//! * Switches: leaves are `S0..S(l-1)`, spines `S(l)..S(l+s-1)`.
//! * Leaf ports: `0..d` go down to hosts (port `p` ↔ host `i*d + p`),
//!   ports `d..d+s` go up to spines (port `d + j` ↔ spine `j`).
//! * Spine ports: port `i` goes down to leaf `i`.
//! * Every cable is two directed [`LinkId`]s, one per direction, so the
//!   credit-based flow control can account each direction independently.
//!
//! The paper's network is [`ClosParams::paper`]: `d = 8`, `l = 16`,
//! `s = 8` — 128 hosts, 16-port switches (8+8 at the leaves, 16 at the
//! spines), exactly the folded perfect-shuffle butterfly of §4.1.

use crate::ids::{HostId, LinkId, NodeId, Port, SwitchId};
use crate::route::{Route, RouteHop};

/// Parameters of a two-stage folded Clos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosParams {
    /// Hosts per leaf switch (`d`).
    pub hosts_per_leaf: u16,
    /// Number of leaf switches (`l`).
    pub leaves: u16,
    /// Number of spine switches (`s`). Zero builds a single-stage network
    /// (only valid when `leaves == 1`).
    pub spines: u16,
}

impl ClosParams {
    /// The paper's 128-endpoint configuration: 16 leaves × 8 hosts,
    /// 8 spines, 16-port switches.
    pub const fn paper() -> Self {
        ClosParams { hosts_per_leaf: 8, leaves: 16, spines: 8 }
    }

    /// A reduced instance with the same switch structure (8 hosts/leaf,
    /// 8 spines) for a given host count, which must be a positive
    /// multiple of 8. Used by the fast bench presets.
    pub fn scaled(hosts: u16) -> Self {
        assert!(hosts > 0 && hosts.is_multiple_of(8), "host count must be a positive multiple of 8");
        if hosts == 8 {
            // Single leaf: no spine stage needed.
            ClosParams { hosts_per_leaf: 8, leaves: 1, spines: 0 }
        } else {
            ClosParams { hosts_per_leaf: 8, leaves: hosts / 8, spines: 8 }
        }
    }

    /// A single-switch "network": all hosts on one crossbar. Handy for
    /// unit tests of switch behaviour in isolation.
    pub const fn single_switch(hosts: u16) -> Self {
        ClosParams { hosts_per_leaf: hosts, leaves: 1, spines: 0 }
    }

    /// Total host count.
    pub fn n_hosts(&self) -> u32 {
        self.hosts_per_leaf as u32 * self.leaves as u32
    }

    /// Total switch count (leaves + spines).
    pub fn n_switches(&self) -> u32 {
        self.leaves as u32 + self.spines as u32
    }

    /// The port count of the widest switch (leaf: down+up, spine: leaves).
    pub fn radix(&self) -> u16 {
        (self.hosts_per_leaf + self.spines).max(self.leaves)
    }

    fn validate(&self) {
        assert!(self.hosts_per_leaf > 0, "need at least one host per leaf");
        assert!(self.leaves > 0, "need at least one leaf");
        assert!(
            self.spines > 0 || self.leaves == 1,
            "a multi-leaf network needs at least one spine"
        );
    }
}

/// The far end of a directed link, as seen from its transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEnd {
    /// The directed link id (for credit accounting).
    pub link: LinkId,
    /// The node the link delivers to.
    pub peer: NodeId,
    /// The input port on `peer` the link arrives at.
    pub peer_port: Port,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkInfo {
    src: NodeId,
    src_port: Port,
    dst: NodeId,
    dst_port: Port,
}

/// A fully built two-stage folded Clos.
///
/// ```
/// use dqos_topology::{ClosParams, FoldedClos, HostId};
///
/// // The paper's network: 128 hosts, 16 leaves, 8 spines.
/// let net = FoldedClos::build(ClosParams::paper());
/// assert_eq!(net.n_hosts(), 128);
/// assert_eq!(net.n_switches(), 24);
///
/// // Inter-leaf pairs have one fixed route per spine.
/// assert_eq!(net.route_choices(HostId(0), HostId(127)), 8);
/// let route = net.route(HostId(0), HostId(127), 3);
/// assert_eq!(route.len(), 3);              // leaf -> spine 3 -> leaf
/// net.check_route(&route).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct FoldedClos {
    params: ClosParams,
    links: Vec<LinkInfo>,
    /// `host_up[h]`: the host's injection link (host → leaf).
    host_up: Vec<LinkId>,
    /// `host_down[h]`: the delivery link (leaf → host).
    host_down: Vec<LinkId>,
    /// `switch_out[sw][port]`: the directed link leaving that port.
    switch_out: Vec<Vec<Option<LinkId>>>,
}

impl FoldedClos {
    /// Build the network for `params`.
    pub fn build(params: ClosParams) -> Self {
        params.validate();
        let d = params.hosts_per_leaf as u32;
        let l = params.leaves as u32;
        let s = params.spines as u32;
        let n_hosts = params.n_hosts();
        let n_switches = params.n_switches();

        let mut links = Vec::with_capacity((2 * n_hosts + 2 * l * s) as usize);
        let mut host_up = vec![LinkId(u32::MAX); n_hosts as usize];
        let mut host_down = vec![LinkId(u32::MAX); n_hosts as usize];
        let mut switch_out: Vec<Vec<Option<LinkId>>> = (0..n_switches)
            .map(|sw| {
                let ports = if sw < l { d + s } else { l };
                vec![None; ports as usize]
            })
            .collect();

        let add = |info: LinkInfo, links: &mut Vec<LinkInfo>| -> LinkId {
            let id = LinkId(links.len() as u32);
            links.push(info);
            id
        };

        // Host <-> leaf cables.
        for h in 0..n_hosts {
            let leaf = SwitchId(h / d);
            let leaf_port = Port((h % d) as u8);
            let up = add(
                LinkInfo {
                    src: NodeId::Host(HostId(h)),
                    src_port: Port(0),
                    dst: NodeId::Switch(leaf),
                    dst_port: leaf_port,
                },
                &mut links,
            );
            let down = add(
                LinkInfo {
                    src: NodeId::Switch(leaf),
                    src_port: leaf_port,
                    dst: NodeId::Host(HostId(h)),
                    dst_port: Port(0),
                },
                &mut links,
            );
            host_up[h as usize] = up;
            host_down[h as usize] = down;
            switch_out[leaf.idx()][leaf_port.idx()] = Some(down);
        }

        // Leaf <-> spine cables (full bipartite).
        for i in 0..l {
            for j in 0..s {
                let leaf = SwitchId(i);
                let spine = SwitchId(l + j);
                let leaf_port = Port((d + j) as u8);
                let spine_port = Port(i as u8);
                let up = add(
                    LinkInfo {
                        src: NodeId::Switch(leaf),
                        src_port: leaf_port,
                        dst: NodeId::Switch(spine),
                        dst_port: spine_port,
                    },
                    &mut links,
                );
                let down = add(
                    LinkInfo {
                        src: NodeId::Switch(spine),
                        src_port: spine_port,
                        dst: NodeId::Switch(leaf),
                        dst_port: leaf_port,
                    },
                    &mut links,
                );
                switch_out[leaf.idx()][leaf_port.idx()] = Some(up);
                switch_out[spine.idx()][spine_port.idx()] = Some(down);
            }
        }

        FoldedClos { params, links, host_up, host_down, switch_out }
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> ClosParams {
        self.params
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> u32 {
        self.params.n_hosts()
    }

    /// Number of switches (leaves first, then spines).
    pub fn n_switches(&self) -> u32 {
        self.params.n_switches()
    }

    /// Number of directed links.
    pub fn n_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Number of ports on switch `sw`.
    pub fn switch_ports(&self, sw: SwitchId) -> u8 {
        self.switch_out[sw.idx()].len() as u8
    }

    /// Whether `sw` is a leaf (has host-facing ports).
    pub fn is_leaf(&self, sw: SwitchId) -> bool {
        sw.0 < self.params.leaves as u32
    }

    /// The leaf switch serving `host`.
    pub fn leaf_of(&self, host: HostId) -> SwitchId {
        SwitchId(host.0 / self.params.hosts_per_leaf as u32)
    }

    /// The spine with index `j` (`0 <= j < spines`).
    pub fn spine(&self, j: u16) -> SwitchId {
        debug_assert!(j < self.params.spines);
        SwitchId(self.params.leaves as u32 + j as u32)
    }

    /// Where a host's injection link lands (its leaf switch + port).
    pub fn host_out_link(&self, host: HostId) -> LinkEnd {
        let id = self.host_up[host.idx()];
        let info = self.links[id.idx()];
        LinkEnd { link: id, peer: info.dst, peer_port: info.dst_port }
    }

    /// The delivery link of a host (leaf → host), for credit accounting
    /// at the leaf's output.
    pub fn host_delivery_link(&self, host: HostId) -> LinkId {
        self.host_down[host.idx()]
    }

    /// Where the link leaving `(sw, port)` lands, if that port is wired.
    pub fn switch_out_link(&self, sw: SwitchId, port: Port) -> Option<LinkEnd> {
        let id = (*self.switch_out.get(sw.idx())?.get(port.idx())?)?;
        let info = self.links[id.idx()];
        Some(LinkEnd { link: id, peer: info.dst, peer_port: info.dst_port })
    }

    /// Every directed link touching switch `sw`, in both directions —
    /// what "the whole switch failed" means to the fault injector.
    pub fn switch_links(&self, sw: SwitchId) -> Vec<LinkId> {
        let node = NodeId::Switch(sw);
        self.links
            .iter()
            .enumerate()
            .filter(|(_, info)| info.src == node || info.dst == node)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// The two directed links of the cable between leaf `leaf` and spine
    /// index `spine`: `[up (leaf → spine), down (spine → leaf)]`.
    pub fn leaf_spine_links(&self, leaf: u16, spine: u16) -> [LinkId; 2] {
        assert!(leaf < self.params.leaves, "leaf index out of range");
        assert!(spine < self.params.spines, "spine index out of range");
        let d = self.params.hosts_per_leaf as u32;
        let leaf_sw = SwitchId(leaf as u32);
        let up_port = Port((d + spine as u32) as u8);
        // tidy: allow(no-unwrap) -- the constructor wires every leaf uplink
        // port; the index asserts above keep us inside the built fabric.
        let up = self.switch_out[leaf_sw.idx()][up_port.idx()].expect("leaf uplink wired");
        let spine_sw = self.spine(spine);
        let down_port = Port(leaf as u8);
        // tidy: allow(no-unwrap) -- likewise, every spine downlink port is
        // wired at construction for in-range leaf indices.
        let down = self.switch_out[spine_sw.idx()][down_port.idx()].expect("spine downlink wired");
        [up, down]
    }

    /// How many distinct fixed routes exist from `src` to `dst`
    /// (one per spine for inter-leaf pairs, exactly one intra-leaf).
    pub fn route_choices(&self, src: HostId, dst: HostId) -> u16 {
        assert_ne!(src, dst, "no route from a host to itself");
        if self.leaf_of(src) == self.leaf_of(dst) {
            1
        } else {
            self.params.spines
        }
    }

    /// The minimal up/down route from `src` to `dst` through spine
    /// `choice` (ignored for intra-leaf pairs). `choice` must be less
    /// than [`FoldedClos::route_choices`].
    pub fn route(&self, src: HostId, dst: HostId, choice: u16) -> Route {
        assert_ne!(src, dst, "no route from a host to itself");
        let d = self.params.hosts_per_leaf as u32;
        let src_leaf = self.leaf_of(src);
        let dst_leaf = self.leaf_of(dst);
        let dst_port_at_leaf = Port((dst.0 % d) as u8);
        if src_leaf == dst_leaf {
            return Route::new(src, dst, vec![RouteHop { switch: src_leaf, out_port: dst_port_at_leaf }]);
        }
        assert!(
            choice < self.params.spines,
            "spine choice {choice} out of range (< {})",
            self.params.spines
        );
        let up_port = Port((d + choice as u32) as u8);
        let spine = self.spine(choice);
        let down_port = Port(dst_leaf.0 as u8);
        Route::new(
            src,
            dst,
            vec![
                RouteHop { switch: src_leaf, out_port: up_port },
                RouteHop { switch: spine, out_port: down_port },
                RouteHop { switch: dst_leaf, out_port: dst_port_at_leaf },
            ],
        )
    }

    /// All directed links a route traverses, including the host's
    /// injection link, in traversal order. This is what the admission
    /// controller charges bandwidth against.
    pub fn links_on_route(&self, route: &Route) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(route.len() + 1);
        out.push(self.host_up[route.src.idx()]);
        for i in 0..route.len() {
            // tidy: allow(no-unwrap) -- i ranges over 0..route.len().
            let hop = route.hop(i).expect("hop index in range");
            let end = self
                .switch_out_link(hop.switch, hop.out_port)
                // tidy: allow(no-unwrap) -- routes are built from this same
                // wiring table, so every hop port resolves to a link.
                .expect("route uses a wired port");
            out.push(end.link);
        }
        out
    }

    /// The links of candidate route `choice` from `src` to `dst`, written
    /// into `out` (cleared first) — identical to
    /// `links_on_route(&route(src, dst, choice))` but without building the
    /// intermediate [`Route`]. The admission controller scores every
    /// candidate spine per admitted flow; at thousands of flows the two
    /// heap allocations per candidate dominated network construction, so
    /// the scan works off a caller-owned scratch buffer and only the
    /// winning candidate is materialised as a `Route`.
    pub fn links_for_choice(&self, src: HostId, dst: HostId, choice: u16, out: &mut Vec<LinkId>) {
        assert_ne!(src, dst, "no route from a host to itself");
        out.clear();
        out.push(self.host_up[src.idx()]);
        let d = self.params.hosts_per_leaf as u32;
        let src_leaf = self.leaf_of(src);
        let dst_leaf = self.leaf_of(dst);
        let dst_port_at_leaf = Port((dst.0 % d) as u8);
        let link_of = |sw: SwitchId, p: Port| {
            // tidy: allow(no-unwrap) -- same wiring table the route
            // builder uses; every hop port below is wired at construction.
            self.switch_out_link(sw, p).expect("route uses a wired port").link
        };
        if src_leaf == dst_leaf {
            out.push(link_of(src_leaf, dst_port_at_leaf));
            return;
        }
        assert!(
            choice < self.params.spines,
            "spine choice {choice} out of range (< {})",
            self.params.spines
        );
        let spine = self.spine(choice);
        out.push(link_of(src_leaf, Port((d + choice as u32) as u8)));
        out.push(link_of(spine, Port(dst_leaf.0 as u8)));
        out.push(link_of(dst_leaf, dst_port_at_leaf));
    }

    /// Validate that `route` is structurally sound: starts at the source's
    /// leaf, each hop's link leads to the next hop's switch, and the final
    /// link delivers to `dst`. Used by tests and debug assertions.
    pub fn check_route(&self, route: &Route) -> Result<(), String> {
        let first = route.hop(0).ok_or("empty route")?;
        if first.switch != self.leaf_of(route.src) {
            return Err(format!(
                "route starts at {} but source {} attaches to {}",
                first.switch,
                route.src,
                self.leaf_of(route.src)
            ));
        }
        let mut at = first.switch;
        for i in 0..route.len() {
            // tidy: allow(no-unwrap) -- i ranges over 0..route.len().
            let hop = route.hop(i).unwrap();
            if hop.switch != at {
                return Err(format!("hop {i} expected at {at}, found {}", hop.switch));
            }
            let end = self
                .switch_out_link(hop.switch, hop.out_port)
                .ok_or_else(|| format!("hop {i}: port {:?} unwired", hop.out_port))?;
            match end.peer {
                NodeId::Switch(next) => {
                    if route.is_last_hop(i) {
                        return Err("route ends at a switch, not a host".into());
                    }
                    at = next;
                }
                NodeId::Host(h) => {
                    if !route.is_last_hop(i) {
                        return Err(format!("route reaches host {h} before its last hop"));
                    }
                    if h != route.dst {
                        return Err(format!("route delivers to {h}, expected {}", route.dst));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let p = ClosParams::paper();
        assert_eq!(p.n_hosts(), 128);
        assert_eq!(p.n_switches(), 24);
        assert_eq!(p.radix(), 16);
        let net = FoldedClos::build(p);
        // 2 directed links per host cable + 2 per leaf-spine cable.
        assert_eq!(net.n_links(), 2 * 128 + 2 * 16 * 8);
        // Leaves have 16 ports (8 down + 8 up); spines have 16 (one per leaf).
        assert_eq!(net.switch_ports(SwitchId(0)), 16);
        assert_eq!(net.switch_ports(SwitchId(16)), 16);
    }

    #[test]
    fn scaled_instances() {
        assert_eq!(ClosParams::scaled(8).n_switches(), 1);
        let p = ClosParams::scaled(32);
        assert_eq!(p.leaves, 4);
        assert_eq!(p.spines, 8);
        assert_eq!(p.n_hosts(), 32);
        FoldedClos::build(p); // must not panic
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn scaled_rejects_bad_host_count() {
        ClosParams::scaled(12);
    }

    #[test]
    fn intra_leaf_route_is_single_hop() {
        let net = FoldedClos::build(ClosParams::paper());
        let r = net.route(HostId(1), HostId(5), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.hop(0).unwrap().switch, SwitchId(0));
        assert_eq!(r.hop(0).unwrap().out_port, Port(5));
        net.check_route(&r).unwrap();
        assert_eq!(net.route_choices(HostId(1), HostId(5)), 1);
    }

    #[test]
    fn inter_leaf_route_goes_up_and_down() {
        let net = FoldedClos::build(ClosParams::paper());
        let r = net.route(HostId(0), HostId(127), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.hop(0).unwrap().switch, SwitchId(0)); // leaf 0
        assert_eq!(r.hop(0).unwrap().out_port, Port(8 + 3)); // up to spine 3
        assert_eq!(r.hop(1).unwrap().switch, SwitchId(16 + 3)); // spine 3
        assert_eq!(r.hop(1).unwrap().out_port, Port(15)); // down to leaf 15
        assert_eq!(r.hop(2).unwrap().switch, SwitchId(15)); // leaf 15
        assert_eq!(r.hop(2).unwrap().out_port, Port(7)); // host 127
        net.check_route(&r).unwrap();
        assert_eq!(net.route_choices(HostId(0), HostId(127)), 8);
    }

    #[test]
    fn links_on_route_are_consecutive() {
        let net = FoldedClos::build(ClosParams::paper());
        let r = net.route(HostId(0), HostId(127), 0);
        let links = net.links_on_route(&r);
        assert_eq!(links.len(), 4); // inject + up + down + deliver
        // All distinct.
        let mut sorted = links.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), links.len());
        // The last link is the destination's delivery link.
        assert_eq!(*links.last().unwrap(), net.host_delivery_link(HostId(127)));
    }

    #[test]
    fn switch_links_cover_both_directions() {
        let net = FoldedClos::build(ClosParams::paper());
        // A spine touches 16 leaves × 2 directions.
        let spine_links = net.switch_links(net.spine(3));
        assert_eq!(spine_links.len(), 32);
        // A leaf touches 8 hosts × 2 + 8 spines × 2.
        let leaf_links = net.switch_links(SwitchId(0));
        assert_eq!(leaf_links.len(), 32);
        // The leaf-spine pair helper returns one link from each side's set.
        let [up, down] = net.leaf_spine_links(0, 3);
        assert!(leaf_links.contains(&up) && leaf_links.contains(&down));
        assert!(spine_links.contains(&up) && spine_links.contains(&down));
        assert_ne!(up, down);
        // And they are exactly the middle links of a route via spine 3.
        let r = net.route(HostId(0), HostId(127), 3);
        let on_route = net.links_on_route(&r);
        assert_eq!(on_route[1], up);
    }

    #[test]
    fn single_switch_network() {
        let net = FoldedClos::build(ClosParams::single_switch(4));
        assert_eq!(net.n_switches(), 1);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                let r = net.route(HostId(a), HostId(b), 0);
                assert_eq!(r.len(), 1);
                net.check_route(&r).unwrap();
            }
        }
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_route_panics() {
        let net = FoldedClos::build(ClosParams::paper());
        net.route(HostId(3), HostId(3), 0);
    }

    #[test]
    fn every_port_wired_exactly_once() {
        let net = FoldedClos::build(ClosParams::paper());
        // Every switch port must have exactly one outgoing link, and every
        // directed link must appear exactly once as some port's out-link.
        let mut seen = vec![0u32; net.n_links() as usize];
        for sw in 0..net.n_switches() {
            let sw = SwitchId(sw);
            for p in 0..net.switch_ports(sw) {
                let end = net.switch_out_link(sw, Port(p)).expect("port wired");
                seen[end.link.idx()] += 1;
            }
        }
        for h in 0..net.n_hosts() {
            seen[net.host_out_link(HostId(h)).link.idx()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "each directed link has one transmitter");
    }

    #[test]
    fn no_down_up_turns_in_routes() {
        // Deadlock freedom: once a route goes down (towards leaves/hosts)
        // it never goes up again. Structurally: inter-leaf routes are
        // leaf→spine→leaf→host; intra-leaf are leaf→host.
        let net = FoldedClos::build(ClosParams::paper());
        for (src, dst) in [(0u32, 127u32), (0, 8), (5, 2), (120, 7)] {
            for c in 0..net.route_choices(HostId(src), HostId(dst)) {
                let r = net.route(HostId(src), HostId(dst), c);
                let mut descending = false;
                for i in 0..r.len() {
                    let hop = r.hop(i).unwrap();
                    let going_up =
                        net.is_leaf(hop.switch) && hop.out_port.idx() >= net.params().hosts_per_leaf as usize;
                    if going_up {
                        assert!(!descending, "route turned down then up");
                    } else {
                        descending = true;
                    }
                }
            }
        }
    }

    /// Dependency-free port of the property suite: random (src, dst,
    /// choice) triples across all scaled networks yield structurally
    /// valid, minimal routes; distinct spine choices are link-disjoint.
    #[test]
    fn randomized_routes_valid_and_spine_disjoint() {
        use dqos_sim_core::SimRng;
        let mut rng = SimRng::new(0xC105);
        let nets: Vec<FoldedClos> = [8u16, 16, 32, 64, 128]
            .iter()
            .map(|&h| FoldedClos::build(ClosParams::scaled(h)))
            .collect();
        for case in 0..500 {
            let net = &nets[case % nets.len()];
            let n = net.n_hosts();
            let src = HostId(rng.index(n as usize) as u32);
            let dst = HostId(rng.index(n as usize) as u32);
            if src == dst {
                continue;
            }
            let choices = net.route_choices(src, dst);
            let choice = (rng.index(8) as u16) % choices;
            let r = net.route(src, dst, choice);
            assert!(net.check_route(&r).is_ok());
            // Minimality: 1 hop intra-leaf, 3 hops inter-leaf.
            if net.leaf_of(src) == net.leaf_of(dst) {
                assert_eq!(r.len(), 1);
            } else {
                assert_eq!(r.len(), 3);
                // Different spine choices give link-disjoint middles;
                // injection and delivery links are shared.
                let a = net.links_on_route(&net.route(src, dst, 0));
                let b = net.links_on_route(&net.route(src, dst, 1));
                assert_eq!(a[0], b[0]);
                assert_eq!(a[3], b[3]);
                assert_ne!(a[1], b[1]);
                assert_ne!(a[2], b[2]);
            }
            // Link list length matches hop count + injection.
            assert_eq!(net.links_on_route(&r).len(), r.len() + 1);
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any (src, dst, choice) triple yields a structurally valid,
            /// minimal route in any scaled network.
            #[test]
            fn prop_routes_valid(
                hosts in prop::sample::select(vec![8u16, 16, 32, 64, 128]),
                src in 0u32..128,
                dst in 0u32..128,
                choice in 0u16..8,
            ) {
                let params = ClosParams::scaled(hosts);
                let net = FoldedClos::build(params);
                let n = net.n_hosts();
                let (src, dst) = (HostId(src % n), HostId(dst % n));
                prop_assume!(src != dst);
                let choices = net.route_choices(src, dst);
                let r = net.route(src, dst, choice % choices);
                prop_assert!(net.check_route(&r).is_ok());
                // Minimality: 1 hop intra-leaf, 3 hops inter-leaf.
                if net.leaf_of(src) == net.leaf_of(dst) {
                    prop_assert_eq!(r.len(), 1);
                } else {
                    prop_assert_eq!(r.len(), 3);
                }
                // Link list length matches hop count + injection.
                prop_assert_eq!(net.links_on_route(&r).len(), r.len() + 1);
            }

            /// Different spine choices give link-disjoint middles.
            #[test]
            fn prop_spine_choices_disjoint(src in 0u32..128, dst in 0u32..128) {
                let net = FoldedClos::build(ClosParams::paper());
                let (src, dst) = (HostId(src), HostId(dst));
                prop_assume!(src != dst);
                prop_assume!(net.leaf_of(src) != net.leaf_of(dst));
                let a = net.links_on_route(&net.route(src, dst, 0));
                let b = net.links_on_route(&net.route(src, dst, 1));
                // First (injection) and last (delivery) links shared; the
                // spine transit links differ.
                prop_assert_eq!(a[0], b[0]);
                prop_assert_eq!(a[3], b[3]);
                prop_assert_ne!(a[1], b[1]);
                prop_assert_ne!(a[2], b[2]);
            }
        }
    }
}
