//! # dqos-topology
//!
//! Network topologies for the deadline-QoS simulator.
//!
//! The paper evaluates a *butterfly multi-stage interconnection network
//! (MIN) with 128 endpoints*, concretely a **folded (bidirectional)
//! perfect-shuffle** built from 16-port switches. For 128 endpoints and
//! radix-16 switches the standard realisation is a two-stage folded Clos:
//! 16 leaf switches (8 host ports + 8 uplinks each) fully connected to
//! 8 spine switches (16 downlinks each). [`FoldedClos`] builds that
//! network — and any other two-stage instance — and provides:
//!
//! * deterministic node/port/link identifiers ([`ids`]),
//! * minimal **up/down routes** between any host pair, one candidate per
//!   spine ([`FoldedClos::route`]), which is what the paper's fixed,
//!   admission-assigned routing needs,
//! * link enumeration along a route for the admission controller's
//!   bandwidth ledger.
//!
//! Up/down routing in a folded Clos is deadlock-free (no cyclic channel
//! dependencies: every route ascends zero or more times, turns once, and
//! then only descends), which the tests check structurally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clos;
pub mod ids;
pub mod route;

pub use clos::{ClosParams, FoldedClos, LinkEnd};
pub use ids::{HostId, LinkId, NodeId, Port, SwitchId};
pub use route::{PortPath, Route, RouteHop, MAX_ROUTE_HOPS};
