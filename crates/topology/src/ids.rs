//! Identifier newtypes for nodes, ports and links.
//!
//! Everything is a small dense integer so simulator state can live in
//! flat `Vec`s indexed by id.

use std::fmt;

/// An end host (network endpoint). Dense in `0..n_hosts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// A switch. Dense in `0..n_switches`; leaves come before spines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// A port number local to one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u8);

/// A **directed** link (one direction of a cable). Dense in `0..n_links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Either kind of node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// An end host.
    Host(HostId),
    /// A switch.
    Switch(SwitchId),
}

impl HostId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Port {
    /// The port as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => h.fmt(f),
            NodeId::Switch(s) => s.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(HostId(3).to_string(), "H3");
        assert_eq!(SwitchId(7).to_string(), "S7");
        assert_eq!(NodeId::Host(HostId(0)).to_string(), "H0");
        assert_eq!(NodeId::Switch(SwitchId(1)).to_string(), "S1");
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(HostId(5).idx(), 5);
        assert_eq!(Port(9).idx(), 9);
        assert_eq!(LinkId(11).idx(), 11);
        assert_eq!(SwitchId(2).idx(), 2);
    }
}
