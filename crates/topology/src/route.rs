//! Fixed routes through the network.
//!
//! The paper mandates *fixed routing*: the admission controller assigns
//! each flow one route at setup and every packet of the flow follows it
//! (this is what makes head-of-queue deadline scheduling sound, and it
//! avoids the out-of-order delivery adaptive routing would cause). A
//! [`Route`] is the per-switch output-port list a packet consults with its
//! hop index; it is stored behind an `Arc` so cloning a packet is cheap.

use crate::ids::{HostId, Port, SwitchId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One hop of a route: the switch the packet is at and the output port it
/// must take there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteHop {
    /// The switch this hop traverses.
    pub switch: SwitchId,
    /// The output port to take at that switch.
    pub out_port: Port,
}

/// A complete, fixed source route from one host to another.
///
/// `hops[0]` is the first switch after the source host's injection link;
/// the final hop's output port leads to the destination host.
/// (Not serialisable: routes are rebuilt from topology + choice index.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Per-switch hops, in traversal order.
    pub hops: Arc<[RouteHop]>,
}

impl Route {
    /// Create a route from its parts.
    pub fn new(src: HostId, dst: HostId, hops: Vec<RouteHop>) -> Self {
        debug_assert!(!hops.is_empty(), "a route must traverse at least one switch");
        Route { src, dst, hops: hops.into() }
    }

    /// Number of switch hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if the route has no hops (never constructed by this crate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hop at `idx`, if any.
    #[inline]
    pub fn hop(&self, idx: usize) -> Option<RouteHop> {
        self.hops.get(idx).copied()
    }

    /// Whether `idx` is the final switch (its output port reaches the
    /// destination host).
    #[inline]
    pub fn is_last_hop(&self, idx: usize) -> bool {
        idx + 1 == self.hops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(s: u32, p: u8) -> RouteHop {
        RouteHop { switch: SwitchId(s), out_port: Port(p) }
    }

    #[test]
    fn accessors() {
        let r = Route::new(HostId(0), HostId(9), vec![hop(0, 8), hop(16, 1), hop(1, 1)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.hop(0), Some(hop(0, 8)));
        assert_eq!(r.hop(2), Some(hop(1, 1)));
        assert_eq!(r.hop(3), None);
        assert!(!r.is_last_hop(0));
        assert!(r.is_last_hop(2));
    }

    #[test]
    fn clone_shares_hops() {
        let r = Route::new(HostId(0), HostId(1), vec![hop(0, 1)]);
        let r2 = r.clone();
        assert!(Arc::ptr_eq(&r.hops, &r2.hops));
    }
}
