//! Fixed routes through the network.
//!
//! The paper mandates *fixed routing*: the admission controller assigns
//! each flow one route at setup and every packet of the flow follows it
//! (this is what makes head-of-queue deadline scheduling sound, and it
//! avoids the out-of-order delivery adaptive routing would cause). A
//! [`Route`] is the per-switch output-port list a packet consults with its
//! hop index; it is stored behind an `Arc` so cloning a packet is cheap.

use crate::ids::{HostId, Port, SwitchId};
use std::sync::Arc;

/// One hop of a route: the switch the packet is at and the output port it
/// must take there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// The switch this hop traverses.
    pub switch: SwitchId,
    /// The output port to take at that switch.
    pub out_port: Port,
}

/// A complete, fixed source route from one host to another.
///
/// `hops[0]` is the first switch after the source host's injection link;
/// the final hop's output port leads to the destination host.
/// (Not serialisable: routes are rebuilt from topology + choice index.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Per-switch hops, in traversal order.
    pub hops: Arc<[RouteHop]>,
}

impl Route {
    /// Create a route from its parts.
    pub fn new(src: HostId, dst: HostId, hops: Vec<RouteHop>) -> Self {
        debug_assert!(!hops.is_empty(), "a route must traverse at least one switch");
        Route { src, dst, hops: hops.into() }
    }

    /// Number of switch hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if the route has no hops (never constructed by this crate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hop at `idx`, if any.
    #[inline]
    pub fn hop(&self, idx: usize) -> Option<RouteHop> {
        self.hops.get(idx).copied()
    }

    /// Whether `idx` is the final switch (its output port reaches the
    /// destination host).
    #[inline]
    pub fn is_last_hop(&self, idx: usize) -> bool {
        idx + 1 == self.hops.len()
    }

    /// The interned, `Copy` output-port list packets carry (see
    /// [`PortPath`]).
    #[inline]
    pub fn port_path(&self) -> PortPath {
        let mut ports = [Port(0); MAX_ROUTE_HOPS];
        assert!(
            self.hops.len() <= MAX_ROUTE_HOPS,
            "route exceeds MAX_ROUTE_HOPS ({} hops)",
            self.hops.len()
        );
        for (slot, hop) in ports.iter_mut().zip(self.hops.iter()) {
            *slot = hop.out_port;
        }
        PortPath { ports, len: self.hops.len() as u8 }
    }
}

/// Upper bound on switch hops in a [`PortPath`]. Minimal routes in a
/// folded Clos take 1 hop (intra-leaf) or 3 (leaf → spine → leaf); 4
/// leaves headroom for a deeper fabric without changing the header size.
pub const MAX_ROUTE_HOPS: usize = 4;

/// The route as packets carry it: just the output-port sequence, inline
/// and `Copy`.
///
/// A full [`Route`] names the switches it traverses, which admission and
/// topology validation need, but a packet in flight only ever consults
/// *which output port to take at the current hop*. Interning the route
/// into this fixed-size array once per flow removes the per-packet
/// `Route` clone (and the `Arc` traffic that came with it) from the hot
/// forwarding path, and is what makes the packet struct plain old data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPath {
    ports: [Port; MAX_ROUTE_HOPS],
    len: u8,
}

impl PortPath {
    /// Intern an explicit port list (mostly for tests; flows intern via
    /// [`Route::port_path`]).
    pub fn new(ports: &[Port]) -> Self {
        assert!(!ports.is_empty(), "a route must traverse at least one switch");
        assert!(ports.len() <= MAX_ROUTE_HOPS, "route exceeds MAX_ROUTE_HOPS");
        let mut arr = [Port(0); MAX_ROUTE_HOPS];
        arr[..ports.len()].copy_from_slice(ports);
        PortPath { ports: arr, len: ports.len() as u8 }
    }

    /// Number of switch hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the path has no hops (never constructed by this crate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The output port at hop `idx`, if any.
    #[inline]
    pub fn port(&self, idx: usize) -> Option<Port> {
        if idx < self.len as usize {
            Some(self.ports[idx])
        } else {
            None
        }
    }

    /// Whether `idx` is the final switch (its output port reaches the
    /// destination host).
    #[inline]
    pub fn is_last_hop(&self, idx: usize) -> bool {
        idx + 1 == self.len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(s: u32, p: u8) -> RouteHop {
        RouteHop { switch: SwitchId(s), out_port: Port(p) }
    }

    #[test]
    fn accessors() {
        let r = Route::new(HostId(0), HostId(9), vec![hop(0, 8), hop(16, 1), hop(1, 1)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.hop(0), Some(hop(0, 8)));
        assert_eq!(r.hop(2), Some(hop(1, 1)));
        assert_eq!(r.hop(3), None);
        assert!(!r.is_last_hop(0));
        assert!(r.is_last_hop(2));
    }

    #[test]
    fn clone_shares_hops() {
        let r = Route::new(HostId(0), HostId(1), vec![hop(0, 1)]);
        let r2 = r.clone();
        assert!(Arc::ptr_eq(&r.hops, &r2.hops));
    }

    #[test]
    fn port_path_mirrors_route() {
        let r = Route::new(HostId(0), HostId(9), vec![hop(0, 8), hop(16, 1), hop(1, 3)]);
        let p = r.port_path();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.port(0), Some(Port(8)));
        assert_eq!(p.port(1), Some(Port(1)));
        assert_eq!(p.port(2), Some(Port(3)));
        assert_eq!(p.port(3), None);
        assert!(!p.is_last_hop(1));
        assert!(p.is_last_hop(2));
    }

    #[test]
    fn port_path_from_explicit_ports() {
        let p = PortPath::new(&[Port(5)]);
        assert_eq!(p.len(), 1);
        assert!(p.is_last_hop(0));
        assert_eq!(p.port(0), Some(Port(5)));
    }
}
