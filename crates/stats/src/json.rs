//! A minimal JSON value, writer and parser.
//!
//! The offline tier-1 build carries no external crates, so the report
//! serialisation that previously went through `serde_json` is done with
//! this module instead. It supports exactly what the reports need:
//!
//! * integers up to `i128` (histogram counters are `u64`/`u128` and must
//!   roundtrip exactly — `f64` would silently lose precision),
//! * `f64` via Rust's shortest-roundtrip `Display`/`FromStr`,
//! * strings with the standard escapes,
//! * arrays and insertion-ordered objects.

use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; never goes through `f64`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The integer value as `u64`, if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|v| u64::try_from(v).ok())
    }

    /// The integer value as `u128`, if non-negative.
    pub fn as_u128(&self) -> Option<u128> {
        self.as_i128().and_then(|v| u128::try_from(v).ok())
    }

    /// The numeric value as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Render as compact single-line JSON.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Render as pretty JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Rejects trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip; add ".0" so the
        // parser keeps treating it as a float.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; reports never produce them, but don't emit
        // invalid documents if one slips through.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = vec![];
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = vec![];
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                // tidy: allow(no-unwrap) -- the bytes come from a &str and
                // the walk above stops on a scalar boundary, so this slice
                // is valid UTF-8 by construction.
                s.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf8"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
    } else {
        text.parse::<i128>().map(Json::Int).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Int(u64::MAX as i128 * 12345),
            Json::Float(0.5),
            Json::Float(-1.25e-9),
            Json::Float(1.0),
            Json::Str("hello \"world\"\n\t\\ ünïcode".into()),
        ] {
            let parsed = Json::parse(&v.to_string_pretty()).unwrap();
            assert_eq!(parsed, v, "pretty roundtrip");
            let parsed = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(parsed, v, "compact roundtrip");
        }
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        // Shortest-roundtrip display: bit-exact through text.
        for v in [std::f64::consts::PI, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE] {
            let j = Json::Float(v);
            let back = Json::parse(&j.to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let doc = Json::obj(vec![
            ("name", Json::Str("x".into())),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Null])),
            (
                "inner",
                Json::obj(vec![("empty_arr", Json::Arr(vec![])), ("empty_obj", Json::Obj(vec![]))]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Field order is preserved.
        assert!(text.find("\"name\"").unwrap() < text.find("\"items\"").unwrap());
    }

    #[test]
    fn object_lookup() {
        let doc = Json::obj(vec![("a", Json::Int(1)), ("b", Json::Bool(true))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert!(doc.get("c").is_none());
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let doc = Json::parse(
            " {\r\n \"k\" :\t[ 1 , 2.5e3 , \"a\\u0041\\/b\" , true ] } ",
        )
        .unwrap();
        let arr = doc.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1], Json::Float(2500.0));
        assert_eq!(arr[2], Json::Str("aA/b".into()));
        assert_eq!(arr[3], Json::Bool(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"abc", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
