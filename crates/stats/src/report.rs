//! Per-class aggregation and rendering.
//!
//! [`ClassStats`] collects everything §5 reports for one traffic class;
//! [`Report`] groups the four classes of one simulation run and renders
//! the rows the figure benches print (plain text aligned columns, or
//! JSON via the in-tree [`crate::json`] module for post-processing).

use crate::hist::LogHistogram;
use crate::jitter::JitterTracker;
use crate::json::Json;
use crate::meter::ThroughputMeter;
use dqos_sim_core::SimTime;
use std::fmt::Write as _;

/// Everything measured for one traffic class during one run.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Class label ("Control", "Multimedia", ...).
    pub name: String,
    /// Per-packet network latency histogram (inject → deliver), ns.
    pub packet_latency: LogHistogram,
    /// Per-message latency histogram (message handed to NIC → last part
    /// delivered), ns. For multimedia this is the *frame* latency that
    /// Figure 3 plots.
    pub message_latency: LogHistogram,
    /// Delivered-traffic meter.
    pub delivered: ThroughputMeter,
    /// Offered-traffic meter (what the generators produced).
    pub offered: ThroughputMeter,
    /// Message-level jitter aggregate.
    pub jitter: JitterTracker,
}

impl ClassStats {
    /// A fresh, named stats block.
    pub fn new(name: impl Into<String>) -> Self {
        ClassStats { name: name.into(), ..Default::default() }
    }

    /// Merge another block (e.g. from a parallel replica).
    pub fn merge(&mut self, other: &ClassStats) {
        self.packet_latency.merge(&other.packet_latency);
        self.message_latency.merge(&other.message_latency);
        self.delivered.merge(&other.delivered);
        self.offered.merge(&other.offered);
        self.jitter.merge(&other.jitter);
    }

    /// Serialise to a JSON tree.
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("packet_latency", self.packet_latency.to_json()),
            ("message_latency", self.message_latency.to_json()),
            ("delivered", self.delivered.to_json()),
            ("offered", self.offered.to_json()),
            ("jitter", self.jitter.to_json()),
        ])
    }

    /// Rebuild from [`ClassStats::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Option<Self> {
        Some(ClassStats {
            name: j.get("name")?.as_str()?.to_string(),
            packet_latency: LogHistogram::from_json(j.get("packet_latency")?)?,
            message_latency: LogHistogram::from_json(j.get("message_latency")?)?,
            delivered: ThroughputMeter::from_json(j.get("delivered")?)?,
            offered: ThroughputMeter::from_json(j.get("offered")?)?,
            jitter: JitterTracker::from_json(j.get("jitter")?)?,
        })
    }
}

/// Per-class loss accounting for a fault-injected run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultClassLoss {
    /// Class label ("Control", "Multimedia", ...).
    pub class: String,
    /// Packets dropped on a failed or lossy link.
    pub dropped: u64,
    /// Packets delivered with a corrupted payload (discarded at the
    /// destination, like a CRC failure).
    pub corrupted: u64,
    /// Regulated packets delivered after their deadline (only counted
    /// for deadline-scheduled architectures).
    pub deadline_miss: u64,
}

impl FaultClassLoss {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("class", Json::Str(self.class.clone())),
            ("dropped", Json::Int(self.dropped as i128)),
            ("corrupted", Json::Int(self.corrupted as i128)),
            ("deadline_miss", Json::Int(self.deadline_miss as i128)),
        ])
    }

    fn from_json_value(j: &Json) -> Option<Self> {
        Some(FaultClassLoss {
            class: j.get("class")?.as_str()?.to_string(),
            dropped: j.get("dropped")?.as_u64()?,
            corrupted: j.get("corrupted")?.as_u64()?,
            deadline_miss: j.get("deadline_miss")?.as_u64()?,
        })
    }
}

/// Fault-injection outcome attached to a run report: what was lost and
/// how admission reacted. Present only when a fault plan was active.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Per-class losses, Table-1 order (classes with no losses included).
    pub classes: Vec<FaultClassLoss>,
    /// Flow-control credits destroyed in flight.
    pub credits_lost: u64,
    /// Regulated flows successfully moved to a surviving path.
    pub reroutes: u32,
    /// Regulated flows that no longer fit anywhere and lost their
    /// reservation (they keep flowing unregulated).
    pub reroute_rejections: u32,
    /// Previously rejected flows re-admitted after a repair.
    pub readmissions: u32,
}

impl FaultReport {
    /// Look up a class block by name.
    pub fn class(&self, name: &str) -> Option<&FaultClassLoss> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Total packets dropped across classes.
    pub fn total_dropped(&self) -> u64 {
        self.classes.iter().map(|c| c.dropped).sum()
    }

    /// Total packets corrupted across classes.
    pub fn total_corrupted(&self) -> u64 {
        self.classes.iter().map(|c| c.corrupted).sum()
    }

    /// Serialise to a JSON tree.
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("classes", Json::Arr(self.classes.iter().map(FaultClassLoss::to_json_value).collect())),
            ("credits_lost", Json::Int(self.credits_lost as i128)),
            ("reroutes", Json::Int(self.reroutes as i128)),
            ("reroute_rejections", Json::Int(self.reroute_rejections as i128)),
            ("readmissions", Json::Int(self.readmissions as i128)),
        ])
    }

    /// Rebuild from [`FaultReport::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Option<Self> {
        Some(FaultReport {
            classes: j
                .get("classes")?
                .as_arr()?
                .iter()
                .map(FaultClassLoss::from_json_value)
                .collect::<Option<Vec<_>>>()?,
            credits_lost: j.get("credits_lost")?.as_u64()?,
            reroutes: j.get("reroutes")?.as_u64()? as u32,
            reroute_rejections: j.get("reroute_rejections")?.as_u64()? as u32,
            readmissions: j.get("readmissions")?.as_u64()? as u32,
        })
    }
}

/// Ticks attributed to one pipeline stage (flight-recorder rollup).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSlack {
    /// Stage label ("pacing", "vc_arbitration", ...). Labels come from
    /// the tracing layer; this crate treats them as opaque.
    pub stage: String,
    /// Nanoseconds spent in the stage, summed over missed packets.
    pub ns: u64,
}

/// Per-class slack attribution from a traced run: where the lost slack
/// of deadline-missing packets went. Stage sums cover missed packets
/// only, and satisfy `Σ stages - initial_slack_ns == miss_ns` exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceClassSlack {
    /// Class label ("Control", "Multimedia", ...).
    pub class: String,
    /// Packets of this class delivered intact (on time or late).
    pub delivered: u64,
    /// Delivered past their deadline (with a complete event journey).
    pub missed: u64,
    /// Σ (delivered − deadline) over missed packets, ns.
    pub miss_ns: u64,
    /// Σ (deadline − stamped) over missed packets, ns (may be negative
    /// under extreme clock skew).
    pub initial_slack_ns: i64,
    /// Per-stage attribution, fixed stage order.
    pub stages: Vec<StageSlack>,
}

impl TraceClassSlack {
    /// Total attributed nanoseconds across stages.
    pub fn stage_total_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }
}

/// Flight-recorder outcome attached to a run report. Present only when
/// tracing was enabled; the simulation results themselves are identical
/// with or without it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Events kept in the merged trace.
    pub events: u64,
    /// Events recorded but evicted by the ring capacity.
    pub dropped_events: u64,
    /// Deadline-missing deliveries whose journey was truncated by the
    /// ring (counted, not attributed).
    pub incomplete: u64,
    /// Per-class slack attribution, Table-1 order.
    pub classes: Vec<TraceClassSlack>,
}

impl TraceReport {
    /// Look up a class block by name.
    pub fn class(&self, name: &str) -> Option<&TraceClassSlack> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// Total missed packets attributed across classes.
    pub fn total_missed(&self) -> u64 {
        self.classes.iter().map(|c| c.missed).sum()
    }

    /// Serialise to a JSON tree.
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("events", Json::Int(self.events as i128)),
            ("dropped_events", Json::Int(self.dropped_events as i128)),
            ("incomplete", Json::Int(self.incomplete as i128)),
            (
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("class", Json::Str(c.class.clone())),
                                ("delivered", Json::Int(c.delivered as i128)),
                                ("missed", Json::Int(c.missed as i128)),
                                ("miss_ns", Json::Int(c.miss_ns as i128)),
                                ("initial_slack_ns", Json::Int(c.initial_slack_ns as i128)),
                                (
                                    "stages",
                                    Json::Arr(
                                        c.stages
                                            .iter()
                                            .map(|s| {
                                                Json::obj(vec![
                                                    ("stage", Json::Str(s.stage.clone())),
                                                    ("ns", Json::Int(s.ns as i128)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild from [`TraceReport::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Option<Self> {
        Some(TraceReport {
            events: j.get("events")?.as_u64()?,
            dropped_events: j.get("dropped_events")?.as_u64()?,
            incomplete: j.get("incomplete")?.as_u64()?,
            classes: j
                .get("classes")?
                .as_arr()?
                .iter()
                .map(|c| {
                    Some(TraceClassSlack {
                        class: c.get("class")?.as_str()?.to_string(),
                        delivered: c.get("delivered")?.as_u64()?,
                        missed: c.get("missed")?.as_u64()?,
                        miss_ns: c.get("miss_ns")?.as_u64()?,
                        initial_slack_ns: c.get("initial_slack_ns")?.as_i128()? as i64,
                        stages: c
                            .get("stages")?
                            .as_arr()?
                            .iter()
                            .map(|s| {
                                Some(StageSlack {
                                    stage: s.get("stage")?.as_str()?.to_string(),
                                    ns: s.get("ns")?.as_u64()?,
                                })
                            })
                            .collect::<Option<Vec<_>>>()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// One simulation run's results: the architecture, the load point, the
/// measurement window, and a stats block per class.
#[derive(Debug, Clone)]
pub struct Report {
    /// Architecture label (paper figure legend).
    pub architecture: String,
    /// Offered load as a fraction of link capacity (0.1 ..= 1.0).
    pub load: f64,
    /// Measurement window start.
    pub window_start: SimTime,
    /// Measurement window end.
    pub window_end: SimTime,
    /// Per-class statistics, Table-1 order.
    pub classes: Vec<ClassStats>,
    /// Fault-injection outcome; `None` for fault-free runs (the JSON
    /// rendering omits the key entirely, keeping fault-free output
    /// byte-identical to pre-fault builds).
    pub faults: Option<FaultReport>,
    /// Flight-recorder outcome; `None` for untraced runs (same key
    /// omission contract as [`Report::faults`], so untraced output is
    /// byte-identical to pre-trace builds).
    pub trace: Option<TraceReport>,
}

impl Report {
    /// Look up a class block by name.
    pub fn class(&self, name: &str) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Render an aligned text table, one row per class: throughput,
    /// mean/p99/max packet latency, mean message latency, jitter.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# {} @ load {:.0}%  (window {} .. {})",
            self.architecture,
            self.load * 100.0,
            self.window_start,
            self.window_end
        );
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "class", "thru Gb/s", "offer Gb/s", "pkt avg us", "pkt p99 us", "pkt max us", "msg avg ms", "jitter us"
        );
        for c in &self.classes {
            let thru = c.delivered.throughput(self.window_start, self.window_end);
            let offer = c.offered.throughput(self.window_start, self.window_end);
            let _ = writeln!(
                s,
                "{:<12} {:>10.3} {:>10.3} {:>12.2} {:>12.2} {:>12.2} {:>12.3} {:>12.2}",
                c.name,
                thru.as_gbps_f64(),
                offer.as_gbps_f64(),
                c.packet_latency.mean() / 1e3,
                c.packet_latency.quantile(0.99) as f64 / 1e3,
                c.packet_latency.max() as f64 / 1e3,
                c.message_latency.mean() / 1e6,
                c.jitter.mean_abs_delta() / 1e3,
            );
        }
        if let Some(f) = &self.faults {
            let _ = writeln!(
                s,
                "# faults: dropped {} corrupted {} credits_lost {} reroutes {} rejections {} readmissions {}",
                f.total_dropped(),
                f.total_corrupted(),
                f.credits_lost,
                f.reroutes,
                f.reroute_rejections,
                f.readmissions
            );
            for c in &f.classes {
                if c.dropped != 0 || c.corrupted != 0 || c.deadline_miss != 0 {
                    let _ = writeln!(
                        s,
                        "#   {:<12} dropped {:>8} corrupted {:>8} deadline_miss {:>8}",
                        c.class, c.dropped, c.corrupted, c.deadline_miss
                    );
                }
            }
        }
        if let Some(t) = &self.trace {
            let _ = writeln!(
                s,
                "# trace: events {} dropped {} incomplete {} missed {}",
                t.events,
                t.dropped_events,
                t.incomplete,
                t.total_missed()
            );
            for c in &t.classes {
                if c.missed == 0 {
                    continue;
                }
                let mut row = format!(
                    "#   {:<12} missed {:>8} miss_us {:>10.1}",
                    c.class,
                    c.missed,
                    c.miss_ns as f64 / 1e3
                );
                for st in &c.stages {
                    if st.ns != 0 {
                        let _ = write!(row, " {} {:.1}us", st.stage, st.ns as f64 / 1e3);
                    }
                }
                let _ = writeln!(s, "{row}");
            }
        }
        s
    }

    /// Serialise to pretty JSON (via the in-tree [`crate::json`] module;
    /// the offline build carries no serde).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Serialise to a JSON tree.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("architecture", Json::Str(self.architecture.clone())),
            ("load", Json::Float(self.load)),
            ("window_start_ns", Json::Int(self.window_start.as_ns() as i128)),
            ("window_end_ns", Json::Int(self.window_end.as_ns() as i128)),
            ("classes", Json::Arr(self.classes.iter().map(ClassStats::to_json_value).collect())),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json_value()));
        }
        if let Some(t) = &self.trace {
            fields.push(("trace", t.to_json_value()));
        }
        Json::obj(fields)
    }

    /// Parse a report previously rendered by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, String> {
        let j = Json::parse(text)?;
        Self::from_json_value(&j).ok_or_else(|| "malformed report document".to_string())
    }

    /// Rebuild from [`Report::to_json_value`] output.
    pub fn from_json_value(j: &Json) -> Option<Report> {
        Some(Report {
            architecture: j.get("architecture")?.as_str()?.to_string(),
            load: j.get("load")?.as_f64()?,
            window_start: SimTime::from_ns(j.get("window_start_ns")?.as_u64()?),
            window_end: SimTime::from_ns(j.get("window_end_ns")?.as_u64()?),
            classes: j
                .get("classes")?
                .as_arr()?
                .iter()
                .map(ClassStats::from_json_value)
                .collect::<Option<Vec<_>>>()?,
            faults: match j.get("faults") {
                Some(f) => Some(FaultReport::from_json_value(f)?),
                None => None,
            },
            trace: match j.get("trace") {
                Some(t) => Some(TraceReport::from_json_value(t)?),
                None => None,
            },
        })
    }
}

/// Render a CDF as two-column text (`value fraction`), the format of the
/// paper's CDF plots.
pub fn cdf_to_text(hist: &LogHistogram, unit_div: f64, unit: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# latency_{unit} cumulative_fraction");
    for (v, f) in hist.cdf() {
        let _ = writeln!(s, "{:.3} {:.6}", v as f64 / unit_div, f);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut control = ClassStats::new("Control");
        for i in 0..100u64 {
            control.packet_latency.record(5_000 + i * 10);
            control.delivered.record_packet(1024);
            control.offered.record_packet(1024);
        }
        let mut video = ClassStats::new("Multimedia");
        for _ in 0..10 {
            video.message_latency.record(10_000_000);
            video.jitter.record(10_000_000);
        }
        Report {
            architecture: "Advanced 2 VCs".into(),
            load: 1.0,
            window_start: SimTime::from_ms(10),
            window_end: SimTime::from_ms(20),
            classes: vec![control, video],
            faults: None,
            trace: None,
        }
    }

    #[test]
    fn class_lookup() {
        let r = sample_report();
        assert!(r.class("Control").is_some());
        assert!(r.class("Multimedia").is_some());
        assert!(r.class("Nope").is_none());
    }

    #[test]
    fn table_renders_all_classes() {
        let r = sample_report();
        let t = r.to_table();
        assert!(t.contains("Advanced 2 VCs"));
        assert!(t.contains("Control"));
        assert!(t.contains("Multimedia"));
        // 100 * 1024 B over 10 ms = 10.24 MB/s ≈ 0.082 Gb/s.
        assert!(t.contains("0.082"), "table was:\n{t}");
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.architecture, r.architecture);
        assert_eq!(back.classes.len(), 2);
        assert_eq!(back.class("Control").unwrap().packet_latency.count(), 100);
        // The whole tree roundtrips, not just the spot-checked fields:
        // render → parse → render is a fixed point.
        assert_eq!(back.to_json(), j);
        // All measured quantities survive exactly.
        let (a, b) = (r.class("Multimedia").unwrap(), back.class("Multimedia").unwrap());
        assert_eq!(a.jitter.count(), b.jitter.count());
        assert_eq!(a.jitter.std_dev().to_bits(), b.jitter.std_dev().to_bits());
        assert_eq!(a.message_latency.quantile(0.5), b.message_latency.quantile(0.5));
    }

    #[test]
    fn faults_key_is_omitted_for_fault_free_runs() {
        let r = sample_report();
        assert!(!r.to_json().contains("faults"));
    }

    #[test]
    fn fault_report_roundtrips() {
        let mut r = sample_report();
        r.faults = Some(FaultReport {
            classes: vec![
                FaultClassLoss { class: "Control".into(), dropped: 3, corrupted: 0, deadline_miss: 0 },
                FaultClassLoss { class: "Multimedia".into(), dropped: 17, corrupted: 2, deadline_miss: 5 },
            ],
            credits_lost: 1,
            reroutes: 4,
            reroute_rejections: 2,
            readmissions: 4,
        });
        let j = r.to_json();
        assert!(j.contains("faults"));
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.to_json(), j, "render → parse → render is a fixed point");
        let f = back.faults.unwrap();
        assert_eq!(f.total_dropped(), 20);
        assert_eq!(f.class("Multimedia").unwrap().deadline_miss, 5);
        // The table gains a faults footer.
        let mut r2 = sample_report();
        r2.faults = Some(f);
        assert!(r2.to_table().contains("# faults: dropped 20"));
    }

    #[test]
    fn trace_report_roundtrips_and_key_is_omitted_when_absent() {
        let r = sample_report();
        assert!(!r.to_json().contains("\"trace\""), "untraced runs omit the key");
        let mut traced = sample_report();
        traced.trace = Some(TraceReport {
            events: 1000,
            dropped_events: 24,
            incomplete: 1,
            classes: vec![TraceClassSlack {
                class: "Multimedia".into(),
                delivered: 10,
                missed: 2,
                miss_ns: 5_000,
                initial_slack_ns: 20_000,
                stages: vec![
                    StageSlack { stage: "pacing".into(), ns: 15_000 },
                    StageSlack { stage: "transit".into(), ns: 10_000 },
                ],
            }],
        });
        let j = traced.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.trace, traced.trace);
        assert_eq!(back.to_json(), j, "render → parse → render is a fixed point");
        let t = back.trace.unwrap();
        assert_eq!(t.total_missed(), 2);
        let c = t.class("Multimedia").unwrap();
        // The exact attribution identity survives serialisation.
        assert_eq!(c.stage_total_ns() as i64 - c.initial_slack_ns, c.miss_ns as i64);
        // The table gains a trace footer with the stage breakdown.
        let table = traced.to_table();
        assert!(table.contains("# trace: events 1000"));
        assert!(table.contains("pacing"));
    }

    #[test]
    fn cdf_text_format() {
        let r = sample_report();
        let txt = cdf_to_text(&r.class("Control").unwrap().packet_latency, 1e3, "us");
        assert!(txt.starts_with("# latency_us"));
        let lines: Vec<_> = txt.lines().skip(1).collect();
        assert!(!lines.is_empty());
        // Final fraction reaches 1.
        assert!(lines.last().unwrap().ends_with("1.000000"));
    }

    #[test]
    fn merge_classes() {
        let mut a = ClassStats::new("Control");
        let mut b = ClassStats::new("Control");
        a.packet_latency.record(10);
        b.packet_latency.record(20);
        b.delivered.record_packet(100);
        a.merge(&b);
        assert_eq!(a.packet_latency.count(), 2);
        assert_eq!(a.delivered.bytes(), 100);
    }
}
