//! # dqos-stats
//!
//! Measurement infrastructure for the paper's three QoS indices —
//! throughput, latency and jitter (§5) — plus the latency CDF the
//! figures show.
//!
//! * [`LogHistogram`] — log-bucketed latency histogram (HDR-style:
//!   power-of-two major buckets, linear sub-buckets) with exact mean,
//!   percentiles and CDF export. Bounded memory whatever the latency
//!   range, which matters because control-packet latencies (µs) and
//!   video-frame latencies (ms) share the pipeline.
//! * [`ThroughputMeter`] — delivered-bytes accounting over the
//!   measurement window.
//! * [`JitterTracker`] — per-flow latency variation: mean |ΔL| between
//!   consecutive deliveries and Welford variance.
//! * [`ClassStats`] / [`Report`] — per-traffic-class aggregation and the
//!   plain-text / JSON renderers the figure benches print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod jitter;
pub mod json;
pub mod meter;
pub mod report;

pub use hist::LogHistogram;
pub use jitter::JitterTracker;
pub use json::Json;
pub use meter::ThroughputMeter;
pub use report::{
    cdf_to_text, ClassStats, FaultClassLoss, FaultReport, Report, StageSlack, TraceClassSlack,
    TraceReport,
};
