//! Jitter: latency variation between consecutive deliveries of a flow.
//!
//! The paper reports jitter alongside latency for the multimedia class
//! (Figure 3's discussion: *Traditional 2 VCs* "would introduce a lot of
//! jitter"). Two standard estimators are kept:
//!
//! * mean absolute difference of consecutive latencies (RFC 3550-style
//!   interarrival jitter, un-smoothed), and
//! * the standard deviation of latency (via Welford's online algorithm).


/// Online jitter estimator for one flow (or one class, if fed per-flow
/// streams through [`JitterTracker::merge`]d instances).
#[derive(Debug, Clone, Default)]
pub struct JitterTracker {
    last: Option<u64>,
    abs_diff_sum: u128,
    abs_diff_count: u64,
    // Welford state over latencies.
    n: u64,
    mean: f64,
    m2: f64,
}

impl JitterTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the latency (ns) of the next delivered packet/frame.
    pub fn record(&mut self, latency_ns: u64) {
        if let Some(prev) = self.last {
            self.abs_diff_sum += prev.abs_diff(latency_ns) as u128;
            self.abs_diff_count += 1;
        }
        self.last = Some(latency_ns);
        self.n += 1;
        let x = latency_ns as f64;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Mean |Δlatency| between consecutive deliveries, ns.
    pub fn mean_abs_delta(&self) -> f64 {
        if self.abs_diff_count == 0 {
            return 0.0;
        }
        self.abs_diff_sum as f64 / self.abs_diff_count as f64
    }

    /// Standard deviation of latency, ns.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.m2 / (self.n - 1) as f64).sqrt()
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Merge a per-flow tracker into a class aggregate. The consecutive
    /// |Δ| chains stay per-flow (latencies of different flows are never
    /// compared); variance merges with Chan's parallel formula.
    pub fn merge(&mut self, other: &JitterTracker) {
        self.abs_diff_sum += other.abs_diff_sum;
        self.abs_diff_count += other.abs_diff_count;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.n = other.n;
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
    }

    /// Serialise to a JSON tree (floats roundtrip bit-exactly).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("last", self.last.map_or(Json::Null, |v| Json::Int(v as i128))),
            ("abs_diff_sum", Json::Int(self.abs_diff_sum as i128)),
            ("abs_diff_count", Json::Int(self.abs_diff_count as i128)),
            ("n", Json::Int(self.n as i128)),
            ("mean", Json::Float(self.mean)),
            ("m2", Json::Float(self.m2)),
        ])
    }

    /// Rebuild from [`JitterTracker::to_json`] output.
    pub fn from_json(j: &crate::json::Json) -> Option<Self> {
        use crate::json::Json;
        let last = match j.get("last")? {
            Json::Null => None,
            v => Some(v.as_u64()?),
        };
        Some(JitterTracker {
            last,
            abs_diff_sum: j.get("abs_diff_sum")?.as_u128()?,
            abs_diff_count: j.get("abs_diff_count")?.as_u64()?,
            n: j.get("n")?.as_u64()?,
            mean: j.get("mean")?.as_f64()?,
            m2: j.get("m2")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_has_zero_jitter() {
        let mut j = JitterTracker::new();
        for _ in 0..100 {
            j.record(5_000);
        }
        assert_eq!(j.mean_abs_delta(), 0.0);
        assert_eq!(j.std_dev(), 0.0);
        assert_eq!(j.count(), 100);
    }

    #[test]
    fn alternating_latency() {
        let mut j = JitterTracker::new();
        for i in 0..10 {
            j.record(if i % 2 == 0 { 1_000 } else { 3_000 });
        }
        assert_eq!(j.mean_abs_delta(), 2_000.0);
        // Std-dev of a ±1000 alternation around 2000.
        assert!((j.std_dev() - 1_054.0).abs() < 5.0);
    }

    #[test]
    fn single_sample_safe() {
        let mut j = JitterTracker::new();
        j.record(42);
        assert_eq!(j.mean_abs_delta(), 0.0);
        assert_eq!(j.std_dev(), 0.0);
    }

    #[test]
    fn merge_matches_pooled_variance() {
        let samples_a = [1000u64, 2000, 1500, 1800];
        let samples_b = [5000u64, 5200, 4900];
        let mut a = JitterTracker::new();
        let mut b = JitterTracker::new();
        for &s in &samples_a {
            a.record(s);
        }
        for &s in &samples_b {
            b.record(s);
        }
        a.merge(&b);
        // Reference: record everything into one tracker (same variance,
        // though the |Δ| chain would differ — check std_dev only).
        let mut all = JitterTracker::new();
        for &s in samples_a.iter().chain(&samples_b) {
            all.record(s);
        }
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-6);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn empty_tracker() {
        let j = JitterTracker::new();
        assert_eq!(j.count(), 0);
        assert_eq!(j.mean_abs_delta(), 0.0);
        assert_eq!(j.std_dev(), 0.0);
        let back = JitterTracker::from_json(&j.to_json()).expect("roundtrip");
        assert_eq!(back.count(), 0);
        assert_eq!(back.mean_abs_delta(), 0.0);
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = JitterTracker::new();
        let b = JitterTracker::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.std_dev(), 0.0);
    }

    #[test]
    fn saturating_latencies_do_not_overflow() {
        // Alternating 0 / u64::MAX maximises every |Δ| term; the u128
        // accumulator must absorb them without wrapping.
        let mut j = JitterTracker::new();
        for i in 0..64 {
            j.record(if i % 2 == 0 { 0 } else { u64::MAX });
        }
        assert_eq!(j.count(), 64);
        assert_eq!(j.mean_abs_delta(), u64::MAX as f64);
        assert!(j.std_dev() > 0.0 && j.std_dev().is_finite());
        let back = JitterTracker::from_json(&j.to_json()).expect("roundtrip");
        assert_eq!(back.count(), 64);
        assert_eq!(back.mean_abs_delta(), u64::MAX as f64);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = JitterTracker::new();
        let mut b = JitterTracker::new();
        b.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.std_dev() > 0.0);
    }
}
