//! Log-bucketed histogram for latency recording.
//!
//! Values are nanoseconds (`u64`). Buckets: 64 major power-of-two ranges
//! × `SUB` linear sub-buckets each, giving a worst-case quantisation
//! error below `1/SUB` of the value — plenty for CDF plots — with a
//! fixed, small footprint.


/// Sub-buckets per power-of-two range (relative error ≤ 1/32 ≈ 3 %).
const SUB: usize = 32;
const SUB_BITS: u32 = 5;

/// A log-bucketed histogram of `u64` values (nanoseconds by convention).
///
/// ```
/// use dqos_stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for latency_ns in [5_000u64, 7_000, 9_000, 11_000] {
///     h.record(latency_ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 8_000.0);           // exact, not bucketised
/// assert_eq!(h.max(), 11_000);
/// assert!(h.fraction_at_or_below(9_500) >= 0.75);
/// let cdf = h.cdf();                       // (value, cumulative fraction)
/// assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; 64 * SUB],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            // Values below SUB map 1:1 into the first buckets.
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let major = msb - SUB_BITS; // >= 0 because value >= SUB
        let sub = (value >> major) as usize - SUB; // 0..SUB
        ((major + 1) as usize) * SUB + sub
    }

    /// Representative (upper-edge) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let major = (i / SUB - 1) as u32;
        let sub = (i % SUB) as u128;
        // Widen: the very last bucket's edge is exactly 2^64 - 1, and the
        // u64 intermediate `64 << 58` would overflow.
        (((SUB as u128 + sub + 1) << major) - 1).min(u64::MAX as u128) as u64
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (not bucketised).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Smallest recorded value (exact), or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact), or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper edge: ≤ 3 % high).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Export the CDF as `(value_ns, cumulative_fraction)` points, one
    /// per non-empty bucket — exactly what the paper's CDF figures plot.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut pts = Vec::new();
        if self.total == 0 {
            return pts;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            pts.push((
                Self::bucket_value(i).min(self.max),
                cum as f64 / self.total as f64,
            ));
        }
        pts
    }

    /// Fraction of recorded values ≤ `value`.
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(value);
        let cum: u64 = self.counts[..=b].iter().sum();
        cum as f64 / self.total as f64
    }

    /// Serialise to a JSON tree. Bucket counts are stored sparsely as
    /// `[index, count]` pairs — most of the 2048 buckets are empty.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let counts: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::Int(i as i128), Json::Int(c as i128)]))
            .collect();
        Json::obj(vec![
            ("counts", Json::Arr(counts)),
            ("total", Json::Int(self.total as i128)),
            ("sum", Json::Int(self.sum as i128)),
            ("min", Json::Int(self.min as i128)),
            ("max", Json::Int(self.max as i128)),
        ])
    }

    /// Rebuild from [`LogHistogram::to_json`] output.
    pub fn from_json(j: &crate::json::Json) -> Option<Self> {
        let mut h = LogHistogram::new();
        for pair in j.get("counts")?.as_arr()? {
            let pair = pair.as_arr()?;
            let i = pair.first()?.as_u64()? as usize;
            if i >= h.counts.len() {
                return None;
            }
            h.counts[i] = pair.get(1)?.as_u64()?;
        }
        h.total = j.get("total")?.as_u64()?;
        h.sum = j.get("sum")?.as_u128()?;
        h.min = j.get("min")?.as_u64()?;
        h.max = j.get("max")?.as_u64()?;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn exact_small_values() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.mean(), 15.5);
        // Small values are exact.
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn mean_is_exact_not_bucketised() {
        let mut h = LogHistogram::new();
        h.record(1_000_003);
        h.record(2_000_001);
        assert_eq!(h.mean(), 1_500_002.0);
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = LogHistogram::new();
        for v in [10_000u64, 20_000, 30_000, 40_000, 50_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // Within 1/32 of the true median.
        assert!(
            (p50 as f64 - 30_000.0).abs() / 30_000.0 <= 1.0 / 32.0 + 1e-9,
            "p50 {p50}"
        );
        assert_eq!(h.quantile(1.0), 50_000); // clamped to true max
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 97);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = (0u64, 0.0f64);
        for &(v, f) in &cdf {
            assert!(v >= prev.0);
            assert!(f >= prev.1);
            prev = (v, f);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_or_below() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.fraction_at_or_below(9) - 0.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(10) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(100);
        b.record(300);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 500);
        assert_eq!(a.mean(), 300.0);
    }

    #[test]
    fn single_sample() {
        let mut h = LogHistogram::new();
        h.record(123_456);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 123_456);
        assert_eq!(h.max(), 123_456);
        assert_eq!(h.mean(), 123_456.0);
        // Every quantile of a one-sample histogram is that sample
        // (bucketised, then clamped to the exact min/max).
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456, "q={q}");
        }
        assert_eq!(h.cdf(), vec![(123_456, 1.0)]);
    }

    #[test]
    fn saturating_values_do_not_overflow() {
        // u64::MAX lands in the last sub-bucket of the top major range,
        // whose upper edge is exactly u64::MAX — no wraparound anywhere.
        let mut h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(u64::MAX);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.mean(), u64::MAX as f64);
        let j = h.to_json();
        let back = LogHistogram::from_json(&j).expect("roundtrip");
        assert_eq!(back.count(), 1000);
        assert_eq!(back.max(), u64::MAX);
    }

    #[test]
    fn empty_histogram_json_roundtrip() {
        // The empty sentinel (min = u64::MAX, max = 0) must survive
        // serialisation without inventing samples.
        let h = LogHistogram::new();
        let back = LogHistogram::from_json(&h.to_json()).expect("roundtrip");
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), 0);
        assert_eq!(back.max(), 0);
        assert!(back.cdf().is_empty());
    }

    /// Shared check for the merged-quantile bound: for every probed q,
    /// `min_shard_q  ≤  merged_q  ≤  max_shard_q · (1 + 1/32) + 1`.
    ///
    /// The lower bound is exact. The upper bound carries the bucket
    /// quantisation slack: each shard clamps its bucket upper edge to its
    /// own max, while the merged histogram clamps to the global max, so
    /// the merged value can exceed the loosest shard by up to one bucket
    /// width (≤ 1/32 relative).
    fn assert_merged_quantiles_bounded(shards: &[LogHistogram]) {
        let mut merged = LogHistogram::new();
        for s in shards {
            merged.merge(s);
        }
        let occupied: Vec<&LogHistogram> = shards.iter().filter(|s| s.count() > 0).collect();
        if occupied.is_empty() {
            return;
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let m = merged.quantile(q);
            let lo = occupied.iter().map(|s| s.quantile(q)).min().unwrap();
            let hi = occupied.iter().map(|s| s.quantile(q)).max().unwrap();
            assert!(
                m >= lo,
                "merged q{q} = {m} below tightest shard quantile {lo}"
            );
            assert!(
                m as f64 <= hi as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "merged q{q} = {m} above loosest shard quantile {hi} + bucket slack"
            );
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every value lands in a bucket whose representative is within
            /// 1/32 relative error above it.
            #[test]
            fn prop_bucket_error_bounded(v in 0u64..u64::MAX / 2) {
                let b = LogHistogram::bucket_of(v);
                let rep = LogHistogram::bucket_value(b);
                prop_assert!(rep >= v, "representative below value");
                if v >= 32 {
                    prop_assert!((rep - v) as f64 / v as f64 <= 1.0 / 32.0);
                } else {
                    prop_assert_eq!(rep, v);
                }
            }

            /// Bucket index is monotone in the value.
            #[test]
            fn prop_bucket_monotone(a in 0u64..1 << 50, b in 0u64..1 << 50) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(LogHistogram::bucket_of(lo) <= LogHistogram::bucket_of(hi));
            }

            /// Merged-histogram quantiles are bounded by the per-shard
            /// quantiles (up to one bucket of quantisation slack).
            #[test]
            fn prop_merged_quantiles_bound_shards(
                shards in proptest::collection::vec(
                    proptest::collection::vec(0u64..100_000_000, 0..120),
                    1..6,
                )
            ) {
                let hists: Vec<LogHistogram> = shards
                    .iter()
                    .map(|vs| {
                        let mut h = LogHistogram::new();
                        for &v in vs {
                            h.record(v);
                        }
                        h
                    })
                    .collect();
                assert_merged_quantiles_bounded(&hists);
            }

            /// Quantiles are monotone in q and bracketed by min/max.
            #[test]
            fn prop_quantiles_monotone(values in proptest::collection::vec(0u64..10_000_000, 1..200)) {
                let mut h = LogHistogram::new();
                for &v in &values {
                    h.record(v);
                }
                let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
                let mut last = 0;
                for &q in &qs {
                    let v = h.quantile(q);
                    prop_assert!(v >= last);
                    prop_assert!(v >= h.min() && v <= h.max());
                    last = v;
                }
            }
        }
    }

    /// Dependency-free ports of the property suite above, driven by the
    /// in-house RNG so they run in the offline tier-1 build.
    mod randomized {
        use super::*;
        use dqos_sim_core::SimRng;

        #[test]
        fn bucket_error_bounded_and_monotone() {
            let mut rng = SimRng::new(0xBEEF);
            let mut prev: Option<(u64, usize)> = None;
            let mut values: Vec<u64> =
                (0..20_000).map(|_| rng.range_u64(0, u64::MAX / 2)).collect();
            values.extend(0..64); // exercise the exact small-value region
            values.sort_unstable();
            for v in values {
                let b = LogHistogram::bucket_of(v);
                let rep = LogHistogram::bucket_value(b);
                assert!(rep >= v, "representative below value for {v}");
                if v >= 32 {
                    assert!((rep - v) as f64 / v as f64 <= 1.0 / 32.0, "error too large for {v}");
                } else {
                    assert_eq!(rep, v);
                }
                if let Some((pv, pb)) = prev {
                    assert!(b >= pb, "bucket_of not monotone at {pv} -> {v}");
                }
                prev = Some((v, b));
            }
        }

        #[test]
        fn merged_quantiles_bound_shards_randomized() {
            let mut rng = SimRng::new(0xD1CE);
            for _ in 0..100 {
                let shard_count = 1 + rng.index(5);
                let hists: Vec<LogHistogram> = (0..shard_count)
                    .map(|_| {
                        let n = rng.index(120); // may be empty
                        let mut h = LogHistogram::new();
                        for _ in 0..n {
                            h.record(rng.range_u64(0, 99_999_999));
                        }
                        h
                    })
                    .collect();
                assert_merged_quantiles_bounded(&hists);
            }
        }

        #[test]
        fn quantiles_monotone_randomized() {
            let mut rng = SimRng::new(0xCAFE);
            for _ in 0..100 {
                let n = 1 + rng.index(200);
                let mut h = LogHistogram::new();
                for _ in 0..n {
                    h.record(rng.range_u64(0, 9_999_999));
                }
                let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
                let mut last = 0;
                for &q in &qs {
                    let v = h.quantile(q);
                    assert!(v >= last);
                    assert!(v >= h.min() && v <= h.max());
                    last = v;
                }
            }
        }
    }
}
