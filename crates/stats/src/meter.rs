//! Throughput accounting.

use dqos_sim_core::{Bandwidth, SimTime};

/// Counts bytes (and messages) delivered inside a measurement window and
/// converts them to throughput.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    packets: u64,
    messages: u64,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivered packet of `len` bytes.
    pub fn record_packet(&mut self, len: u32) {
        self.bytes += len as u64;
        self.packets += 1;
    }

    /// Record one fully reassembled message/frame.
    pub fn record_message(&mut self) {
        self.messages += 1;
    }

    /// Delivered bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Delivered packets.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Completed messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Mean throughput over the window `[start, end)`.
    pub fn throughput(&self, start: SimTime, end: SimTime) -> Bandwidth {
        let dur = end.since(start);
        if dur.as_ns() == 0 {
            return Bandwidth::bytes_per_sec(0);
        }
        Bandwidth::bytes_per_sec(
            ((self.bytes as u128 * 1_000_000_000u128) / dur.as_ns() as u128) as u64,
        )
    }

    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &ThroughputMeter) {
        self.bytes += other.bytes;
        self.packets += other.packets;
        self.messages += other.messages;
    }

    /// Serialise to a JSON tree.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("bytes", Json::Int(self.bytes as i128)),
            ("packets", Json::Int(self.packets as i128)),
            ("messages", Json::Int(self.messages as i128)),
        ])
    }

    /// Rebuild from [`ThroughputMeter::to_json`] output.
    pub fn from_json(j: &crate::json::Json) -> Option<Self> {
        Some(ThroughputMeter {
            bytes: j.get("bytes")?.as_u64()?,
            packets: j.get("packets")?.as_u64()?,
            messages: j.get("messages")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = ThroughputMeter::new();
        m.record_packet(1000);
        m.record_packet(500);
        m.record_message();
        assert_eq!(m.bytes(), 1500);
        assert_eq!(m.packets(), 2);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn throughput_over_window() {
        let mut m = ThroughputMeter::new();
        // 1 MB over 1 ms = 1 GB/s = 8 Gb/s.
        for _ in 0..1000 {
            m.record_packet(1000);
        }
        let bw = m.throughput(SimTime::ZERO, SimTime::from_ms(1));
        assert_eq!(bw.as_bytes_per_sec(), 1_000_000_000);
        assert!((bw.as_gbps_f64() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_zero_throughput() {
        let mut m = ThroughputMeter::new();
        m.record_packet(100);
        assert_eq!(
            m.throughput(SimTime::from_us(5), SimTime::from_us(5)).as_bytes_per_sec(),
            0
        );
    }

    #[test]
    fn merge() {
        let mut a = ThroughputMeter::new();
        let mut b = ThroughputMeter::new();
        a.record_packet(10);
        b.record_packet(20);
        b.record_message();
        a.merge(&b);
        assert_eq!(a.bytes(), 30);
        assert_eq!(a.packets(), 2);
        assert_eq!(a.messages(), 1);
    }
}
