//! Differential tests: the bucketed calendar against the binary-heap
//! reference oracle, on large mixed schedules.
//!
//! These are the acceptance tests for the calendar replacement: pop order
//! must be **bit-identical** — same `(time, payload)` sequence — for any
//! interleaving of schedules and pops, across wheel geometries that force
//! the overflow, migration and ring-wrap paths.

use dqos_sim_core::{
    BinaryHeapQueue, Engine, EventQueue, SimDuration, SimRng, SimTime, World,
};

/// Drive both calendars through the same mixed schedule/pop workload and
/// assert identical pop streams.
fn differential(seed: u64, shift: u32, n_buckets: usize, total_events: u64) {
    let mut rng = SimRng::new(seed);
    let mut fast: EventQueue<u64> = EventQueue::with_geometry(shift, n_buckets);
    let mut oracle: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut scheduled = 0u64;
    let mut pending = 0u64;
    let mut popped = 0u64;

    while popped < total_events {
        let do_schedule = scheduled < total_events
            && (pending == 0 || (pending < 8192 && rng.chance(0.52)));
        if do_schedule {
            // Mixed horizons: mostly near events, a tail of far events
            // (overflow), and a slug of exact ties.
            let delta = match rng.index(10) {
                0 => 0,                              // same-tick tie
                1..=6 => rng.range_u64(1, 5_000),    // near: inside wheel
                7 | 8 => rng.range_u64(5_000, 300_000), // mid: straddles horizon
                _ => rng.range_u64(300_000, 50_000_000), // far: deep overflow
            };
            let at = SimTime::from_ns(fast.now().as_ns() + delta);
            fast.schedule(at, scheduled);
            oracle.schedule(at, scheduled);
            scheduled += 1;
            pending += 1;
        } else {
            let a = fast.pop().expect("fast queue empty while pending > 0");
            let b = oracle.pop().expect("oracle queue empty while pending > 0");
            assert_eq!(
                (a.time, a.payload),
                (b.time, b.payload),
                "pop #{popped} diverged (seed {seed}, shift {shift}, buckets {n_buckets})"
            );
            assert_eq!(a.time, fast.now());
            pending -= 1;
            popped += 1;
        }
        debug_assert_eq!(fast.len(), oracle.len());
    }
    assert_eq!(fast.len(), oracle.len());
}

/// The headline differential: one million events through the default
/// geometry, bit-identical (time, seq) pop order.
#[test]
fn one_million_events_match_reference_heap() {
    differential(0xD05_CA1E, 4, 4096, 1_000_000);
}

/// Small wheels force heavy overflow traffic and ring wrap-around.
#[test]
fn stress_geometries_match_reference_heap() {
    for (seed, shift, buckets) in
        [(1u64, 0u32, 64usize), (2, 0, 128), (3, 6, 64), (4, 10, 256), (5, 2, 4096)]
    {
        differential(seed, shift, buckets, 60_000);
    }
}

/// Scheduling behind the clock is a causality bug and must panic loudly
/// in debug builds.
#[test]
#[should_panic(expected = "scheduling into the past")]
#[cfg(debug_assertions)]
fn past_scheduling_panics() {
    let mut q: EventQueue<()> = EventQueue::new();
    q.schedule(SimTime::from_us(10), ());
    q.pop();
    q.schedule(SimTime::from_us(9), ());
}

struct Ticker {
    period: SimDuration,
    fired: Vec<SimTime>,
}

impl World for Ticker {
    type Event = ();
    fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
        self.fired.push(now);
        q.schedule(now + self.period, ());
    }
}

/// `Engine::run_until(horizon)` runs events *at* the horizon but nothing
/// after it — the contract the measurement windows depend on.
#[test]
fn run_until_is_horizon_inclusive() {
    let mut e = Engine::new(Ticker { period: SimDuration::from_us(5), fired: vec![] });
    e.schedule(SimTime::ZERO, ());
    let stats = e.run_until(SimTime::from_us(20));
    assert!(!stats.drained);
    assert_eq!(
        e.world.fired,
        (0..=4).map(|i| SimTime::from_us(5 * i)).collect::<Vec<_>>(),
        "events at 0,5,10,15,20us run; the one at 25us must not"
    );
    assert_eq!(e.queue.peek_time(), Some(SimTime::from_us(25)));
}
