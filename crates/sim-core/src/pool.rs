//! A small scoped worker pool for embarrassingly parallel sweeps.
//!
//! Replaces the former `rayon` dependency: each worker thread runs one
//! deterministic single-threaded simulation at a time (the rustasim
//! model), claims work items off a shared atomic counter, and sends
//! `(index, result)` pairs back over `std::sync::mpsc`. Results are
//! returned **in input order**, so a parallel sweep produces the exact
//! output a serial loop would — parallelism never changes observable
//! results, only wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads to use for `n_items` independent jobs:
/// available parallelism capped by the item count (never zero).
pub fn default_workers(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(n_items).max(1)
}

/// Apply `f` to every item on a scoped worker pool and return the results
/// in input order.
///
/// Work is claimed dynamically (one shared atomic index), so uneven job
/// durations — e.g. high-load sweep points simulating far more packets
/// than low-load ones — balance across workers automatically. With
/// `workers == 1`, or one item, this degenerates to a plain serial map on
/// the calling thread.
///
/// Panics in `f` are propagated: the pool finishes outstanding sends,
/// then re-panics on the caller's thread.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Workers claim indices from `next`; each item is moved out of its
    // slot exactly once (guarded by the unique index from fetch_add).
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|it| std::sync::Mutex::new(Some(it))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                // ordering: the counter only hands out unique indices; the
                // items themselves are published by the Vec construction
                // before the scope spawns, so no release/acquire pairing
                // is needed on the claim itself.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    // tidy: allow(no-unwrap) -- fetch_add hands out each index
                    // exactly once, so the slot is still occupied here.
                    .expect("work item claimed twice");
                // A send can only fail if the receiver was dropped, which
                // happens when another worker panicked; stop quietly and
                // let the scope propagate that panic.
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        // If a worker panicked, leaving holes, the scope re-panics on
        // join before this unwrap can misfire... except when the panic
        // races the drain — so check explicitly.
        out.into_iter().collect::<Option<Vec<R>>>()
    })
    // tidy: allow(no-unwrap) -- a hole in the results means a worker
    // panicked, and scope join re-panics before this line can run.
    .expect("worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = par_map(items.clone(), 8, |x| x * x);
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(par_map(items.clone(), 1, |x| x + 1), par_map(items, 4, |x| x + 1));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], 4, |x| x * 3), vec![21]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..32).collect();
        let got = par_map(items, 4, |x| {
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(i as u64, *x);
        }
    }

    #[test]
    fn default_workers_is_sane() {
        assert_eq!(default_workers(0), 1);
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1000) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        // std::thread::scope re-panics on join when a worker panicked.
        let _ = par_map((0..16).collect::<Vec<u32>>(), 4, |x| {
            if x == 9 {
                panic!("boom");
            }
            x
        });
    }
}
