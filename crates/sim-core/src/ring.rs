//! Word-granular single-producer / single-consumer ring channel.
//!
//! This is the steady-state hand-off primitive of the free-running
//! parallel executor ([`crate::exec`]): each ordered pair of
//! neighbouring partitions owns one [`SpscRing`] carrying
//! variable-length *records* — a length prefix followed by `len`
//! payload words. The executor packs an event header (timestamp, merge
//! key, destination node) plus an application-encoded message
//! ([`RingMsg`]) into each record; `dqos-netsim` additionally runs
//! whole packets through sibling "lane" rings.
//!
//! Why words and not `T` slots: cross-partition messages are
//! variable-sized (a bare credit is 4 words, an evicted packet ~20) and
//! the workspace forbids `unsafe`, so the ring is a fixed `Box<[AtomicU64]>`
//! and records serialise into it. There is exactly one producer and one
//! consumer per ring, so the only synchronisation is a Release store /
//! Acquire load pair on each cursor — no locks, no CAS loops, no
//! allocation after construction.
//!
//! Memory-ordering contract (verified by the `SpscModel` in
//! [`crate::mcheck`]):
//!
//! * the producer writes payload slots *then* publishes `tail` with
//!   Release; the consumer Acquire-loads `tail` before reading slots —
//!   so every payload word a pop observes is fully written;
//! * the consumer reads payload slots *then* publishes `head` with
//!   Release; the producer Acquire-loads `head` before reusing slots —
//!   so the producer never overwrites a word the consumer has yet to
//!   read.
//!
//! The payload slot accesses themselves are `Relaxed`: the cursor
//! edges carry all the ordering, and each slot has exactly one writer
//! between any Release/Acquire pair.

// tidy: hot-path

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity single-producer / single-consumer ring of `u64`
/// words carrying length-prefixed records.
///
/// `push` and `pop` never block and never allocate; a full ring makes
/// `push` return `false` (the executor treats that as backpressure and
/// publishes a floor bound instead of spinning). Capacity is rounded
/// up to a power of two at construction.
pub struct SpscRing {
    slots: Box<[AtomicU64]>,
    mask: u64,
    /// Consumer cursor: absolute word index of the next unread word.
    head: AtomicU64,
    /// Producer cursor: absolute word index of the next free word.
    tail: AtomicU64,
}

impl SpscRing {
    /// Create a ring holding at least `capacity_words` payload+prefix
    /// words (rounded up to the next power of two, minimum 8).
    pub fn new(capacity_words: usize) -> Self {
        let cap = capacity_words.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(AtomicU64::new(0));
        }
        SpscRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Total word capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Push one record (`words` preceded by a length prefix). Returns
    /// `false` — writing nothing — if the ring lacks room for the whole
    /// record. Call only from the ring's single producer.
    pub fn push(&self, words: &[u64]) -> bool {
        let need = words.len() as u64 + 1;
        debug_assert!(
            need <= self.slots.len() as u64,
            "record of {} words can never fit a {}-word ring",
            words.len(),
            self.slots.len()
        );
        // ordering: Acquire pairs with the consumer's Release store of
        // `head` in `pop` — slots below `head` are fully read and safe
        // to reuse.
        let head = self.head.load(Ordering::Acquire);
        // ordering: Relaxed — single producer; only this thread writes
        // `tail`, so its own last store is always visible.
        let tail = self.tail.load(Ordering::Relaxed);
        let free = self.slots.len() as u64 - (tail - head);
        if free < need {
            return false;
        }
        // ordering: Relaxed payload stores — the Release store of
        // `tail` below publishes them to the consumer's Acquire load.
        self.slots[(tail & self.mask) as usize].store(words.len() as u64, Ordering::Relaxed);
        for (i, &w) in words.iter().enumerate() {
            // ordering: Relaxed payload store — published by the
            // Release store of `tail` below.
            self.slots[((tail + 1 + i as u64) & self.mask) as usize].store(w, Ordering::Relaxed);
        }
        // ordering: Release publishes the payload stores above to the
        // consumer's Acquire load of `tail` in `pop`.
        self.tail.store(tail + need, Ordering::Release);
        true
    }

    /// Pop one record into `buf` (cleared first; length prefix
    /// stripped). Returns `false` if the ring is empty. Call only from
    /// the ring's single consumer.
    pub fn pop(&self, buf: &mut Vec<u64>) -> bool {
        // ordering: Acquire pairs with the producer's Release store of
        // `tail` in `push` — every slot below `tail` is fully written.
        let tail = self.tail.load(Ordering::Acquire);
        // ordering: Relaxed — single consumer; only this thread writes
        // `head`.
        let head = self.head.load(Ordering::Relaxed);
        if head == tail {
            return false;
        }
        // ordering: Relaxed payload load — ordered by the Acquire load
        // of `tail` above.
        let len = self.slots[(head & self.mask) as usize].load(Ordering::Relaxed);
        debug_assert!(head + 1 + len <= tail, "torn record: len prefix past tail");
        buf.clear();
        for i in 0..len {
            // ordering: Relaxed payload load — ordered by the Acquire
            // load of `tail` above.
            buf.push(self.slots[((head + 1 + i) & self.mask) as usize].load(Ordering::Relaxed));
        }
        // ordering: Release pairs with the producer's Acquire load of
        // `head` in `push` — marks the words just read as reusable.
        self.head.store(head + 1 + len, Ordering::Release);
        true
    }

    /// True when no unread record exists. Safe from any thread; used
    /// only on the cold termination-scan path.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst) == self.tail.load(Ordering::SeqCst)
    }
}

/// Word-codec for messages crossing partitions through an [`SpscRing`].
///
/// The executor appends `encode`d words after its own record header and
/// hands `decode` the same slice on the consumer side. `MAX_WORDS`
/// bounds a single message so ring capacities can be sized up front;
/// `encode` must append at most that many words.
pub trait RingMsg: Sized {
    /// Upper bound on the words one `encode` call may append.
    const MAX_WORDS: usize;
    /// Append this message's words to `out`.
    fn encode(self, out: &mut Vec<u64>);
    /// Rebuild a message from the words `encode` appended.
    fn decode(words: &[u64]) -> Self;
}

impl RingMsg for () {
    const MAX_WORDS: usize = 0;
    fn encode(self, _out: &mut Vec<u64>) {}
    fn decode(_words: &[u64]) -> Self {}
}

impl RingMsg for u64 {
    const MAX_WORDS: usize = 1;
    fn encode(self, out: &mut Vec<u64>) {
        out.push(self);
    }
    fn decode(words: &[u64]) -> Self {
        words[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_nothing() {
        let r = SpscRing::new(16);
        let mut buf = Vec::new();
        assert!(r.is_empty());
        assert!(!r.pop(&mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn records_round_trip_in_order() {
        let r = SpscRing::new(64);
        assert!(r.push(&[1, 2, 3]));
        assert!(r.push(&[]));
        assert!(r.push(&[9]));
        assert!(!r.is_empty());
        let mut buf = Vec::new();
        assert!(r.pop(&mut buf));
        assert_eq!(buf, vec![1, 2, 3]);
        assert!(r.pop(&mut buf));
        assert_eq!(buf, Vec::<u64>::new());
        assert!(r.pop(&mut buf));
        assert_eq!(buf, vec![9]);
        assert!(!r.pop(&mut buf));
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_rejects_whole_record() {
        // Capacity 8 words; each [x, y] record costs 3.
        let r = SpscRing::new(8);
        assert!(r.push(&[1, 2]));
        assert!(r.push(&[3, 4]));
        // 6 of 8 words used; a 3-word record must be refused intact.
        assert!(!r.push(&[5, 6]));
        // ... but a 2-word record still fits.
        assert!(r.push(&[7]));
        let mut buf = Vec::new();
        assert!(r.pop(&mut buf));
        assert_eq!(buf, vec![1, 2]);
        // Freeing 3 words readmits the refused record.
        assert!(r.push(&[5, 6]));
        let mut seen = Vec::new();
        while r.pop(&mut buf) {
            seen.push(buf.clone());
        }
        assert_eq!(seen, vec![vec![3, 4], vec![7], vec![5, 6]]);
    }

    #[test]
    fn wraparound_preserves_contents() {
        // Cycle many records through a tiny ring so head/tail lap the
        // buffer repeatedly and records straddle the wrap point.
        let r = SpscRing::new(8);
        let mut buf = Vec::new();
        for i in 0..1_000u64 {
            let rec = [i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i ^ 0xFFFF];
            assert!(r.push(&rec), "push {i} failed on a drained ring");
            if i % 3 == 0 {
                // Leave one record in flight every third iteration so
                // the cursors de-phase from the buffer boundary.
                assert!(r.push(&[i + 7]));
            }
            assert!(r.pop(&mut buf));
            assert_eq!(buf, rec, "record {i} corrupted across wrap");
            if i % 3 == 0 {
                assert!(r.pop(&mut buf));
                assert_eq!(buf, vec![i + 7]);
            }
        }
        assert!(r.is_empty());
    }

    #[test]
    fn two_thread_stream_arrives_intact() {
        let r = SpscRing::new(64);
        let total = 20_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..total {
                    let rec = [i, !i];
                    while !r.push(&rec) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut buf = Vec::new();
            let mut next = 0u64;
            while next < total {
                if r.pop(&mut buf) {
                    assert_eq!(buf, vec![next, !next], "record {next} mangled");
                    next += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        assert!(r.is_empty());
    }

    #[test]
    fn unit_and_u64_codecs_round_trip() {
        let mut out = Vec::new();
        ().encode(&mut out);
        assert!(out.is_empty());
        <()>::decode(&out);
        77u64.encode(&mut out);
        assert_eq!(out, vec![77]);
        assert_eq!(u64::decode(&out), 77);
    }
}
