//! The random distributions the paper's workloads require.
//!
//! * Exponential inter-arrivals for Poisson message sources (Control
//!   traffic).
//! * **Bounded Pareto** for the self-similar internet-like traffic: the
//!   paper (following Jain's recommendation) draws packet/message sizes
//!   and burst lengths from Pareto distributions, truncated to the ranges
//!   of Table 1.
//! * Log-normal for the synthetic MPEG-4 frame-size model.

use crate::rng::SimRng;

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Create an exponential distribution with mean `mean` (> 0).
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "exponential mean must be positive");
        Exponential { mean }
    }

    /// Draw a sample.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.f64_open0().ln()
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Pareto distribution truncated to `[lo, hi]`.
///
/// Samples are drawn by inverting the CDF of the bounded Pareto:
/// `F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha)`.
///
/// `alpha` in `(1, 2)` yields the heavy tails that produce self-similar
/// aggregate traffic; the Table-1 workload uses `alpha = 1.5` by default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
    // Precomputed (lo/hi)^alpha.
    ratio_pow: f64,
}

impl BoundedPareto {
    /// Create a bounded Pareto on `[lo, hi]` with shape `alpha`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "bounded Pareto needs 0 < lo < hi");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        BoundedPareto { lo, hi, alpha, ratio_pow: (lo / hi).powf(alpha) }
    }

    /// Draw a sample in `[lo, hi]`.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        // Inverse CDF of the truncated Pareto.
        let x = self.lo / (1.0 - u * (1.0 - self.ratio_pow)).powf(1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }

    /// Analytic mean of the bounded Pareto (used to calibrate offered
    /// load without sampling).
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // alpha == 1 special case.
            let c = 1.0 / (1.0 - l / h);
            return c * l * (h / l).ln();
        }
        let la = l.powf(a);
        let num = la / (1.0 - (l / h).powf(a)) * a / (a - 1.0);
        num * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

/// Log-normal distribution parameterised by the mean and coefficient of
/// variation of the *underlying value* (not of the log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal whose samples have the given `mean` and
    /// coefficient of variation `cv` (= std-dev / mean).
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0, "mean and cv must be positive");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal { mu, sigma: sigma2.sqrt() }
    }

    /// Draw a sample (Box–Muller on the log scale).
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.f64_open0();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(mut f: impl FnMut(&mut SimRng) -> f64, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(250.0);
        let m = sample_mean(|r| d.sample(r), 1, 200_000);
        assert!((m - 250.0).abs() / 250.0 < 0.02, "mean {m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1.0);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = BoundedPareto::new(128.0, 100_000.0, 1.5);
        let mut rng = SimRng::new(3);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((128.0..=100_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_empirical_mean_matches_analytic() {
        let d = BoundedPareto::new(128.0, 100_000.0, 1.5);
        let m = sample_mean(|r| d.sample(r), 4, 400_000);
        let a = d.mean();
        assert!(
            (m - a).abs() / a < 0.05,
            "empirical {m} vs analytic {a}"
        );
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // With alpha = 1.5 the median is far below the mean.
        let d = BoundedPareto::new(128.0, 100_000.0, 1.5);
        let mut rng = SimRng::new(5);
        let mut v: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        // Analytic median ≈ 203 for these parameters, mean ≈ 370: the
        // median sits well below the mean, the signature of a heavy tail.
        assert!(median < d.mean() * 0.7, "median {median} mean {}", d.mean());
    }

    #[test]
    fn bounded_pareto_alpha_one_mean() {
        let d = BoundedPareto::new(10.0, 1000.0, 1.0);
        let m = sample_mean(|r| d.sample(r), 6, 400_000);
        let a = d.mean();
        assert!((m - a).abs() / a < 0.05, "empirical {m} vs analytic {a}");
    }

    #[test]
    fn lognormal_mean_and_spread() {
        let d = LogNormal::from_mean_cv(16_000.0, 0.8);
        let m = sample_mean(|r| d.sample(r), 7, 400_000);
        assert!((m - 16_000.0).abs() / 16_000.0 < 0.03, "mean {m}");
        let mut rng = SimRng::new(8);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }
}
