//! # dqos-sim-core
//!
//! Deterministic discrete-event simulation kernel used by the
//! `deadline-qos` workspace, the reproduction of *"Deadline-based QoS
//! Algorithms for High-performance Networks"* (IPPS 2007).
//!
//! The kernel is deliberately small and allocation-light:
//!
//! * [`SimTime`] / [`SimDuration`] — integer nanosecond timestamps. One
//!   simulation tick is one nanosecond, so at the paper's 8 Gb/s link rate
//!   a packet's serialisation time in ticks equals its length in bytes.
//! * [`EventQueue`] — a two-level bucketed calendar queue (timing-wheel
//!   near buckets + sorted overflow) with a monotonically increasing
//!   sequence number so that events scheduled for the same tick are
//!   delivered in FIFO order (stable, deterministic tie-breaking).
//!   [`BinaryHeapQueue`] is the original heap calendar, kept as the
//!   reference oracle for differential tests and benches.
//! * [`Engine`] / [`World`] — a minimal driver loop for simulations that
//!   want one; larger simulations (the full network model in
//!   `dqos-netsim`) own their loop and use [`EventQueue`] directly.
//! * [`rng`] / [`dist`] — a seedable, version-stable PRNG
//!   (xoshiro256\*\*, implemented in-tree — no `rand` dependency) plus
//!   the distributions the paper's workloads need (exponential, bounded
//!   Pareto, log-normal).
//! * [`pool`] — a scoped std::thread worker pool for parallel sweeps
//!   (one deterministic single-threaded simulation per worker).
//!
//! Determinism contract: given the same seed and the same sequence of
//! `schedule` calls, a simulation built on this kernel replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod exec;
pub mod mcheck;
pub mod pool;
pub mod queue;
pub mod ring;
pub mod rng;
pub mod time;

pub use engine::{Engine, World};
pub use exec::{execute, ExecConfig, ExecEdge, ExecError, ExecResult, Outbox, PartWorld};
pub use pool::{default_workers, par_map};
pub use queue::{BinaryHeapQueue, EventQueue, ScheduledEvent};
pub use ring::{RingMsg, SpscRing};
pub use rng::{SimRng, SplitMix64};
pub use time::{Bandwidth, SimDuration, SimTime};
