//! Seedable, version-stable pseudo-random number generation.
//!
//! The simulation's determinism contract requires that the same seed
//! produce the same stream across crate versions (and across toolchains —
//! the build is fully offline), so we implement SplitMix64 and
//! xoshiro256\*\* (Blackman & Vigna) directly from the reference
//! algorithms instead of depending on `rand`. Seed-stability guarantee:
//! the known-answer vectors in this module's tests pin the exact output
//! streams; any change to them is a breaking change to every recorded
//! simulation result.

/// SplitMix64: the recommended seeder for xoshiro-family generators, and a
/// handy way to derive independent sub-streams from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's simulation PRNG.
///
/// Fast (a few ns per draw), 256-bit state, passes BigCrush; entirely
/// adequate for workload generation (this is a simulator, not a
/// cryptosystem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // The all-zero state is invalid; SplitMix64 cannot produce four
        // zero outputs in a row from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derive an independent sub-stream, e.g. one per traffic generator.
    ///
    /// Mixes the label through SplitMix64 so that `fork(0)` and `fork(1)`
    /// are decorrelated even for adjacent labels.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let mut sm = SplitMix64::new(self.next_u64() ^ label.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        SimRng { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform f64 in `(0, 1]` — safe as the argument of `ln`.
    #[inline]
    pub fn f64_open0(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next();
        }
        // Lemire-style unbiased bounded draw (debiased by rejection).
        let bound = span + 1;
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next();
            let hi128 = ((r as u128 * bound as u128) >> 64) as u64;
            let lo128 = (r as u128 * bound as u128) as u64;
            if lo128 >= threshold {
                return lo + hi128;
            }
        }
    }

    /// A uniform usize index in `[0, n)`. Requires `n > 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.range_u64(0, n as u64 - 1) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Next raw 32-bit output (upper half of a 64-bit draw — the \*\*
    /// scrambler's high bits are its strongest).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fill `dest` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Pin the stream so accidental algorithm changes are caught: these
        // values define the workspace's reproducibility contract.
        let mut r = SimRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(got, again);
        // SplitMix64 known-answer from the reference implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open0();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn range_is_inclusive_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.range_u64(5, 14);
            assert!((5..=14).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn range_mean_is_unbiased() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.range_u64(0, 100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean {mean} too far from 50");
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut master = SimRng::new(99);
        let mut a = master.fork(0);
        let mut b = master.fork(1);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SimRng::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
