//! A miniature explicit-state model checker for the executor's
//! synchronisation protocols — the hand-rolled, dependency-free answer
//! to `loom`.
//!
//! The free-running executor in [`exec`](crate::exec) rests on three
//! small lock-free protocols whose correctness arguments live in
//! comments: the [`SpscRing`](crate::ring::SpscRing) publication
//! contract (payload words must be visible before the tail cursor that
//! announces them), the **null-message safe-time ratchet** (a
//! partition may process local events strictly below the minimum of
//! its in-edge bounds, provided it reads the bounds *before* draining
//! its in-rings), and the **version-vector termination scan** (a run
//! is over when one consistent snapshot shows every head drained and
//! every ring empty). Each is exactly the kind of code where a human
//! review signs off on an interleaving argument that has one
//! unexamined schedule. This module extracts each protocol as an
//! abstract state machine over 2–3 actors and **exhaustively
//! enumerates every interleaving** by depth-first search with state
//! memoisation, checking:
//!
//! * **no lost / stale / reordered record** ([`SpscModel`]) — the ring
//!   consumer reads exactly the word sequence the producer wrote,
//!   across empty, full and wrapped-around cursor states;
//! * **conservative safety** ([`NullMsgModel`]) — no partition ever
//!   processes a local event at or past a message still sitting
//!   undrained in one of its in-rings;
//! * **no deadlock** — from every reachable state, either some actor
//!   can step or the run has terminated. Null messages are what make
//!   this true for the ratchet; the seeded bug that drops them shows
//!   up here as two partitions waiting on each other forever;
//! * **monotone bounds** — the ratchet only ever raises a published
//!   bound (structural in the models, as in the code: every store is
//!   `max(previous, new)`);
//! * **no premature termination** ([`TerminationModel`]) — the scan
//!   never declares a run over while a record is in flight.
//!
//! Spin loops are modelled as *blocking awaits*: re-reading an
//! unchanged value does not change model state, so the only
//! behaviourally distinct step is the read that observes a change —
//! an actor whose condition can never become true therefore shows up
//! as a deadlock, which is how the checker catches the
//! dropped-null-message bug (see the tests). Every individually
//! published atomic value is its own transition; compound actions
//! whose interleavings are provably equivalent to an atomic one (a
//! full ring drain, the consumer-side pair of word reads) are single
//! transitions with the equivalence argued at the model.
//!
//! What this does **not** prove: the abstraction is of the protocol,
//! not the code — a transcription gap between `exec.rs`/`ring.rs` and
//! the model escapes it; weak-memory reorderings are out of scope
//! except where a model makes one explicit (the `SpscModel`'s seeded
//! bug *is* the reordering that demoting the tail store's `Release`
//! to `Relaxed` would allow); and the state spaces are exhaustive only
//! for the small actor/record counts enumerated in the tests.
//! DESIGN.md §8 discusses these limits.

use std::collections::BTreeSet;
use std::fmt::Debug;

/// An abstract transition system the checker can explore.
///
/// States must be small, canonical values (`Ord` + `Clone`); the
/// checker stores every distinct state it visits.
pub trait Model {
    /// One global state: shared variables plus every actor's program
    /// counter and locals.
    type State: Clone + Ord + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every enabled transition from `s`, as `(label, successor)`.
    /// An actor whose next step is a blocking await contributes no
    /// transition while its condition is false.
    fn steps(&self, s: &Self::State) -> Vec<(String, Self::State)>;

    /// Safety property checked in every reachable state; return
    /// `Err(reason)` to report a violation.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Is `s` an acceptable terminal state (all actors done)? A
    /// reachable state with no enabled transition that is *not*
    /// accepting is reported as a deadlock / stranded waiter.
    fn accepting(&self, s: &Self::State) -> bool;
}

/// Why exploration stopped early.
#[derive(Debug)]
pub enum Violation<S> {
    /// The invariant failed in a reachable state.
    Invariant {
        /// The offending state.
        state: S,
        /// The invariant's explanation.
        reason: String,
        /// Labels of the transitions from the initial state here.
        trace: Vec<String>,
    },
    /// A reachable non-accepting state has no enabled transition.
    Deadlock {
        /// The stuck state.
        state: S,
        /// Labels of the transitions from the initial state here.
        trace: Vec<String>,
    },
    /// The state count exceeded the configured bound (the model is
    /// bigger than intended — treat as a modelling error).
    StateLimit(usize),
}

/// Exploration statistics on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Length of the longest trace explored.
    pub max_depth: usize,
}

/// Exhaustively explore every interleaving of `model` by DFS,
/// memoising visited states. Returns statistics, or the first
/// violation found (with a minimal-effort witness trace: the DFS path
/// that reached it).
pub fn check<M: Model>(model: &M, max_states: usize) -> Result<Explored, Violation<M::State>> {
    let init = model.initial();
    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    visited.insert(init.clone());
    // DFS stack: (state, its successors, index of next successor to
    // try). Trace labels are reconstructed from the stack.
    let mut stack: Vec<(M::State, Vec<(String, M::State)>, usize)> = Vec::new();
    let mut stats = Explored { states: 1, transitions: 0, max_depth: 0 };

    let enter = |s: M::State,
                 stack: &mut Vec<(M::State, Vec<(String, M::State)>, usize)>|
     -> Result<(), Violation<M::State>> {
        if let Err(reason) = model.invariant(&s) {
            let trace = stack.iter().map(|(_, succ, i)| succ[i - 1].0.clone()).collect();
            return Err(Violation::Invariant { state: s, reason, trace });
        }
        let succ = model.steps(&s);
        if succ.is_empty() && !model.accepting(&s) {
            let trace = stack.iter().map(|(_, succ, i)| succ[i - 1].0.clone()).collect();
            return Err(Violation::Deadlock { state: s, trace });
        }
        stack.push((s, succ, 0));
        Ok(())
    };

    enter(init, &mut stack)?;
    while !stack.is_empty() {
        stats.max_depth = stats.max_depth.max(stack.len() - 1);
        let Some(top) = stack.last_mut() else { break };
        let (_, succ, next) = top;
        if *next >= succ.len() {
            stack.pop();
            continue;
        }
        let s2 = succ[*next].1.clone();
        *next += 1;
        stats.transitions += 1;
        if visited.insert(s2.clone()) {
            stats.states += 1;
            if stats.states > max_states {
                return Err(Violation::StateLimit(max_states));
            }
            enter(s2, &mut stack)?;
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// Model 1: SPSC ring publication.
// ---------------------------------------------------------------------

/// Producer program counter for the ring model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PPc {
    /// Read the consumer's head cursor and check for space.
    Check,
    /// Write the record's length-prefix word.
    WriteLen,
    /// Write the record's payload word.
    WriteVal,
    /// Publish the advanced tail cursor.
    PubTail,
    /// All records pushed.
    Done,
}

/// Consumer program counter for the ring model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CPc {
    /// Read the producer's tail cursor; await a record (or finish).
    Poll,
    /// Read the record's words out of the buffer.
    Read,
    /// Publish the advanced head cursor, freeing the slot.
    Free,
    /// All records consumed.
    Done,
}

/// Ring capacity, in words. Two-word records (length prefix + one
/// payload word) mean the ring holds two records when full and the
/// third push wraps both cells — so [`SPSC_RECORDS`] = 3 exercises
/// empty, full *and* wraparound in one run.
const SPSC_CAP: u8 = 4;
/// Records pushed per run.
const SPSC_RECORDS: u8 = 3;
/// Payload of record `i` (0-based) is `SPSC_BASE + i`; distinct from
/// the length-prefix word (1) and the never-written sentinel (0) so a
/// stale read is unambiguous.
const SPSC_BASE: u8 = 10;

/// Global state of the SPSC ring model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpscState {
    /// The word buffer; 0 = never written.
    cells: [u8; SPSC_CAP as usize],
    /// Consumer cursor (monotone word count, indexed mod capacity).
    head: u8,
    /// Producer cursor (monotone word count, published).
    tail: u8,
    /// Start cursor of the record the producer is mid-push on.
    pos: u8,
    /// Index of the next record to push (0-based).
    next: u8,
    ppc: PPc,
    cpc: CPc,
    /// Payload words the consumer has read, in order.
    consumed: Vec<u8>,
}

/// Exhaustive model of [`SpscRing`](crate::ring::SpscRing)'s
/// publication contract: one producer pushes [`SPSC_RECORDS`]
/// length-prefixed records through a [`SPSC_CAP`]-word buffer while
/// one consumer pops them. Every cursor load/store and every buffer
/// word write is its own transition, so the checker sees the schedule
/// where the consumer's tail read races each producer step.
///
/// The real ring orders `payload writes → Release tail store`, and
/// `Acquire tail load → payload reads`; the model's correct mode
/// mirrors that (`WriteLen → WriteVal → PubTail`). With
/// `publish_tail_early` set — the seeded bug, equivalent to demoting
/// the tail store to `Relaxed` so it may reorder before the payload
/// write — the producer publishes the tail between the two writes,
/// and the checker finds the schedule where the consumer reads a
/// stale cell: the sentinel on the first lap, the *previous* record's
/// payload after wraparound.
///
/// The consumer's two word reads are one transition: both happen
/// after its tail load and before its head store, and the producer
/// never writes words in `[head, tail)`, so splitting them adds no
/// distinguishable schedule in correct mode (and the bug is on the
/// producer side).
pub struct SpscModel {
    /// Seeded bug: publish the tail before the payload word is
    /// written.
    pub publish_tail_early: bool,
}

impl Model for SpscModel {
    type State = SpscState;

    fn initial(&self) -> SpscState {
        SpscState {
            cells: [0; SPSC_CAP as usize],
            head: 0,
            tail: 0,
            pos: 0,
            next: 0,
            ppc: PPc::Check,
            cpc: CPc::Poll,
            consumed: Vec::new(),
        }
    }

    fn steps(&self, s: &SpscState) -> Vec<(String, SpscState)> {
        let mut out = Vec::new();
        let at = |cursor: u8| (cursor % SPSC_CAP) as usize;

        // Producer.
        match s.ppc {
            PPc::Check => {
                // Blocking await while the ring lacks space for the
                // two-word record (cursors are monotone, so occupancy
                // is their difference — a full ring really holds
                // capacity words, no slack slot).
                if SPSC_CAP - (s.tail - s.head) >= 2 {
                    let mut n = s.clone();
                    n.pos = s.tail;
                    n.ppc = PPc::WriteLen;
                    out.push((format!("P: space for rec{}", s.next), n));
                }
            }
            PPc::WriteLen => {
                let mut n = s.clone();
                n.cells[at(s.pos)] = 1; // payload length
                n.ppc = if self.publish_tail_early { PPc::PubTail } else { PPc::WriteVal };
                out.push((format!("P: len@{}", at(s.pos)), n));
            }
            PPc::WriteVal => {
                let mut n = s.clone();
                n.cells[at(s.pos + 1)] = SPSC_BASE + s.next;
                if self.publish_tail_early {
                    // Bug order: the tail went out first; record done.
                    advance_record(&mut n);
                } else {
                    n.ppc = PPc::PubTail;
                }
                out.push((format!("P: val@{}", at(s.pos + 1)), n));
            }
            PPc::PubTail => {
                let mut n = s.clone();
                n.tail = s.pos + 2;
                if self.publish_tail_early {
                    n.ppc = PPc::WriteVal;
                } else {
                    advance_record(&mut n);
                }
                out.push((format!("P: tail->{}", n.tail), n));
            }
            PPc::Done => {}
        }

        // Consumer.
        match s.cpc {
            CPc::Poll => {
                if s.tail != s.head {
                    let mut n = s.clone();
                    n.cpc = CPc::Read;
                    out.push((format!("C: tail={}", s.tail), n));
                } else if s.consumed.len() == SPSC_RECORDS as usize {
                    let mut n = s.clone();
                    n.cpc = CPc::Done;
                    out.push(("C: done".to_string(), n));
                }
                // else: blocking await on an empty ring.
            }
            CPc::Read => {
                let mut n = s.clone();
                let len = s.cells[at(s.head)];
                let val = s.cells[at(s.head + 1)];
                n.consumed.push(val);
                n.cpc = CPc::Free;
                out.push((format!("C: read len={len} val={val}"), n));
            }
            CPc::Free => {
                let mut n = s.clone();
                n.head = s.head + 2;
                n.cpc = CPc::Poll;
                out.push((format!("C: head->{}", n.head), n));
            }
            CPc::Done => {}
        }
        out
    }

    fn invariant(&self, s: &SpscState) -> Result<(), String> {
        if s.tail - s.head > SPSC_CAP {
            return Err(format!("cursor overrun: head {} tail {}", s.head, s.tail));
        }
        for (i, &v) in s.consumed.iter().enumerate() {
            let expect = SPSC_BASE + i as u8;
            if v != expect {
                return Err(format!(
                    "record {i} read {v}, expected {expect} (stale or reordered word)"
                ));
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &SpscState) -> bool {
        s.ppc == PPc::Done && s.cpc == CPc::Done
    }
}

/// Producer bookkeeping after a record is fully pushed: next record or
/// done.
fn advance_record(n: &mut SpscState) {
    n.next += 1;
    n.ppc = if n.next >= SPSC_RECORDS { PPc::Done } else { PPc::Check };
}

// ---------------------------------------------------------------------
// Model 2: the null-message safe-time ratchet.
// ---------------------------------------------------------------------

/// Per-partition program counter for the ratchet model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NPc {
    /// Start of an iteration (about to read the in-edge bound).
    Top,
    /// First half done (bound read in correct mode, rings drained in
    /// the seeded reversed-order mode).
    Mid,
    /// Popping local events strictly below the cached safe time.
    Burst,
}

/// "No value" sentinel for calendar heads (mirrors `u64::MAX`).
const NONE: u8 = u8::MAX;
/// Published bounds saturate here, so the post-drain ratchet staircase
/// terminates instead of climbing to 255 one lookahead at a time.
/// Must exceed every event time a test scenario uses — a bound at the
/// cap still promises "no future send below any real event".
const BOUND_CAP: u8 = 31;

/// Global state of the ratchet model (two partitions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NullMsgState {
    /// Local calendars (sorted ascending; merged deposits included).
    queue: [Vec<u8>; 2],
    /// In-rings: deposits from the peer, in push order.
    inbox: [Vec<u8>; 2],
    /// `bound[p]` — the bound partition `p` publishes on its out-edge.
    bound: [u8; 2],
    /// Safe time each partition cached at its last bound read.
    s: [u8; 2],
    pc: [NPc; 2],
    /// Event times each partition has processed, in order.
    processed: [Vec<u8>; 2],
}

/// Exhaustive model of the free-running executor's conservative loop
/// for two partitions: read the in-edge bound, drain the in-ring,
/// process local events strictly below the cached bound, publish
/// `max(previous, min(head, S) + lookahead)` on the out-edge.
/// Processing an event listed in `sends` deposits `t + lookahead`
/// into the peer's in-ring as part of the same transition (the ring
/// push is the linearisation point of a send; its internals are
/// [`SpscModel`]'s problem). A full drain is likewise one transition:
/// the ring is FIFO and a record pushed mid-drain is either caught by
/// it or left for the next iteration — indistinguishable from the
/// push happening entirely before or after.
///
/// An iteration is only *enabled* when it could change state (there is
/// something to drain, something processable, or the end-of-iteration
/// publish would raise the bound); a partition spinning with none of
/// those is a blocking await. Two seeded bugs:
///
/// * `skip_null_messages` — the partition never publishes bounds, so
///   an idle partition stops ratcheting its neighbour forward and the
///   checker reports the classic conservative-simulation deadlock;
/// * `drain_before_bound` — the iteration drains *before* reading the
///   bound, opening the window the module docs of `exec.rs` warn
///   about: a deposit lands after the drain, the subsequent bound
///   read returns a freshly raised bound, and the partition bursts
///   past the undrained deposit. The checker reports the invariant
///   violation.
pub struct NullMsgModel {
    /// Cross-partition latency (the executor's per-edge lookahead).
    pub lookahead: u8,
    /// `events[p]` — partition `p`'s initial calendar (ascending).
    pub events: [Vec<u8>; 2],
    /// `sends[p]` — event times whose processing deposits
    /// `t + lookahead` into the peer's in-ring.
    pub sends: [Vec<u8>; 2],
    /// Seeded bug: drop all bound publication (no null messages).
    pub skip_null_messages: bool,
    /// Seeded bug: reverse the load-bearing read-bounds-then-drain
    /// order.
    pub drain_before_bound: bool,
}

impl NullMsgModel {
    /// Calendar head of partition `p`, or [`NONE`] when drained.
    fn head(s: &NullMsgState, p: usize) -> u8 {
        s.queue[p].first().copied().unwrap_or(NONE)
    }

    /// The bound partition `p` would publish right now given cached
    /// safe time `sp`: `min(head, S) + L`, saturating at the cap.
    fn ratchet(&self, s: &NullMsgState, p: usize, sp: u8) -> u8 {
        Self::head(s, p).min(sp).saturating_add(self.lookahead).min(BOUND_CAP)
    }
}

impl Model for NullMsgModel {
    type State = NullMsgState;

    fn initial(&self) -> NullMsgState {
        // Bounds start at (global minimum head) + lookahead, exactly
        // like `build_ctl` in exec.rs.
        let h0 = self.events.iter().filter_map(|e| e.first().copied()).min().unwrap_or(NONE);
        let b0 = h0.saturating_add(self.lookahead).min(BOUND_CAP);
        NullMsgState {
            queue: self.events.clone(),
            inbox: [Vec::new(), Vec::new()],
            bound: [b0; 2],
            s: [0; 2],
            pc: [NPc::Top; 2],
            processed: [Vec::new(), Vec::new()],
        }
    }

    fn steps(&self, s: &NullMsgState) -> Vec<(String, NullMsgState)> {
        let mut out = Vec::new();
        for p in 0..2usize {
            let q = 1 - p;
            match s.pc[p] {
                NPc::Top => {
                    // Gate: an iteration that would drain nothing,
                    // process nothing and publish nothing is a spin
                    // re-reading unchanged values — a blocking await.
                    let in_bound = s.bound[q];
                    let has_work = !s.inbox[p].is_empty() || Self::head(s, p) < in_bound;
                    let would_publish =
                        !self.skip_null_messages && self.ratchet(s, p, in_bound) > s.bound[p];
                    if !(has_work || would_publish) {
                        continue;
                    }
                    let mut n = s.clone();
                    if self.drain_before_bound {
                        // Seeded bug: drain first, read the bound in
                        // the Mid step.
                        let drained = std::mem::take(&mut n.inbox[p]);
                        n.queue[p].extend(drained);
                        n.queue[p].sort_unstable();
                        n.pc[p] = NPc::Mid;
                        out.push((format!("p{p}: drain (early)"), n));
                    } else {
                        n.s[p] = in_bound;
                        n.pc[p] = NPc::Mid;
                        out.push((format!("p{p}: S={in_bound}"), n));
                    }
                }
                NPc::Mid => {
                    let mut n = s.clone();
                    if self.drain_before_bound {
                        n.s[p] = s.bound[q];
                        n.pc[p] = NPc::Burst;
                        out.push((format!("p{p}: S={} (late)", n.s[p]), n));
                    } else {
                        let drained = std::mem::take(&mut n.inbox[p]);
                        n.queue[p].extend(drained);
                        n.queue[p].sort_unstable();
                        n.pc[p] = NPc::Burst;
                        out.push((format!("p{p}: drain"), n));
                    }
                }
                NPc::Burst => {
                    let head = Self::head(s, p);
                    if head < s.s[p] {
                        let mut n = s.clone();
                        n.queue[p].remove(0);
                        n.processed[p].push(head);
                        if self.sends[p].contains(&head) {
                            n.inbox[q].push(head.saturating_add(self.lookahead));
                        }
                        out.push((format!("p{p}: pop@{head}"), n));
                    } else {
                        // Burst over: publish the out-bound (the null
                        // message) and loop back.
                        let mut n = s.clone();
                        if !self.skip_null_messages {
                            let b = self.ratchet(s, p, s.s[p]);
                            n.bound[p] = n.bound[p].max(b);
                        }
                        n.pc[p] = NPc::Top;
                        out.push((format!("p{p}: publish b={}", n.bound[p]), n));
                    }
                }
            }
        }
        out
    }

    fn invariant(&self, s: &NullMsgState) -> Result<(), String> {
        for p in 0..2usize {
            if s.processed[p].windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("p{p} processed out of order: {:?}", s.processed[p]));
            }
            // Conservative safety: a deposit the partition has not yet
            // merged must lie strictly after everything it processed
            // (equal times would tie-break by key in the serial
            // oracle, which this partition can no longer honour).
            if let (Some(&last), Some(&pending)) =
                (s.processed[p].last(), s.inbox[p].iter().min())
            {
                if pending <= last {
                    return Err(format!(
                        "p{p} popped event@{last} past pending deposit@{pending}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &NullMsgState) -> bool {
        (0..2).all(|p| s.queue[p].is_empty() && s.inbox[p].is_empty())
    }
}

// ---------------------------------------------------------------------
// Model 3: the version-vector termination scan.
// ---------------------------------------------------------------------

/// Worker program counter for the termination model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum WPc {
    /// Awaiting a record in the in-ring.
    Idle,
    /// Version bumped odd; about to drain.
    Drain,
    /// Processing drained records (each may push to the peer).
    Proc,
}

/// Scanner program counter for the termination model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SPc {
    /// Between scans.
    Idle,
    /// Version sum captured (all even); about to check ring 0.
    Ver1,
    /// Ring 0 empty; about to check ring 1.
    Ring0,
    /// Ring 1 empty; about to re-read the version sum.
    Ring1,
    /// Scan succeeded; `done` raised.
    Done,
}

/// Global state of the termination model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TermState {
    /// Per-worker seqlock versions (odd = mutating).
    ver: [u8; 2],
    /// `ring[w]` — records inbound to worker `w`.
    ring: [Vec<u8>; 2],
    /// Per-worker drained-but-unprocessed records.
    queue: [Vec<u8>; 2],
    wpc: [WPc; 2],
    spc: SPc,
    /// Version sum the scanner captured at the start of its scan.
    sum: u8,
    /// The termination flag.
    done: bool,
}

/// Exhaustive model of the executor's barrier-free termination scan.
/// Two workers relay a record chain (worker 1 starts with record `2`
/// in its in-ring; processing record `v` pushes `v - 1` to the peer
/// when `v > 1`), with the seqlock discipline of the real loop: bump
/// the version odd, drain, process (pushing mid-iteration), bump it
/// even. A scanner — in the real code any idle worker; *which* thread
/// scans is irrelevant because scanning only reads — captures the
/// version sum, checks each ring empty in turn, re-reads the sum, and
/// declares the run over on a match. Each check is its own transition
/// so worker steps interleave anywhere inside the scan.
///
/// Calendar heads are elided (every drained record is processed before
/// the version goes even, so published heads are always "drained"
/// here); their role in quiescence detection is covered by
/// [`NullMsgModel`]. This model isolates the version/ring race: with
/// `skip_version_reread` set — the seeded bug — the scanner trusts its
/// ring checks alone, and the checker finds the schedule where worker
/// 1 drains its ring *after* the scanner looked at ring 0 and pushes
/// to ring 0 *before* the scanner looks at ring 1: both checks pass,
/// yet a record is in flight, and the run "terminates" losing it.
pub struct TerminationModel {
    /// Seeded bug: skip the version-sum re-read.
    pub skip_version_reread: bool,
}

impl Model for TerminationModel {
    type State = TermState;

    fn initial(&self) -> TermState {
        TermState {
            ver: [0; 2],
            ring: [Vec::new(), vec![2]],
            queue: [Vec::new(), Vec::new()],
            wpc: [WPc::Idle; 2],
            spc: SPc::Idle,
            sum: 0,
            done: false,
        }
    }

    fn steps(&self, s: &TermState) -> Vec<(String, TermState)> {
        let mut out = Vec::new();

        // Workers.
        for w in 0..2usize {
            match s.wpc[w] {
                WPc::Idle => {
                    // Blocking await on an empty in-ring.
                    if !s.ring[w].is_empty() {
                        let mut n = s.clone();
                        n.ver[w] += 1;
                        n.wpc[w] = WPc::Drain;
                        out.push((format!("w{w}: ver->{} (odd)", n.ver[w]), n));
                    }
                }
                WPc::Drain => {
                    let mut n = s.clone();
                    let drained = std::mem::take(&mut n.ring[w]);
                    n.queue[w].extend(drained);
                    n.wpc[w] = WPc::Proc;
                    out.push((format!("w{w}: drain"), n));
                }
                WPc::Proc => {
                    let mut n = s.clone();
                    if let Some(&v) = s.queue[w].first() {
                        n.queue[w].remove(0);
                        if v > 1 {
                            n.ring[1 - w].push(v - 1);
                        }
                        out.push((format!("w{w}: proc {v}"), n));
                    } else {
                        n.ver[w] += 1;
                        n.wpc[w] = WPc::Idle;
                        out.push((format!("w{w}: ver->{} (even)", n.ver[w]), n));
                    }
                }
            }
        }

        // Scanner.
        match s.spc {
            SPc::Idle => {
                // An attempt while any version is odd fails without
                // changing state — a blocking await (reduction: the
                // retry that matters is the one seeing all-even).
                if !s.done && s.ver.iter().all(|v| v % 2 == 0) {
                    let mut n = s.clone();
                    n.sum = s.ver[0] + s.ver[1];
                    n.spc = SPc::Ver1;
                    out.push((format!("scan: sum1={}", n.sum), n));
                }
            }
            SPc::Ver1 => {
                let mut n = s.clone();
                if s.ring[0].is_empty() {
                    n.spc = SPc::Ring0;
                    out.push(("scan: ring0 empty".to_string(), n));
                } else {
                    n.spc = SPc::Idle;
                    out.push(("scan: ring0 busy, abort".to_string(), n));
                }
            }
            SPc::Ring0 => {
                let mut n = s.clone();
                if s.ring[1].is_empty() {
                    n.spc = SPc::Ring1;
                    out.push(("scan: ring1 empty".to_string(), n));
                } else {
                    n.spc = SPc::Idle;
                    out.push(("scan: ring1 busy, abort".to_string(), n));
                }
            }
            SPc::Ring1 => {
                let mut n = s.clone();
                if self.skip_version_reread {
                    n.done = true;
                    n.spc = SPc::Done;
                    out.push(("scan: done (no re-read)".to_string(), n));
                } else {
                    let sum2 = s.ver[0] + s.ver[1];
                    let quiet = s.ver.iter().all(|v| v % 2 == 0);
                    if quiet && sum2 == s.sum {
                        n.done = true;
                        n.spc = SPc::Done;
                        out.push((format!("scan: done (sum={sum2})"), n));
                    } else {
                        n.spc = SPc::Idle;
                        out.push((format!("scan: sum moved {}->{sum2}, abort", s.sum), n));
                    }
                }
            }
            SPc::Done => {}
        }
        out
    }

    fn invariant(&self, s: &TermState) -> Result<(), String> {
        if s.done {
            for w in 0..2usize {
                if !s.ring[w].is_empty() || !s.queue[w].is_empty() {
                    return Err(format!(
                        "premature termination: record in flight to w{w} \
                         (ring {:?}, queue {:?})",
                        s.ring[w], s.queue[w]
                    ));
                }
                if s.ver[w] % 2 == 1 {
                    return Err(format!("terminated while w{w} was mid-iteration"));
                }
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &TermState) -> bool {
        s.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_publication_is_exact_for_all_schedules() {
        // 3 two-word records through a 4-word buffer: exercises empty
        // (start), full (after two records) and wraparound (record 3
        // reuses cells 0–1) under every interleaving of cursor
        // loads/stores and word writes.
        let m = SpscModel { publish_tail_early: false };
        let stats = match check(&m, 2_000_000) {
            Ok(s) => s,
            Err(v) => panic!("{v:?}"),
        };
        assert!(stats.states > 20, "trivial exploration: {stats:?}");
    }

    #[test]
    fn spsc_early_tail_publish_is_caught() {
        // The seeded bug: tail published before the payload word — the
        // reordering a Relaxed tail store would allow. Some schedule
        // has the consumer read the sentinel (first lap) or the
        // previous record's payload (after wraparound).
        let m = SpscModel { publish_tail_early: true };
        match check(&m, 2_000_000) {
            Err(Violation::Invariant { reason, .. }) => {
                assert!(reason.contains("stale"), "unexpected reason: {reason}");
            }
            other => panic!("expected a stale-read violation, got {other:?}"),
        }
    }

    #[test]
    fn null_msg_ratchet_is_exact_for_all_schedules() {
        // Two-way chatter: both partitions send and receive, and the
        // tail of the run is pure null-message ratcheting (p0's last
        // event at 9 is processable only after several bound bumps).
        let m = NullMsgModel {
            lookahead: 2,
            events: [vec![1, 5, 9], vec![2, 6]],
            sends: [vec![1, 9], vec![2]],
            skip_null_messages: false,
            drain_before_bound: false,
        };
        let stats = match check(&m, 2_000_000) {
            Ok(s) => s,
            Err(v) => panic!("{v:?}"),
        };
        assert!(stats.states > 50, "trivial exploration: {stats:?}");

        // The drain-order scenario (see the seeded-bug test below)
        // must be clean with the correct ordering.
        let m = NullMsgModel {
            lookahead: 2,
            events: [vec![4], vec![1]],
            sends: [vec![], vec![1]],
            skip_null_messages: false,
            drain_before_bound: false,
        };
        if let Err(v) = check(&m, 2_000_000) {
            panic!("{v:?}");
        }
    }

    #[test]
    fn null_msg_without_null_messages_deadlocks() {
        // p0 processes its event at 1 under the initial bound, then
        // needs p1's bound to rise past 5; p1 needs p0's to rise past
        // 3 (the deposit). Neither ever publishes — the classic
        // conservative-simulation deadlock the null messages exist to
        // break, which the checker must report as a stuck state with
        // events still queued.
        let m = NullMsgModel {
            lookahead: 2,
            events: [vec![1, 5], vec![10]],
            sends: [vec![1], vec![]],
            skip_null_messages: true,
            drain_before_bound: false,
        };
        match check(&m, 2_000_000) {
            Err(Violation::Deadlock { state, .. }) => {
                assert!(
                    state.queue.iter().any(|q| !q.is_empty()),
                    "deadlock should strand unprocessed events: {state:?}"
                );
            }
            other => panic!("expected a ratchet deadlock, got {other:?}"),
        }
    }

    #[test]
    fn null_msg_drain_before_bound_read_is_caught() {
        // The load-bearing order reversed: p0 drains (empty), p1
        // processes its event at 1 and deposits at 3, p1 publishes
        // bound 5, p0 *then* reads S = 5 and bursts past the pending
        // deposit — processing 4 with 3 still undrained.
        let m = NullMsgModel {
            lookahead: 2,
            events: [vec![4], vec![1]],
            sends: [vec![], vec![1]],
            skip_null_messages: false,
            drain_before_bound: true,
        };
        match check(&m, 2_000_000) {
            Err(Violation::Invariant { reason, .. }) => {
                assert!(reason.contains("pending deposit"), "unexpected reason: {reason}");
            }
            other => panic!("expected a conservative-safety violation, got {other:?}"),
        }
    }

    #[test]
    fn termination_scan_is_exact_for_all_schedules() {
        let m = TerminationModel { skip_version_reread: false };
        let stats = match check(&m, 2_000_000) {
            Ok(s) => s,
            Err(v) => panic!("{v:?}"),
        };
        assert!(stats.states > 30, "trivial exploration: {stats:?}");
    }

    #[test]
    fn termination_scan_without_version_reread_is_caught() {
        // The scanner checks ring 0 (empty), worker 1 then drains ring
        // 1 and relays a record into ring 0, the scanner checks ring 1
        // (now empty): both checks passed but a record is in flight.
        // Only the version re-read notices worker 1's movement. The
        // same bug also lets the scan finish while a worker is still
        // odd (mid-iteration) — either witness is the seeded defect.
        let m = TerminationModel { skip_version_reread: true };
        match check(&m, 2_000_000) {
            Err(Violation::Invariant { reason, .. }) => {
                assert!(
                    reason.contains("in flight") || reason.contains("mid-iteration"),
                    "unexpected reason: {reason}"
                );
            }
            other => panic!("expected premature termination, got {other:?}"),
        }
    }

    /// The checker itself: a two-thread toy model with a known race
    /// (non-atomic increment) must produce the lost-update state.
    struct RaceyIncrement;
    impl Model for RaceyIncrement {
        type State = (u8, [u8; 2], [u8; 2]); // shared, per-thread pc, per-thread local
        fn initial(&self) -> Self::State {
            (0, [0, 0], [0, 0])
        }
        fn steps(&self, s: &Self::State) -> Vec<(String, Self::State)> {
            let mut out = Vec::new();
            for t in 0..2 {
                let (sh, pc, loc) = *s;
                match pc[t] {
                    0 => {
                        let mut n = (sh, pc, loc);
                        n.2[t] = sh; // read
                        n.1[t] = 1;
                        out.push((format!("t{t}: read"), n));
                    }
                    1 => {
                        let mut n = (sh, pc, loc);
                        n.0 = loc[t] + 1; // write back
                        n.1[t] = 2;
                        out.push((format!("t{t}: write"), n));
                    }
                    _ => {}
                }
            }
            out
        }
        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            if s.1 == [2, 2] && s.0 != 2 {
                return Err(format!("lost update: shared = {}", s.0));
            }
            Ok(())
        }
        fn accepting(&self, s: &Self::State) -> bool {
            s.1 == [2, 2]
        }
    }

    #[test]
    fn checker_finds_classic_lost_update() {
        match check(&RaceyIncrement, 10_000) {
            Err(Violation::Invariant { reason, trace, .. }) => {
                assert!(reason.contains("lost update"));
                assert_eq!(trace.len(), 4, "witness should be a full interleaving: {trace:?}");
            }
            other => panic!("expected lost update, got {other:?}"),
        }
    }
}
