//! A miniature explicit-state model checker for the executor's
//! synchronisation protocols — the hand-rolled, dependency-free answer
//! to `loom`.
//!
//! [`exec`](crate::exec) rests on two small lock-free protocols whose
//! correctness arguments live in comments: the [`StopBarrier`]
//! rendezvous (reusable spinning barrier that can be abandoned when the
//! stop flag rises) and the **per-pop inbox fence** (a receiver must
//! not pop a local event at or past the earliest undrained deposit).
//! Both are exactly the kind of code where a human review signs off on
//! an interleaving argument that has one unexamined schedule. This
//! module extracts each protocol as an abstract state machine over 2–3
//! threads and **exhaustively enumerates every interleaving** by
//! depth-first search with state memoisation, checking:
//!
//! * **no stranded waiter / no deadlock** — from every reachable state,
//!   either some thread can step or all threads have terminated;
//! * **no lost stop signal** — once `stop` is raised, every waiter
//!   eventually exits its wait;
//! * **leader uniqueness** — each barrier generation elects exactly one
//!   leader;
//! * **no fence violation** — the receiver never processes a local
//!   event at or past a pending (undrained) inbox deposit.
//!
//! Spin loops are modelled as *blocking awaits*: re-reading an
//! unchanged value does not change model state, so the only
//! behaviourally distinct step is the read that observes a change —
//! a waiter whose condition can never become true therefore shows up
//! as a deadlock, which is how the checker catches the
//! dropped-generation-bump bug (see the tests). Every individual
//! atomic load/store/rmw is its own transition; blocks executed under
//! a held `Mutex` are single transitions (the lock serialises them).
//!
//! What this does **not** prove: the abstraction is of the protocol,
//! not the code — a transcription gap between `exec.rs` and the model
//! escapes it; weak-memory reorderings are out of scope (the real code
//! is `SeqCst` throughout, and `dqos-tidy` enforces that any weaker
//! ordering carries a written justification); and the state spaces are
//! exhaustive only for the small thread/round counts enumerated in the
//! tests. DESIGN.md §8 discusses these limits.
//!
//! [`StopBarrier`]: crate::exec

use std::collections::BTreeSet;
use std::fmt::Debug;

/// An abstract transition system the checker can explore.
///
/// States must be small, canonical values (`Ord` + `Clone`); the
/// checker stores every distinct state it visits.
pub trait Model {
    /// One global state: shared variables plus every thread's program
    /// counter and locals.
    type State: Clone + Ord + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every enabled transition from `s`, as `(label, successor)`.
    /// A thread whose next step is a blocking await contributes no
    /// transition while its condition is false.
    fn steps(&self, s: &Self::State) -> Vec<(String, Self::State)>;

    /// Safety property checked in every reachable state; return
    /// `Err(reason)` to report a violation.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Is `s` an acceptable terminal state (all threads done)? A
    /// reachable state with no enabled transition that is *not*
    /// accepting is reported as a deadlock / stranded waiter.
    fn accepting(&self, s: &Self::State) -> bool;
}

/// Why exploration stopped early.
#[derive(Debug)]
pub enum Violation<S> {
    /// The invariant failed in a reachable state.
    Invariant {
        /// The offending state.
        state: S,
        /// The invariant's explanation.
        reason: String,
        /// Labels of the transitions from the initial state here.
        trace: Vec<String>,
    },
    /// A reachable non-accepting state has no enabled transition.
    Deadlock {
        /// The stuck state.
        state: S,
        /// Labels of the transitions from the initial state here.
        trace: Vec<String>,
    },
    /// The state count exceeded the configured bound (the model is
    /// bigger than intended — treat as a modelling error).
    StateLimit(usize),
}

/// Exploration statistics on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Length of the longest trace explored.
    pub max_depth: usize,
}

/// Exhaustively explore every interleaving of `model` by DFS,
/// memoising visited states. Returns statistics, or the first
/// violation found (with a minimal-effort witness trace: the DFS path
/// that reached it).
pub fn check<M: Model>(model: &M, max_states: usize) -> Result<Explored, Violation<M::State>> {
    let init = model.initial();
    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    visited.insert(init.clone());
    // DFS stack: (state, its successors, index of next successor to
    // try). Trace labels are reconstructed from the stack.
    let mut stack: Vec<(M::State, Vec<(String, M::State)>, usize)> = Vec::new();
    let mut stats = Explored { states: 1, transitions: 0, max_depth: 0 };

    let enter = |s: M::State,
                 stack: &mut Vec<(M::State, Vec<(String, M::State)>, usize)>|
     -> Result<(), Violation<M::State>> {
        if let Err(reason) = model.invariant(&s) {
            let trace = stack.iter().map(|(_, succ, i)| succ[i - 1].0.clone()).collect();
            return Err(Violation::Invariant { state: s, reason, trace });
        }
        let succ = model.steps(&s);
        if succ.is_empty() && !model.accepting(&s) {
            let trace = stack.iter().map(|(_, succ, i)| succ[i - 1].0.clone()).collect();
            return Err(Violation::Deadlock { state: s, trace });
        }
        stack.push((s, succ, 0));
        Ok(())
    };

    enter(init, &mut stack)?;
    while !stack.is_empty() {
        stats.max_depth = stats.max_depth.max(stack.len() - 1);
        let Some(top) = stack.last_mut() else { break };
        let (_, succ, next) = top;
        if *next >= succ.len() {
            stack.pop();
            continue;
        }
        let s2 = succ[*next].1.clone();
        *next += 1;
        stats.transitions += 1;
        if visited.insert(s2.clone()) {
            stats.states += 1;
            if stats.states > max_states {
                return Err(Violation::StateLimit(max_states));
            }
            enter(s2, &mut stack)?;
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// Model 1: the StopBarrier rendezvous.
// ---------------------------------------------------------------------

/// Where a barrier thread is in its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum BPc {
    /// About to read `gen` into `my_gen` (start of `wait`).
    ReadGen,
    /// About to `fetch_add` the count.
    FetchAdd,
    /// Leader path: about to `count.store(0)`.
    LeaderReset,
    /// Leader path: about to `gen.store(my_gen + 1)`.
    LeaderBump,
    /// Waiter path: blocked until `gen != my_gen` or `stop`.
    Await,
    /// Between rounds / after the last round.
    Done,
}

/// Global state of the barrier model.
///
/// `gen` wraps modulo a small base so the state space stays finite;
/// the real code uses `usize` with `wrapping_add`, and the protocol
/// only ever compares for (in)equality between values at most one
/// generation apart, so any modulus > 2 is faithful.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BarrierState {
    count: u8,
    generation: u8,
    stop: bool,
    pc: Vec<BPc>,
    my_gen: Vec<u8>,
    /// Round each thread is on (0..rounds, or rounds when finished).
    round: Vec<u8>,
    /// `leaders[r]` = how many threads returned leader in round `r`.
    leaders: Vec<u8>,
    /// How many threads have exited via the stop path (`wait -> None`).
    aborted: u8,
}

/// Exhaustive model of [`StopBarrier::wait`] as used by the executor:
/// `threads` workers each rendezvous `rounds` times. If
/// `die_at_round` is `Some((t, r))`, thread `t` raises `stop` instead
/// of entering its round-`r` wait — modelling a worker that fails (the
/// `fail()` path or the `StopOnPanic` guard) while the others are in
/// or entering the barrier. If `drop_gen_bump` is set, the leader
/// "forgets" the generation store — the seeded bug the checker must
/// catch as a deadlock (stranded waiters).
///
/// [`StopBarrier::wait`]: crate::exec
pub struct BarrierModel {
    /// Worker count (the real executor runs one per partition).
    pub threads: usize,
    /// Rendezvous per worker (epochs + final termination barrier).
    pub rounds: u8,
    /// Optional failure injection: `(thread, round)`.
    pub die_at_round: Option<(usize, u8)>,
    /// Seeded bug: leader skips the generation bump.
    pub drop_gen_bump: bool,
}

/// Modulus for the abstract generation counter (see [`BarrierState`]).
const GEN_MOD: u8 = 4;

impl Model for BarrierModel {
    type State = BarrierState;

    fn initial(&self) -> BarrierState {
        BarrierState {
            count: 0,
            generation: 0,
            stop: false,
            pc: vec![BPc::ReadGen; self.threads],
            my_gen: vec![0; self.threads],
            round: vec![0; self.threads],
            leaders: vec![0; self.rounds as usize],
            aborted: 0,
        }
    }

    fn steps(&self, s: &BarrierState) -> Vec<(String, BarrierState)> {
        let mut out = Vec::new();
        for t in 0..self.threads {
            let mut n = s.clone();
            let label;
            match s.pc[t] {
                BPc::ReadGen => {
                    if self.die_at_round == Some((t, s.round[t])) {
                        // The thread fails instead of entering the
                        // wait: raises stop and leaves (fail() or the
                        // StopOnPanic drop guard).
                        n.stop = true;
                        n.pc[t] = BPc::Done;
                        n.round[t] = self.rounds;
                        label = format!("t{t}: die(stop=1)");
                    } else {
                        n.my_gen[t] = s.generation;
                        n.pc[t] = BPc::FetchAdd;
                        label = format!("t{t}: my_gen={}", s.generation);
                    }
                }
                BPc::FetchAdd => {
                    n.count = s.count + 1;
                    if n.count as usize == self.threads {
                        n.pc[t] = BPc::LeaderReset;
                        label = format!("t{t}: count->{} (last)", n.count);
                    } else {
                        n.pc[t] = BPc::Await;
                        label = format!("t{t}: count->{}", n.count);
                    }
                }
                BPc::LeaderReset => {
                    n.count = 0;
                    n.pc[t] = BPc::LeaderBump;
                    label = format!("t{t}: count=0");
                }
                BPc::LeaderBump => {
                    if !self.drop_gen_bump {
                        n.generation = (s.my_gen[t] + 1) % GEN_MOD;
                    }
                    n.leaders[s.round[t] as usize] += 1;
                    advance_round(&mut n, t, self.rounds);
                    label = format!("t{t}: gen->{} leader r{}", n.generation, s.round[t]);
                }
                BPc::Await => {
                    // Blocking await (see module docs): enabled only
                    // when the spin would observe a change. The real
                    // loop checks `gen` first, then `stop`.
                    if s.generation != s.my_gen[t] {
                        advance_round(&mut n, t, self.rounds);
                        label = format!("t{t}: released r{}", s.round[t]);
                    } else if s.stop {
                        n.pc[t] = BPc::Done;
                        n.round[t] = self.rounds;
                        n.aborted += 1;
                        label = format!("t{t}: abandoned");
                    } else {
                        continue;
                    }
                }
                BPc::Done => continue,
            }
            out.push((label, n));
        }
        out
    }

    fn invariant(&self, s: &BarrierState) -> Result<(), String> {
        for (r, &l) in s.leaders.iter().enumerate() {
            if l > 1 {
                return Err(format!("round {r} elected {l} leaders"));
            }
        }
        // A terminated run must have consistent leader counts: in a
        // stop-free run every completed round has exactly one leader.
        if s.pc.iter().all(|&p| p == BPc::Done) && !s.stop {
            for (r, &l) in s.leaders.iter().enumerate() {
                if l != 1 {
                    return Err(format!("run finished but round {r} had {l} leaders"));
                }
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &BarrierState) -> bool {
        s.pc.iter().all(|&p| p == BPc::Done)
    }
}

/// Move thread `t` to its next round (or `Done` after the last).
fn advance_round(n: &mut BarrierState, t: usize, rounds: u8) {
    n.round[t] += 1;
    if n.round[t] >= rounds {
        n.pc[t] = BPc::Done;
    } else {
        n.pc[t] = BPc::ReadGen;
    }
}

// ---------------------------------------------------------------------
// Model 2: the per-pop inbox fence.
// ---------------------------------------------------------------------

/// Global state of the fence model. Times are small integers; `NONE`
/// (u8::MAX) plays the role of `u64::MAX` in the real slots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FenceState {
    /// Producer's published clock.
    p_clock: u8,
    /// Producer's remaining local events (sorted ascending).
    p_events: Vec<u8>,
    /// Consumer's calendar (sorted ascending).
    c_queue: Vec<u8>,
    /// Consumer's undrained inbox deposits (sorted ascending).
    c_inbox: Vec<u8>,
    /// Consumer's `inbox_min` atomic.
    c_inbox_min: u8,
    /// Consumer program counter.
    c_pc: FPc,
    /// Bound the consumer last computed.
    c_bound: u8,
    /// Times the consumer has processed, in order.
    processed: Vec<u8>,
    /// Producer done flag (all events handled, clock raised to NONE).
    p_done: bool,
}

/// Consumer program counter for the fence model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FPc {
    /// Top of the executor 'main loop: drain inbox, publish clock.
    Drain,
    /// Read the producer's clock, compute the burst bound.
    Bound,
    /// Per-pop: check fence + bound, pop one event or loop back.
    Pop,
    /// All work done.
    Done,
}

/// Sentinel for "no value" (mirrors `u64::MAX`).
const NONE: u8 = u8::MAX;

/// Exhaustive model of the conservative executor's inbox-fence
/// protocol between one producer and one consumer partition.
///
/// The producer owns events `p_events`; handling the event at time `t`
/// deposits a message for the consumer at `t + lookahead` (the
/// cross-partition send) and then raises its published clock to its
/// next event (or "idle"). The deposit — push + `inbox_min` fetch_min
/// + receiver-clock fetch_min — happens under the receiver's inbox
/// lock and is therefore a single transition; the producer's own
/// clock store afterwards is a separate transition, which is exactly
/// the window the fence exists for.
///
/// The consumer loops: drain inbox & publish clock (one transition,
/// same lock), compute `bound = p_clock + lookahead`, then pop local
/// events strictly below the bound — re-checking `inbox_min` before
/// **every** pop. With `skip_pop_fence` set (the seeded bug), the
/// consumer checks only the bound, and the checker finds the schedule
/// where it processes an event at or past a pending deposit.
pub struct FenceModel {
    /// Cross-partition latency (the executor's `lookahead`).
    pub lookahead: u8,
    /// Producer's initial local event times (ascending).
    pub p_events: Vec<u8>,
    /// Consumer's initial calendar (ascending).
    pub c_events: Vec<u8>,
    /// Seeded bug: skip the per-pop `inbox_min` fence check.
    pub skip_pop_fence: bool,
}

impl Model for FenceModel {
    type State = FenceState;

    fn initial(&self) -> FenceState {
        FenceState {
            p_clock: self.p_events.first().copied().unwrap_or(NONE),
            p_events: self.p_events.clone(),
            c_queue: self.c_events.clone(),
            c_inbox: Vec::new(),
            c_inbox_min: NONE,
            c_pc: FPc::Drain,
            c_bound: 0,
            processed: Vec::new(),
            p_done: false,
        }
    }

    fn steps(&self, s: &FenceState) -> Vec<(String, FenceState)> {
        let mut out = Vec::new();

        // Producer: handle its next event and deposit, then (separate
        // transition) raise its published clock.
        if !s.p_done {
            if let Some(&t) = s.p_events.first() {
                if s.p_clock == t {
                    // Handle event at t: deposit at t + lookahead under
                    // the consumer's inbox lock (single transition).
                    let mut n = s.clone();
                    let at = t + self.lookahead;
                    n.p_events.remove(0);
                    n.c_inbox.push(at);
                    n.c_inbox.sort_unstable();
                    n.c_inbox_min = n.c_inbox_min.min(at);
                    out.push((format!("P: deposit@{at}"), n));
                } else {
                    // Publish the clock for the next event (or idle).
                    let mut n = s.clone();
                    n.p_clock = t;
                    out.push((format!("P: clock->{t}"), n));
                }
            } else if s.p_clock != NONE {
                let mut n = s.clone();
                n.p_clock = NONE;
                out.push(("P: clock->idle".to_string(), n));
            } else {
                let mut n = s.clone();
                n.p_done = true;
                out.push(("P: done".to_string(), n));
            }
        }

        // Consumer.
        match s.c_pc {
            FPc::Drain => {
                let mut n = s.clone();
                n.c_queue.extend(n.c_inbox.drain(..));
                n.c_queue.sort_unstable();
                n.c_inbox_min = NONE;
                n.c_pc = FPc::Bound;
                out.push(("C: drain".to_string(), n));
            }
            FPc::Bound => {
                let mut n = s.clone();
                n.c_bound = s.p_clock.saturating_add(self.lookahead);
                n.c_pc = FPc::Pop;
                out.push((format!("C: bound={}", n.c_bound), n));
            }
            FPc::Pop => {
                let head = s.c_queue.first().copied();
                let fence_ok = self.skip_pop_fence
                    || head.is_none_or(|h| h < s.c_inbox_min);
                match head {
                    Some(h) if h < s.c_bound && fence_ok => {
                        let mut n = s.clone();
                        n.c_queue.remove(0);
                        n.processed.push(h);
                        out.push((format!("C: pop@{h}"), n));
                    }
                    _ => {
                        // Burst over (bound reached, fence hit, or
                        // empty): loop back to the drain unless the
                        // whole system is quiescent.
                        let finished = s.p_done
                            && s.c_queue.is_empty()
                            && s.c_inbox.is_empty();
                        let mut n = s.clone();
                        n.c_pc = if finished { FPc::Done } else { FPc::Drain };
                        out.push(("C: loop".to_string(), n));
                    }
                }
            }
            FPc::Done => {}
        }
        out
    }

    fn invariant(&self, s: &FenceState) -> Result<(), String> {
        // The fence property: everything the consumer has processed
        // must be in nondecreasing time order...
        if s.processed.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("processed out of order: {:?}", s.processed));
        }
        // ...and no processed event may be at/past a deposit that was
        // pending when it was popped. Equivalent check on the final
        // order: every deposit must be processed before any local
        // event at an equal or later time; detect the violation as a
        // pending deposit with time <= the last processed event.
        if let (Some(&last), Some(&min_pending)) = (s.processed.last(), s.c_inbox.first()) {
            if min_pending <= last {
                return Err(format!(
                    "popped event@{last} past pending deposit@{min_pending}"
                ));
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &FenceState) -> bool {
        s.c_pc == FPc::Done && s.p_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_two_and_three_threads_all_schedules() {
        for threads in [2, 3] {
            for rounds in [1, 2, 3] {
                let m = BarrierModel { threads, rounds, die_at_round: None, drop_gen_bump: false };
                let stats = match check(&m, 2_000_000) {
                    Ok(s) => s,
                    Err(v) => panic!("{threads} threads {rounds} rounds: {v:?}"),
                };
                assert!(stats.states > threads, "trivial exploration: {stats:?}");
            }
        }
    }

    #[test]
    fn barrier_survives_a_dying_worker_at_every_point() {
        // A worker that fails instead of entering any given rendezvous
        // must never strand the others: they all exit via the
        // generation bump or the stop flag.
        for threads in [2, 3] {
            for die_thread in 0..threads {
                for die_round in 0..2 {
                    let m = BarrierModel {
                        threads,
                        rounds: 2,
                        die_at_round: Some((die_thread, die_round)),
                        drop_gen_bump: false,
                    };
                    if let Err(v) = check(&m, 2_000_000) {
                        panic!("t{die_thread} dying at r{die_round} ({threads} threads): {v:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_dropped_generation_bump_is_caught() {
        // The seeded bug: the leader resets the count but forgets to
        // bump the generation. Followers spin on an unchanged `gen`
        // with no stop flag coming — a stranded waiter, which the
        // checker must report as a deadlock.
        let m = BarrierModel {
            threads: 2,
            rounds: 1,
            die_at_round: None,
            drop_gen_bump: true,
        };
        match check(&m, 2_000_000) {
            Err(Violation::Deadlock { state, trace }) => {
                assert!(
                    state.pc.contains(&BPc::Await),
                    "deadlock should strand a waiter: {state:?} (trace {trace:?})"
                );
            }
            other => panic!("expected a stranded-waiter deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fence_protocol_is_exact_for_all_schedules() {
        // Producer event at 2 deposits at 4; consumer owns 1 and 5.
        // Once the producer goes idle the consumer's bound jumps past
        // 5, so only the per-pop fence forces the merge of the deposit
        // at 4 before 5 is processed. Exhaustive over all schedules.
        let m = FenceModel {
            lookahead: 2,
            p_events: vec![2],
            c_events: vec![1, 5],
            skip_pop_fence: false,
        };
        let stats = match check(&m, 2_000_000) {
            Ok(s) => s,
            Err(v) => panic!("{v:?}"),
        };
        assert!(stats.states > 10, "trivial exploration: {stats:?}");

        // A deeper instance: two producer events, interleaved consumer
        // work.
        let m = FenceModel {
            lookahead: 1,
            p_events: vec![1, 3],
            c_events: vec![2, 3, 6],
            skip_pop_fence: false,
        };
        if let Err(v) = check(&m, 2_000_000) {
            panic!("{v:?}");
        }
    }

    #[test]
    fn fence_removed_is_caught() {
        // Same scenario, fence check dropped: some schedule pops the
        // local event at 5 while the deposit at 4 is still pending.
        let m = FenceModel {
            lookahead: 2,
            p_events: vec![2],
            c_events: vec![1, 5],
            skip_pop_fence: true,
        };
        match check(&m, 2_000_000) {
            Err(Violation::Invariant { reason, .. }) => {
                assert!(reason.contains("pending deposit"), "unexpected reason: {reason}");
            }
            other => panic!("expected a fence violation, got {other:?}"),
        }
    }

    /// The checker itself: a two-thread toy model with a known race
    /// (non-atomic increment) must produce the lost-update state, and
    /// a deadlock model must be reported as such.
    struct RaceyIncrement;
    impl Model for RaceyIncrement {
        type State = (u8, [u8; 2], [u8; 2]); // shared, per-thread pc, per-thread local
        fn initial(&self) -> Self::State {
            (0, [0, 0], [0, 0])
        }
        fn steps(&self, s: &Self::State) -> Vec<(String, Self::State)> {
            let mut out = Vec::new();
            for t in 0..2 {
                let (sh, pc, loc) = *s;
                match pc[t] {
                    0 => {
                        let mut n = (sh, pc, loc);
                        n.2[t] = sh; // read
                        n.1[t] = 1;
                        out.push((format!("t{t}: read"), n));
                    }
                    1 => {
                        let mut n = (sh, pc, loc);
                        n.0 = loc[t] + 1; // write back
                        n.1[t] = 2;
                        out.push((format!("t{t}: write"), n));
                    }
                    _ => {}
                }
            }
            out
        }
        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            if s.1 == [2, 2] && s.0 != 2 {
                return Err(format!("lost update: shared = {}", s.0));
            }
            Ok(())
        }
        fn accepting(&self, s: &Self::State) -> bool {
            s.1 == [2, 2]
        }
    }

    #[test]
    fn checker_finds_classic_lost_update() {
        match check(&RaceyIncrement, 10_000) {
            Err(Violation::Invariant { reason, trace, .. }) => {
                assert!(reason.contains("lost update"));
                assert_eq!(trace.len(), 4, "witness should be a full interleaving: {trace:?}");
            }
            other => panic!("expected lost update, got {other:?}"),
        }
    }
}
