//! Partitioned discrete-event executors.
//!
//! A simulation is split into `W` **partitions**, each owning a disjoint
//! set of nodes, a private calendar and whatever per-node state those
//! nodes need. The executor delivers `(time, key, node, message)` events
//! to the owning partition's [`PartWorld::handle`] in `(time, key)`
//! order and routes the messages handlers emit — locally by scheduling
//! straight into the partition's own calendar, remotely by depositing
//! into the target partition's inbox.
//!
//! Two executors share one semantics:
//!
//! * **Serial** (`worlds.len() == 1`): a plain calendar loop. This is
//!   the bit-exact oracle.
//! * **Conservative parallel**: one `std::thread` per partition,
//!   synchronised null-message style by a per-wire **lookahead** `L` —
//!   the minimum latency of any cross-partition message. Each partition
//!   publishes a clock (a lower bound on anything it may still send);
//!   a partition may safely process every local event strictly below
//!   `min(other clocks) + L` **and** below its earliest undrained inbox
//!   deposit (the bound can rise past an already-made deposit, because
//!   the depositor's clock moves on once the message is handed over —
//!   the inbox fence is what keeps such a deposit ahead of every local
//!   pop it must precede).
//!
//! # Determinism
//!
//! Event keys encode `(source node, per-source sequence)`, so the pop
//! order at a shared tick is a pure function of the traffic, not of
//! thread interleaving. Since a node lives in exactly one partition,
//! its handler sees its events in the same order under both executors;
//! any remaining cross-partition shared state must be order-independent
//! (exact merges, epoch-fenced mutation) — that contract belongs to the
//! `PartWorld` implementation and is what keeps reports bit-identical.
//!
//! # Epochs
//!
//! Global state mutations (timed fault-plan entries) are **epochs**: at
//! each epoch time `E`, every event strictly before `E` is processed
//! first, then all partitions rendezvous at a barrier, one leader calls
//! [`PartWorld::on_epoch`], and processing resumes with events at or
//! after `E`. The serial loop interleaves epochs at exactly the same
//! points, so the two executors stay in lockstep.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Mutex, MutexGuard, PoisonError};

// tidy: lock-order(inbox < error)
//
// The only locks in this file. `inbox` guards a partition's deposit
// queue; `error` guards the first-failure slot. They are never held
// simultaneously today — the declared order says that if they ever
// are, the inbox lock must be taken first (a depositor mid-transfer
// must be able to fail without waiting on another failing worker).

/// Lock `m`, recovering the guard from a poisoned mutex. A poisoned
/// lock means another worker panicked; the `StopOnPanic` guard has
/// already raised `stop` and `std::thread::scope` will re-raise the
/// panic on join, so the data behind the lock — diagnostics, deposits
/// that will never be popped — is still safe to touch on the way out.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // tidy: allow(lock-order) -- generic helper; every call site names the
    // actual lock being taken, which is what the order check sees.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One partition of a partitioned simulation.
///
/// Implementations own the models of their nodes plus (shared, behind
/// `Sync` wrappers) whatever state crosses partitions. The executor
/// guarantees `handle` is called with this partition's events in
/// `(time, key)` order and that `on_epoch` runs with every partition
/// quiescent (no event below the epoch time anywhere, nothing in
/// flight) — exactly one partition's `on_epoch` is invoked per epoch.
pub trait PartWorld: Send {
    /// Message payload delivered to nodes.
    type Msg: Send;
    /// Application-level error a handler can raise.
    type Err: Send;
    /// Schedule the initial events (runs once, before the clock moves).
    fn seed(&mut self, out: &mut Outbox<'_, Self::Msg>);
    /// Deliver one message to `node` at simulation time `now`.
    fn handle(
        &mut self,
        now: SimTime,
        node: u32,
        msg: Self::Msg,
        out: &mut Outbox<'_, Self::Msg>,
    ) -> Result<(), Self::Err>;
    /// Apply the `idx`-th epoch (called on one partition, all quiescent).
    fn on_epoch(&mut self, idx: usize);
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Minimum latency of any cross-partition message, in ns. Must be
    /// positive when more than one partition runs.
    pub lookahead: SimDuration,
    /// Times of global state mutations, strictly ascending.
    pub epochs: Vec<SimTime>,
    /// Process no event after this time (inclusive); `None` runs to
    /// drain. Epochs past the horizon do not fire.
    pub horizon: Option<SimTime>,
    /// Watchdog: maximum events at a single timestamp per partition
    /// before the run is declared stalled.
    pub same_tick_limit: u64,
    /// Owning partition of every node id.
    pub part_of: Vec<u32>,
}

/// Why a run stopped early.
#[derive(Debug)]
pub enum ExecError<E> {
    /// A handler returned an error.
    App {
        /// Partition that raised it.
        partition: usize,
        /// Simulation time of the offending event.
        time: SimTime,
        /// The handler's error.
        err: E,
    },
    /// The same-tick watchdog fired: a partition processed more than
    /// `same_tick_limit` events without time advancing.
    SameTick {
        /// Partition that livelocked.
        partition: usize,
        /// The timestamp time stopped advancing at.
        time: SimTime,
    },
}

/// What [`execute`] returns: the worlds (back from the worker threads,
/// error or not — diagnostics live inside them), the total event count,
/// and the first error if any partition failed.
pub struct ExecResult<W: PartWorld> {
    /// The partition worlds, in partition order.
    pub worlds: Vec<W>,
    /// Events processed across all partitions.
    pub events: u64,
    /// Events processed by each partition, in partition order. Sums to
    /// `events`. Diagnostic only: the split depends on the partitioning,
    /// so it must never feed back into simulation state or canonical
    /// outputs (reports, traces).
    pub events_per_part: Vec<u64>,
    /// First error recorded, if the run did not complete.
    pub error: Option<ExecError<W::Err>>,
}

/// Routes messages emitted by a handler: local ones go straight into
/// the partition's calendar, remote ones are staged for deposit into
/// the target partition's inbox.
pub struct Outbox<'a, M> {
    part: u32,
    part_of: &'a [u32],
    local: &'a mut EventQueue<(u32, M)>,
    remote: Vec<RemoteMsg<M>>,
}

struct RemoteMsg<M> {
    dst_part: u32,
    node: u32,
    at: SimTime,
    key: u64,
    msg: M,
}

impl<M> Outbox<'_, M> {
    /// Send `msg` to `node`, to be handled at time `at`, ordered among
    /// same-tick events by `key` (encode `(source node, sequence)` —
    /// see [`EventQueue::schedule_keyed`]).
    #[inline]
    pub fn send(&mut self, node: u32, at: SimTime, key: u64, msg: M) {
        let p = self.part_of[node as usize];
        if p == self.part {
            self.local.schedule_keyed(at, key, (node, msg));
        } else {
            self.remote.push(RemoteMsg { dst_part: p, node, at, key, msg });
        }
    }
}

/// Per-partition synchronisation slot.
struct Slot<M> {
    /// Messages deposited by other partitions, not yet in the calendar.
    inbox: Mutex<Vec<(u32, SimTime, u64, M)>>,
    /// Lower bound (ns) on any event this partition may still process —
    /// and therefore, plus the lookahead, on anything it may still
    /// send. `u64::MAX` when idle with an empty calendar.
    clock: AtomicU64,
    /// Earliest undrained inbox deposit (ns); `u64::MAX` when none. The
    /// owner must not pop a local event at or past this time — the
    /// deposit has to be merged into the calendar first, both for the
    /// same-tick key order and because the owner's burst bound can
    /// legitimately rise past it (the depositor's published clock moves
    /// on once the deposit is made).
    inbox_min: AtomicU64,
}

struct Ctl<M> {
    slots: Vec<Slot<M>>,
    /// Total cross-partition deposits ever made. A scan of the clocks
    /// is a valid snapshot iff this is unchanged across it (clocks only
    /// move down when a deposit happens).
    sent: AtomicU64,
    epoch_idx: AtomicUsize,
    stop: AtomicBool,
    barrier: StopBarrier,
}

/// A reusable spinning rendezvous that can be abandoned: waiters bail
/// out when the stop flag is raised, so a partition that dies (handler
/// error, panic) can never strand the others inside the barrier the way
/// a `std::sync::Barrier` would.
struct StopBarrier {
    n: usize,
    count: AtomicUsize,
    gen: AtomicUsize,
}

impl StopBarrier {
    fn new(n: usize) -> Self {
        Self { n, count: AtomicUsize::new(0), gen: AtomicUsize::new(0) }
    }

    /// Rendezvous with the other `n - 1` workers. Returns `Some(true)`
    /// on exactly one worker per generation (the leader), `Some(false)`
    /// on the rest, `None` if the wait was abandoned because `stop` was
    /// raised (the barrier must not be reused after that).
    fn wait(&self, stop: &AtomicBool) -> Option<bool> {
        let gen = self.gen.load(SeqCst);
        if self.count.fetch_add(1, SeqCst) + 1 == self.n {
            self.count.store(0, SeqCst);
            self.gen.store(gen.wrapping_add(1), SeqCst);
            return Some(true);
        }
        while self.gen.load(SeqCst) == gen {
            if stop.load(SeqCst) {
                return None;
            }
            std::thread::yield_now();
        }
        Some(false)
    }
}

/// Run a partitioned simulation to completion.
///
/// `worlds.len()` is the partition count; one world runs the serial
/// oracle loop, several run the conservative parallel executor (which
/// requires a positive lookahead). Panics on configuration errors;
/// simulation-level failures come back in [`ExecResult::error`].
pub fn execute<W: PartWorld>(mut worlds: Vec<W>, cfg: ExecConfig) -> ExecResult<W> {
    assert!(!worlds.is_empty(), "at least one partition");
    assert!(
        cfg.epochs.windows(2).all(|w| w[0] < w[1]),
        "epoch times must be strictly ascending"
    );
    let n_parts = worlds.len();
    assert!(
        cfg.part_of.iter().all(|&p| (p as usize) < n_parts),
        "part_of references a partition that has no world"
    );

    // Seed every partition's calendar. Runs single-threaded, so remote
    // sends (unusual but legal) deposit directly.
    let mut queues: Vec<EventQueue<(u32, W::Msg)>> =
        (0..n_parts).map(|_| EventQueue::with_capacity(1 << 16)).collect();
    let mut staged: Vec<RemoteMsg<W::Msg>> = Vec::new();
    for (i, w) in worlds.iter_mut().enumerate() {
        let mut out = Outbox {
            part: i as u32,
            part_of: &cfg.part_of,
            local: &mut queues[i],
            remote: std::mem::take(&mut staged),
        };
        w.seed(&mut out);
        staged = out.remote;
        for m in staged.drain(..) {
            queues[m.dst_part as usize].schedule_keyed(m.at, m.key, (m.node, m.msg));
        }
    }

    if n_parts == 1 {
        let world = &mut worlds[0];
        let queue = &mut queues[0];
        let (events, error) = run_serial(world, queue, &cfg);
        return ExecResult { worlds, events, events_per_part: vec![events], error };
    }
    assert!(
        cfg.lookahead > SimDuration::ZERO,
        "parallel execution needs a positive lookahead"
    );
    run_parallel(worlds, queues, &cfg)
}

/// The serial oracle loop: one calendar, inline epochs.
fn run_serial<W: PartWorld>(
    world: &mut W,
    queue: &mut EventQueue<(u32, W::Msg)>,
    cfg: &ExecConfig,
) -> (u64, Option<ExecError<W::Err>>) {
    let horizon = cfg.horizon.unwrap_or(SimTime::MAX);
    let mut events = 0u64;
    let mut epoch = 0usize;
    let mut last_t = SimTime::ZERO;
    let mut same_tick = 0u64;
    let mut remote_buf: Vec<RemoteMsg<W::Msg>> = Vec::new();
    // Pop-first: `peek_time` would redo the cursor's occupancy-bitmap
    // scan that `pop` is about to do anyway, doubling calendar cost per
    // event. Popping first is equivalent — epochs still fire before the
    // event is *handled* (popping does not touch the world), and an
    // event past the horizon is simply discarded with the loop's queue.
    while let Some(ev) = queue.pop() {
        if ev.time > horizon {
            break;
        }
        // Epochs fire after everything before their time, before
        // anything at or after it.
        while epoch < cfg.epochs.len() && cfg.epochs[epoch] <= ev.time {
            world.on_epoch(epoch);
            epoch += 1;
        }
        events += 1;
        if ev.time == last_t {
            same_tick += 1;
            if same_tick > cfg.same_tick_limit {
                return (events, Some(ExecError::SameTick { partition: 0, time: ev.time }));
            }
        } else {
            last_t = ev.time;
            same_tick = 0;
        }
        let (node, msg) = ev.payload;
        let mut out = Outbox {
            part: 0,
            part_of: &cfg.part_of,
            local: queue,
            remote: std::mem::take(&mut remote_buf),
        };
        let r = world.handle(ev.time, node, msg, &mut out);
        remote_buf = out.remote;
        debug_assert!(remote_buf.is_empty(), "single partition has no remote targets");
        if let Err(err) = r {
            return (events, Some(ExecError::App { partition: 0, time: ev.time, err }));
        }
    }
    // Epochs whose time lies past the last event still fire (e.g. a
    // link repair after the fabric drained).
    while epoch < cfg.epochs.len() && cfg.epochs[epoch] <= horizon {
        world.on_epoch(epoch);
        epoch += 1;
    }
    (events, None)
}

/// The conservative parallel executor.
fn run_parallel<W: PartWorld>(
    worlds: Vec<W>,
    queues: Vec<EventQueue<(u32, W::Msg)>>,
    cfg: &ExecConfig,
) -> ExecResult<W> {
    let n_parts = worlds.len();
    let lookahead = cfg.lookahead.as_ns();
    // Process strictly below this; `horizon` itself is still processed.
    let stop_bound = match cfg.horizon {
        Some(h) => h.as_ns().saturating_add(1),
        None => u64::MAX,
    };
    // Epochs past the horizon never fire.
    let epochs: Vec<u64> = cfg
        .epochs
        .iter()
        .map(|e| e.as_ns())
        .filter(|&e| e < stop_bound)
        .collect();

    let ctl: Ctl<W::Msg> = Ctl {
        slots: queues
            .iter()
            .map(|q| Slot {
                inbox: Mutex::new(Vec::new()),
                clock: AtomicU64::new(q.peek_time().map_or(u64::MAX, |t| t.as_ns())),
                inbox_min: AtomicU64::new(u64::MAX),
            })
            .collect(),
        sent: AtomicU64::new(0),
        epoch_idx: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        barrier: StopBarrier::new(n_parts),
    };
    let error: Mutex<Option<ExecError<W::Err>>> = Mutex::new(None);

    // Everything below `at` is done and nothing that could change that
    // is in flight. Clocks only decrease via deposits, and every
    // deposit bumps `sent` under the receiver's inbox lock — so an
    // unchanged `sent` across the scan makes it a consistent snapshot.
    let quiescent = |at: u64| -> bool {
        let s1 = ctl.sent.load(SeqCst);
        if !ctl.slots.iter().all(|s| s.clock.load(SeqCst) >= at) {
            return false;
        }
        s1 == ctl.sent.load(SeqCst)
    };

    let worker = |part: usize, mut world: W, mut queue: EventQueue<(u32, W::Msg)>| {
        let min_other = |part: usize| -> u64 {
            ctl.slots
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != part)
                .map(|(_, s)| s.clock.load(SeqCst))
                .min()
                .unwrap_or(u64::MAX)
        };
        let mut events = 0u64;
        let mut last_t = SimTime::ZERO;
        let mut same_tick = 0u64;
        let mut remote_buf: Vec<RemoteMsg<W::Msg>> = Vec::new();
        let fail = |e: ExecError<W::Err>| {
            let mut slot = lock_unpoisoned(&error);
            if slot.is_none() {
                *slot = Some(e);
            }
            ctl.stop.store(true, SeqCst);
        };
        // A panic in `world.handle` (a debug assertion, say) must still
        // release the other workers, or they spin/wait forever and the
        // panic never propagates out of the thread scope.
        struct StopOnPanic<'a>(&'a AtomicBool);
        impl Drop for StopOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, SeqCst);
                }
            }
        }
        let _stop_guard = StopOnPanic(&ctl.stop);
        'main: while !ctl.stop.load(SeqCst) {
            // Drain the inbox and publish the clock under one lock:
            // depositors fetch_min the clock under the same lock, so the
            // published value can never race above a pending message.
            {
                let mut inbox = lock_unpoisoned(&ctl.slots[part].inbox);
                for (node, at, key, msg) in inbox.drain(..) {
                    queue.schedule_keyed(at, key, (node, msg));
                }
                ctl.slots[part].inbox_min.store(u64::MAX, SeqCst);
                let c = queue.peek_time().map_or(u64::MAX, |t| t.as_ns());
                ctl.slots[part].clock.store(c, SeqCst);
            }
            let eidx = ctl.epoch_idx.load(SeqCst);
            let cap = epochs.get(eidx).copied().unwrap_or(u64::MAX).min(stop_bound);
            let mut bound = cap.min(min_other(part).saturating_add(lookahead));
            let mut progressed = false;
            while let Some(t) = queue.peek_time() {
                // The inbox fence: a deposit made mid-burst must be
                // merged before any event at or past its time — the
                // depositor's own clock (and with it our bound) can
                // legitimately advance beyond the deposit once it is
                // made, so the bound alone does not protect it. Any
                // message that could violate an in-progress pop is
                // deposited before the clock read that enabled the pop
                // (the depositor raises its clock only after the
                // deposit), so checking the fence per pop is exact.
                if t.as_ns() >= bound
                    || t.as_ns() >= ctl.slots[part].inbox_min.load(SeqCst)
                {
                    break;
                }
                // tidy: allow(no-unwrap) -- peek_time returned Some above; only this worker pops its own queue
                let ev = queue.pop().expect("peeked");
                events += 1;
                progressed = true;
                if ev.time == last_t {
                    same_tick += 1;
                    if same_tick > cfg.same_tick_limit {
                        fail(ExecError::SameTick { partition: part, time: ev.time });
                        break 'main;
                    }
                } else {
                    last_t = ev.time;
                    same_tick = 0;
                }
                let (node, msg) = ev.payload;
                let mut out = Outbox {
                    part: part as u32,
                    part_of: &cfg.part_of,
                    local: &mut queue,
                    remote: std::mem::take(&mut remote_buf),
                };
                let r = world.handle(ev.time, node, msg, &mut out);
                remote_buf = out.remote;
                if let Err(err) = r {
                    fail(ExecError::App { partition: part, time: ev.time, err });
                    break 'main;
                }
                if !remote_buf.is_empty() {
                    for m in remote_buf.drain(..) {
                        let slot = &ctl.slots[m.dst_part as usize];
                        let mut inbox = lock_unpoisoned(&slot.inbox);
                        slot.clock.fetch_min(m.at.as_ns(), SeqCst);
                        slot.inbox_min.fetch_min(m.at.as_ns(), SeqCst);
                        ctl.sent.fetch_add(1, SeqCst);
                        inbox.push((m.node, m.at, m.key, m.msg));
                    }
                    // Our own sends may pull a neighbour's clock below
                    // the bound we computed (and its replies could then
                    // land inside it) — recompute before continuing.
                    bound = cap.min(min_other(part).saturating_add(lookahead));
                }
            }
            if progressed {
                continue;
            }
            // Idle. Check for an epoch rendezvous or termination. Both
            // conditions are stable once true (nothing below the fence
            // exists or can be created), so every partition reaches the
            // same barrier.
            let eidx = ctl.epoch_idx.load(SeqCst);
            if eidx < epochs.len() {
                if quiescent(epochs[eidx]) {
                    if let Some(leader) = ctl.barrier.wait(&ctl.stop) {
                        if leader {
                            world.on_epoch(eidx);
                            ctl.epoch_idx.store(eidx + 1, SeqCst);
                        }
                        ctl.barrier.wait(&ctl.stop);
                    }
                    continue;
                }
            } else if quiescent(stop_bound) {
                if ctl.barrier.wait(&ctl.stop).is_some() {
                    break;
                }
            }
            std::thread::yield_now();
        }
        (world, events)
    };

    let mut results: Vec<(W, u64)> = Vec::with_capacity(n_parts);
    std::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .into_iter()
            .zip(queues)
            .enumerate()
            .map(|(i, (w, q))| s.spawn(move || worker(i, w, q)))
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                // Re-raise a worker's panic with its original payload
                // (the StopOnPanic guard has already released peers).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out_worlds = Vec::with_capacity(n_parts);
    let mut events_per_part = Vec::with_capacity(n_parts);
    let mut events = 0u64;
    for (w, e) in results {
        out_worlds.push(w);
        events_per_part.push(e);
        events += e;
    }
    ExecResult {
        worlds: out_worlds,
        events,
        events_per_part,
        error: error.into_inner().unwrap_or_else(PoisonError::into_inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy world: nodes pass tokens around a ring with a fixed wire
    /// delay, folding every delivery into a per-node FNV checksum. The
    /// checksums are order-sensitive, so serial/parallel equality means
    /// each node saw the identical event sequence.
    struct Ring {
        part: u32,
        part_of: Vec<u32>,
        n_nodes: u32,
        delay: u64,
        rounds: u64,
        /// (deliveries, checksum) per node (only owned nodes touched).
        state: Vec<(u64, u64)>,
        seq: Vec<u64>,
        epoch_marks: Vec<(usize, u64)>,
        /// Highest time seen before each epoch fired (shared, exact).
        max_seen: u64,
    }

    impl Ring {
        fn new(part: u32, part_of: Vec<u32>, n_nodes: u32, delay: u64, rounds: u64) -> Self {
            Ring {
                part,
                part_of,
                n_nodes,
                delay,
                rounds,
                state: vec![(0, 0xcbf2_9ce4_8422_2325); n_nodes as usize],
                seq: vec![0; n_nodes as usize],
                epoch_marks: Vec::new(),
                max_seen: 0,
            }
        }
        fn key(&mut self, node: u32) -> u64 {
            let s = self.seq[node as usize];
            self.seq[node as usize] += 1;
            ((node as u64) << 40) | s
        }
    }

    impl PartWorld for Ring {
        type Msg = u64; // hop count
        type Err = ();
        fn seed(&mut self, out: &mut Outbox<'_, u64>) {
            for n in 0..self.n_nodes {
                if self.part_of[n as usize] == self.part {
                    let k = self.key(n);
                    out.send(n, SimTime::from_ns(1), k, 0);
                }
            }
        }
        fn handle(
            &mut self,
            now: SimTime,
            node: u32,
            hops: u64,
            out: &mut Outbox<'_, u64>,
        ) -> Result<(), ()> {
            let (count, sum) = &mut self.state[node as usize];
            *count += 1;
            *sum = (*sum ^ now.as_ns().wrapping_add(hops)).wrapping_mul(0x100_0000_01b3);
            self.max_seen = self.max_seen.max(now.as_ns());
            if hops < self.rounds {
                let next = (node + 1) % self.n_nodes;
                let k = self.key(node);
                out.send(next, now + SimDuration::from_ns(self.delay), k, hops + 1);
            }
            Ok(())
        }
        fn on_epoch(&mut self, idx: usize) {
            self.epoch_marks.push((idx, self.max_seen));
        }
    }

    fn run_ring(parts: usize, epochs: Vec<SimTime>, horizon: Option<SimTime>) -> ExecResult<Ring> {
        let n_nodes = 6u32;
        let part_of: Vec<u32> = (0..n_nodes).map(|n| n % parts as u32).collect();
        let worlds: Vec<Ring> = (0..parts)
            .map(|p| Ring::new(p as u32, part_of.clone(), n_nodes, 16, 200))
            .collect();
        execute(
            worlds,
            ExecConfig {
                lookahead: SimDuration::from_ns(16),
                epochs,
                horizon,
                same_tick_limit: 1_000,
                part_of,
            },
        )
    }

    /// Merge per-node state across partitions (a node's state lives in
    /// its owner; the others kept the initial value).
    fn merged(res: &ExecResult<Ring>) -> Vec<(u64, u64)> {
        let n = res.worlds[0].n_nodes as usize;
        (0..n)
            .map(|i| {
                let owner = res.worlds[0].part_of[i] as usize;
                res.worlds[owner.min(res.worlds.len() - 1)].state[i]
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let ser = run_ring(1, vec![], None);
        assert!(ser.error.is_none());
        for parts in [2, 3] {
            let par = run_ring(parts, vec![], None);
            assert!(par.error.is_none());
            assert_eq!(par.events, ser.events, "{parts} partitions");
            assert_eq!(merged(&par), merged(&ser), "{parts} partitions");
        }
    }

    #[test]
    fn events_per_part_sums_to_total() {
        for parts in [1usize, 2, 3] {
            let res = run_ring(parts, vec![], None);
            assert!(res.error.is_none());
            assert_eq!(res.events_per_part.len(), parts);
            assert_eq!(res.events_per_part.iter().sum::<u64>(), res.events);
        }
    }

    #[test]
    fn epochs_fence_event_processing() {
        let e = vec![SimTime::from_ns(500), SimTime::from_ns(10_000_000)];
        let ser = run_ring(1, e.clone(), None);
        let par = run_ring(3, e, None);
        assert!(ser.error.is_none() && par.error.is_none());
        assert_eq!(merged(&par), merged(&ser));
        // Exactly one partition fired each epoch, before any event at or
        // past the epoch time (ring steps are 16 ns apart from t=1, so
        // the last pre-epoch event is at 497 ns). The second epoch lies
        // beyond the last event and still fires.
        let marks: Vec<(usize, u64)> = {
            let mut m: Vec<_> =
                par.worlds.iter().flat_map(|w| w.epoch_marks.iter().copied()).collect();
            m.sort();
            m
        };
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].0, 0);
        assert!(marks[0].1 < 500, "epoch 0 saw an event at {}", marks[0].1);
        assert_eq!(marks[1].0, 1);
        assert_eq!(ser.worlds[0].epoch_marks.len(), 2);
        assert!(ser.worlds[0].epoch_marks[0].1 < 500);
    }

    #[test]
    fn horizon_truncates_identically() {
        let h = Some(SimTime::from_ns(700));
        let ser = run_ring(1, vec![], h);
        let par = run_ring(2, vec![], h);
        assert!(ser.error.is_none() && par.error.is_none());
        assert!(ser.events < run_ring(1, vec![], None).events);
        assert_eq!(par.events, ser.events);
        assert_eq!(merged(&par), merged(&ser));
    }

    /// A world that reschedules itself at the same instant forever.
    struct Livelock;
    impl PartWorld for Livelock {
        type Msg = ();
        type Err = ();
        fn seed(&mut self, out: &mut Outbox<'_, ()>) {
            out.send(0, SimTime::from_ns(5), 0, ());
        }
        fn handle(
            &mut self,
            now: SimTime,
            _node: u32,
            _msg: (),
            out: &mut Outbox<'_, ()>,
        ) -> Result<(), ()> {
            out.send(0, now, 1, ());
            Ok(())
        }
        fn on_epoch(&mut self, _idx: usize) {}
    }

    #[test]
    fn same_tick_watchdog_fires() {
        let res = execute(
            vec![Livelock],
            ExecConfig {
                lookahead: SimDuration::from_ns(1),
                epochs: vec![],
                horizon: None,
                same_tick_limit: 100,
                part_of: vec![0],
            },
        );
        match res.error {
            Some(ExecError::SameTick { partition: 0, time }) => {
                assert_eq!(time, SimTime::from_ns(5));
            }
            other => panic!("expected SameTick, got {other:?}"),
        }
    }

    /// An erroring handler surfaces as `App` and returns the worlds.
    struct Fails;
    impl PartWorld for Fails {
        type Msg = ();
        type Err = &'static str;
        fn seed(&mut self, out: &mut Outbox<'_, ()>) {
            out.send(0, SimTime::from_ns(3), 0, ());
        }
        fn handle(
            &mut self,
            _now: SimTime,
            _node: u32,
            _msg: (),
            _out: &mut Outbox<'_, ()>,
        ) -> Result<(), &'static str> {
            Err("boom")
        }
        fn on_epoch(&mut self, _idx: usize) {}
    }

    #[test]
    fn app_errors_propagate() {
        let res = execute(
            vec![Fails],
            ExecConfig {
                lookahead: SimDuration::from_ns(1),
                epochs: vec![],
                horizon: None,
                same_tick_limit: 100,
                part_of: vec![0],
            },
        );
        assert_eq!(res.worlds.len(), 1);
        match res.error {
            Some(ExecError::App { partition: 0, time, err: "boom" }) => {
                assert_eq!(time, SimTime::from_ns(3));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }
}
