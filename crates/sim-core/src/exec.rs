//! Partitioned discrete-event executors.
//!
//! A simulation is split into `W` **partitions**, each owning a disjoint
//! set of nodes, a private calendar and whatever per-node state those
//! nodes need. The executor delivers `(time, key, node, message)` events
//! to the owning partition's [`PartWorld::handle`] in `(time, key)`
//! order and routes the messages handlers emit — locally by scheduling
//! straight into the partition's own calendar, remotely by pushing a
//! word-encoded record onto the SPSC ring channel of the edge between
//! the two partitions.
//!
//! Two executors share one semantics:
//!
//! * **Serial** (`worlds.len() == 1`): a plain calendar loop. This is
//!   the bit-exact oracle.
//! * **Free-running conservative parallel**: one `std::thread` per
//!   partition, synchronised null-message style with **no locks and no
//!   barriers on the steady-state path**. Each directed partition pair
//!   that can exchange messages is an *edge* carrying a per-edge
//!   **lookahead** `L(e)` (the minimum latency of any message crossing
//!   it), one [`SpscRing`] of event records, and a published **bound**
//!   — a lower bound (ns) on the timestamp of any record its producer
//!   may still push. A partition's **safe time** `S` is the minimum of
//!   its in-edge bounds; after fully draining its in-rings it may
//!   process every local event strictly below `S`. Bounds advance as
//!   null-message timestamps: each iteration a partition republishes,
//!   on every out-edge, `max(previous, min(calendar head, S) + L(e))`
//!   — so an idle neighbour still ratchets everyone forward, anchored
//!   by whichever partition holds the earliest real event.
//!
//! # Safety argument (why draining below `S` is exact)
//!
//! The consumer's iteration order is load-bearing: **read in-edge
//! bounds (compute `S`), then drain the rings fully, then process
//! events strictly below `S`.** Any record not caught by the drain was
//! pushed after the drain finished, hence after the bound read; the
//! producer contract says every pushed record's timestamp is at least
//! the bound it had already published, and bounds only rise — so that
//! record's time is `>= S` and cannot belong to the burst being
//! processed. Events the producer *did* push before the drain were
//! merged into the calendar (the calendar itself is the k-way merge of
//! the inbound streams and local traffic, keyed on the deterministic
//! `(tick, key)` order), so the pop order below `S` is identical to the
//! serial oracle's.
//!
//! # Termination without a barrier
//!
//! Each partition owns a seqlock-style version counter: odd while it
//! mutates shared-visible state (draining rings, processing, pushing
//! records, publishing its calendar head), even at rest. A run is over
//! when a scan observes — with no version moving and none odd — every
//! published head at or past the stop bound and every ring empty. Any
//! in-flight work either leaves a record in a ring (ring check fails),
//! a head below the stop bound (head check fails) or an odd/advanced
//! version (version check fails). The scan is performed by idle workers
//! and costs a few dozen atomic loads; the first success publishes a
//! `done` flag and everyone exits. Errors and panics short-circuit via
//! a `stop` flag exactly as before — the only lock in this file guards
//! the cold first-error slot.
//!
//! # Epochs
//!
//! Global state mutations (timed fault-plan entries) are **epochs**. In
//! the free-running executor they are *replica-local, in-band control
//! points*, not rendezvous: every partition holds its own replica of
//! epoch-mutable state and applies epoch `E` just before handling its
//! first event at or after `E`'s time (exactly where the serial loop
//! applies it). Conservative safety makes this sound: when a partition
//! pops an event at `t >= E` with `t < S`, no event below `S` — and
//! hence below... `E <= t < S` — can ever arrive, so its replica has
//! seen everything that precedes the epoch. [`PartWorld::on_epoch`] is
//! therefore invoked on **every** partition (once per epoch each);
//! epochs past the last local event fire after the run drains.
//!
//! # Determinism
//!
//! Event keys encode `(source node, per-source sequence)`, so the pop
//! order at a shared tick is a pure function of the traffic, not of
//! thread interleaving. Since a node lives in exactly one partition,
//! its handler sees its events in the same order under both executors;
//! any remaining cross-partition shared state must be replica-local or
//! order-independent (exact merges) — that contract belongs to the
//! `PartWorld` implementation and is what keeps reports bit-identical.

// tidy: hot-path

use crate::queue::EventQueue;
use crate::ring::{RingMsg, SpscRing};
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
// tidy: allow(hot-path-sync) -- the error Mutex below is the cold first-failure slot, never taken on the steady-state path.
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard from a poisoned mutex. A poisoned
/// lock means another worker panicked; the `StopOnPanic` guard has
/// already raised `stop` and `std::thread::scope` will re-raise the
/// panic on join, so the data behind the lock is still safe to touch
/// on the way out.
// tidy: allow(hot-path-sync) -- generic cold-path helper; its only caller is the first-error latch.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One partition of a partitioned simulation.
///
/// Implementations own the models of their nodes plus (shared, behind
/// `Sync` wrappers) whatever read-only state crosses partitions. The
/// executor guarantees `handle` is called with this partition's events
/// in `(time, key)` order, and that `on_epoch(i)` runs on **every**
/// partition exactly once, after all its events strictly before the
/// epoch time and before any event at or after it — epoch-mutable
/// state must therefore be replicated per partition, with each replica
/// deterministically applying the same mutation.
pub trait PartWorld: Send {
    /// Message payload delivered to nodes. The [`RingMsg`] codec is how
    /// it crosses partitions (word-encoded through an [`SpscRing`]).
    type Msg: Send + RingMsg;
    /// Application-level error a handler can raise.
    type Err: Send;
    /// Schedule the initial events (runs once, before the clock moves).
    fn seed(&mut self, out: &mut Outbox<'_, Self::Msg>);
    /// Deliver one message to `node` at simulation time `now`.
    fn handle(
        &mut self,
        now: SimTime,
        node: u32,
        msg: Self::Msg,
        out: &mut Outbox<'_, Self::Msg>,
    ) -> Result<(), Self::Err>;
    /// Apply the `idx`-th epoch to this partition's replica of the
    /// epoch-mutable state (called on every partition, in epoch order).
    fn on_epoch(&mut self, idx: usize);
    /// Hook invoked for every cross-partition message as it is drained
    /// from `from_part`'s ring, before it enters the calendar. The
    /// default is the identity; `dqos-netsim` uses it to pull the
    /// matching evicted packet off the edge's packet lane and re-home
    /// it into the local arena.
    fn rehydrate(&mut self, from_part: u32, msg: Self::Msg) -> Self::Msg {
        let _ = from_part;
        msg
    }
}

/// A directed communication edge between two partitions.
///
/// Only pairs that can actually exchange messages need an edge; absent
/// edges do not constrain each other's safe time (a big win over a
/// single global lookahead when the topology is sparse). Sending to a
/// partition with no edge is a caller bug and fails the run with
/// [`ExecError::Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEdge {
    /// Producing partition.
    pub from: u32,
    /// Consuming partition.
    pub to: u32,
    /// Minimum latency of any message on this edge. Must be positive:
    /// a zero-lookahead edge cannot ratchet and the configuration is
    /// rejected with [`ExecError::Config`] instead of deadlocking.
    pub lookahead: SimDuration,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Minimum latency of any cross-partition message, in ns. Used as
    /// the lookahead of every edge when `edges` is `None`; must be
    /// positive when more than one partition runs.
    pub lookahead: SimDuration,
    /// Explicit communication edges with per-edge lookahead. `None`
    /// builds the complete digraph over partitions using `lookahead`.
    pub edges: Option<Vec<ExecEdge>>,
    /// Word capacity of each edge's event ring (rounded up to a power
    /// of two). Small rings still run exactly — a full ring is
    /// backpressure, not an error — they just hand off in smaller
    /// batches.
    pub ring_words: usize,
    /// Times of global state mutations, strictly ascending.
    pub epochs: Vec<SimTime>,
    /// Process no event after this time (inclusive); `None` runs to
    /// drain. Epochs past the horizon do not fire.
    pub horizon: Option<SimTime>,
    /// Watchdog: maximum events at a single timestamp per partition
    /// before the run is declared stalled.
    pub same_tick_limit: u64,
    /// Owning partition of every node id.
    pub part_of: Vec<u32>,
}

/// Why a run stopped early.
#[derive(Debug)]
pub enum ExecError<E> {
    /// A handler returned an error.
    App {
        /// Partition that raised it.
        partition: usize,
        /// Simulation time of the offending event.
        time: SimTime,
        /// The handler's error.
        err: E,
    },
    /// The same-tick watchdog fired: a partition processed more than
    /// `same_tick_limit` events without time advancing.
    SameTick {
        /// Partition that livelocked.
        partition: usize,
        /// The timestamp time stopped advancing at.
        time: SimTime,
    },
    /// The configuration cannot run (e.g. a zero-lookahead edge, which
    /// would deadlock the conservative ratchet instead of progressing).
    Config {
        /// Human-readable description of the rejected configuration.
        detail: String,
    },
}

/// What [`execute`] returns: the worlds (back from the worker threads,
/// error or not — diagnostics live inside them), the total event count,
/// and the first error if any partition failed.
pub struct ExecResult<W: PartWorld> {
    /// The partition worlds, in partition order.
    pub worlds: Vec<W>,
    /// Events processed across all partitions.
    pub events: u64,
    /// Events processed by each partition, in partition order. Sums to
    /// `events`. Diagnostic only: the split depends on the partitioning,
    /// so it must never feed back into simulation state or canonical
    /// outputs (reports, traces).
    pub events_per_part: Vec<u64>,
    /// First error recorded, if the run did not complete.
    pub error: Option<ExecError<W::Err>>,
}

/// Routes messages emitted by a handler: local ones go straight into
/// the partition's calendar, remote ones are staged for ring push once
/// the handler returns.
pub struct Outbox<'a, M> {
    part: u32,
    part_of: &'a [u32],
    local: &'a mut EventQueue<(u32, M)>,
    remote: Vec<RemoteMsg<M>>,
}

struct RemoteMsg<M> {
    dst_part: u32,
    node: u32,
    at: SimTime,
    key: u64,
    msg: M,
}

impl<M> Outbox<'_, M> {
    /// Send `msg` to `node`, to be handled at time `at`, ordered among
    /// same-tick events by `key` (encode `(source node, sequence)` —
    /// see [`EventQueue::schedule_keyed`]).
    #[inline]
    pub fn send(&mut self, node: u32, at: SimTime, key: u64, msg: M) {
        let p = self.part_of[node as usize];
        if p == self.part {
            self.local.schedule_keyed(at, key, (node, msg));
        } else {
            self.remote.push(RemoteMsg { dst_part: p, node, at, key, msg });
        }
    }
}

/// One directed channel of the free-running executor.
struct Chan {
    /// Word-encoded event records: `[at_ns, key, node, msg...]`.
    ring: SpscRing,
    /// Lower bound (ns) on the timestamp of any record the producer may
    /// still push — the null-message channel clock. Monotone
    /// non-decreasing; written only by the producing partition.
    bound: AtomicU64,
    /// Producing partition (passed to [`PartWorld::rehydrate`]).
    src: u32,
    /// Lookahead of this edge, in ns.
    lookahead: u64,
}

/// Shared control block of the free-running executor.
struct Ctl {
    chans: Vec<Chan>,
    /// `out_of[p][q]` — channel index of the edge `p -> q`, if any.
    out_of: Vec<Vec<Option<usize>>>,
    /// `in_of[p]` — channel indices of the edges into `p`.
    in_of: Vec<Vec<usize>>,
    /// `outs[p]` — channel indices of the edges out of `p`.
    outs: Vec<Vec<usize>>,
    /// Published calendar head (ns) of each partition: the earliest
    /// local event it has yet to process, `u64::MAX` when drained.
    /// Read only by the termination scan.
    head: Vec<AtomicU64>,
    /// Seqlock-style per-partition version: odd while the partition is
    /// mutating shared-visible state, even at rest. Monotone.
    ver: Vec<AtomicU64>,
    /// Set by the first successful termination scan.
    done: AtomicBool,
    /// Set on error or panic; short-circuits every worker.
    stop: AtomicBool,
}

/// Run a partitioned simulation to completion.
///
/// `worlds.len()` is the partition count; one world runs the serial
/// oracle loop, several run the free-running conservative executor.
/// Panics on caller bugs (bad `part_of`, unsorted epochs); rejected
/// configurations (zero lookahead) and simulation-level failures come
/// back in [`ExecResult::error`].
pub fn execute<W: PartWorld>(mut worlds: Vec<W>, cfg: ExecConfig) -> ExecResult<W> {
    assert!(!worlds.is_empty(), "at least one partition");
    assert!(
        cfg.epochs.windows(2).all(|w| w[0] < w[1]),
        "epoch times must be strictly ascending"
    );
    let n_parts = worlds.len();
    assert!(
        cfg.part_of.iter().all(|&p| (p as usize) < n_parts),
        "part_of references a partition that has no world"
    );

    // Seed every partition's calendar. Runs single-threaded, so remote
    // sends (unusual but legal) deposit directly.
    let mut queues: Vec<EventQueue<(u32, W::Msg)>> =
        (0..n_parts).map(|_| EventQueue::with_capacity(1 << 16)).collect();
    let mut staged: Vec<RemoteMsg<W::Msg>> = Vec::new();
    for (i, w) in worlds.iter_mut().enumerate() {
        let mut out = Outbox {
            part: i as u32,
            part_of: &cfg.part_of,
            local: &mut queues[i],
            remote: std::mem::take(&mut staged),
        };
        w.seed(&mut out);
        staged = out.remote;
        for m in staged.drain(..) {
            queues[m.dst_part as usize].schedule_keyed(m.at, m.key, (m.node, m.msg));
        }
    }

    if n_parts == 1 {
        let world = &mut worlds[0];
        let queue = &mut queues[0];
        let (events, error) = run_serial(world, queue, &cfg);
        return ExecResult { worlds, events, events_per_part: vec![events], error };
    }
    if let Some(detail) = validate_edges(&cfg, n_parts) {
        return ExecResult {
            worlds,
            events: 0,
            events_per_part: vec![0; n_parts],
            error: Some(ExecError::Config { detail }),
        };
    }
    run_parallel(worlds, queues, &cfg)
}

/// Reject configurations that cannot ratchet. Returns the reason.
fn validate_edges(cfg: &ExecConfig, n_parts: usize) -> Option<String> {
    match &cfg.edges {
        None => {
            if cfg.lookahead <= SimDuration::ZERO {
                return Some(
                    "parallel execution needs a positive lookahead (a zero-lookahead \
                     neighbour can never be waited out — the safe-time ratchet would \
                     deadlock)"
                        .to_string(),
                );
            }
        }
        Some(edges) => {
            for e in edges {
                if (e.from as usize) >= n_parts || (e.to as usize) >= n_parts {
                    return Some(format!(
                        "edge {} -> {} references a partition that has no world",
                        e.from, e.to
                    ));
                }
                if e.from == e.to {
                    return Some(format!("self-edge on partition {}", e.from));
                }
                if e.lookahead <= SimDuration::ZERO {
                    return Some(format!(
                        "zero-lookahead edge {} -> {}: the safe-time ratchet would \
                         deadlock (every neighbour needs a positive minimum message \
                         latency)",
                        e.from, e.to
                    ));
                }
            }
        }
    }
    None
}

/// The serial oracle loop: one calendar, inline epochs.
fn run_serial<W: PartWorld>(
    world: &mut W,
    queue: &mut EventQueue<(u32, W::Msg)>,
    cfg: &ExecConfig,
) -> (u64, Option<ExecError<W::Err>>) {
    let horizon = cfg.horizon.unwrap_or(SimTime::MAX);
    let mut events = 0u64;
    let mut epoch = 0usize;
    let mut last_t = SimTime::ZERO;
    let mut same_tick = 0u64;
    let mut remote_buf: Vec<RemoteMsg<W::Msg>> = Vec::new();
    // Pop-first: `peek_time` would redo the cursor's occupancy-bitmap
    // scan that `pop` is about to do anyway, doubling calendar cost per
    // event. Popping first is equivalent — epochs still fire before the
    // event is *handled* (popping does not touch the world), and an
    // event past the horizon is simply discarded with the loop's queue.
    while let Some(ev) = queue.pop() {
        if ev.time > horizon {
            break;
        }
        // Epochs fire after everything before their time, before
        // anything at or after it.
        while epoch < cfg.epochs.len() && cfg.epochs[epoch] <= ev.time {
            world.on_epoch(epoch);
            epoch += 1;
        }
        events += 1;
        if ev.time == last_t {
            same_tick += 1;
            if same_tick > cfg.same_tick_limit {
                return (events, Some(ExecError::SameTick { partition: 0, time: ev.time }));
            }
        } else {
            last_t = ev.time;
            same_tick = 0;
        }
        let (node, msg) = ev.payload;
        let mut out = Outbox {
            part: 0,
            part_of: &cfg.part_of,
            local: queue,
            remote: std::mem::take(&mut remote_buf),
        };
        let r = world.handle(ev.time, node, msg, &mut out);
        remote_buf = out.remote;
        debug_assert!(remote_buf.is_empty(), "single partition has no remote targets");
        if let Err(err) = r {
            return (events, Some(ExecError::App { partition: 0, time: ev.time, err }));
        }
    }
    // Epochs whose time lies past the last event still fire (e.g. a
    // link repair after the fabric drained).
    while epoch < cfg.epochs.len() && cfg.epochs[epoch] <= horizon {
        world.on_epoch(epoch);
        epoch += 1;
    }
    (events, None)
}

/// Build the control block: channels for every configured edge (or the
/// complete digraph), bounds initialised from the global minimum seeded
/// head — a valid lower bound on anything any partition can ever send.
fn build_ctl(cfg: &ExecConfig, n_parts: usize, init_heads: &[u64]) -> Ctl {
    let h0 = init_heads.iter().copied().min().unwrap_or(u64::MAX);
    let mut chans = Vec::new();
    let mut out_of = vec![vec![None; n_parts]; n_parts];
    let mut in_of = vec![Vec::new(); n_parts];
    let mut outs = vec![Vec::new(); n_parts];
    let mut add = |from: u32, to: u32, lookahead: u64| {
        let idx = chans.len();
        chans.push(Chan {
            ring: SpscRing::new(cfg.ring_words),
            bound: AtomicU64::new(h0.saturating_add(lookahead)),
            src: from,
            lookahead,
        });
        out_of[from as usize][to as usize] = Some(idx);
        in_of[to as usize].push(idx);
        outs[from as usize].push(idx);
    };
    match &cfg.edges {
        Some(edges) => {
            for e in edges {
                add(e.from, e.to, e.lookahead.as_ns());
            }
        }
        None => {
            for p in 0..n_parts as u32 {
                for q in 0..n_parts as u32 {
                    if p != q {
                        add(p, q, cfg.lookahead.as_ns());
                    }
                }
            }
        }
    }
    Ctl {
        chans,
        out_of,
        in_of,
        outs,
        head: init_heads.iter().map(|&h| AtomicU64::new(h)).collect(),
        ver: (0..n_parts).map(|_| AtomicU64::new(0)).collect(),
        done: AtomicBool::new(false),
        stop: AtomicBool::new(false),
    }
}

/// The free-running conservative parallel executor.
fn run_parallel<W: PartWorld>(
    worlds: Vec<W>,
    queues: Vec<EventQueue<(u32, W::Msg)>>,
    cfg: &ExecConfig,
) -> ExecResult<W> {
    let n_parts = worlds.len();
    // Process strictly below this; `horizon` itself is still processed.
    let stop_bound = match cfg.horizon {
        Some(h) => h.as_ns().saturating_add(1),
        None => u64::MAX,
    };
    // Epochs past the horizon never fire.
    let epochs: Vec<u64> = cfg
        .epochs
        .iter()
        .map(|e| e.as_ns())
        .filter(|&e| e < stop_bound)
        .collect();
    let init_heads: Vec<u64> =
        queues.iter().map(|q| q.peek_time().map_or(u64::MAX, |t| t.as_ns())).collect();
    let ctl = build_ctl(cfg, n_parts, &init_heads);
    // tidy: allow(hot-path-sync) -- cold first-error slot; locked only when a run is already failing.
    let error: Mutex<Option<ExecError<W::Err>>> = Mutex::new(None);

    // The termination scan. Versions are monotone and odd while a
    // partition mutates, so an equal, all-even sum across the whole
    // check certifies that the heads and rings it read form one
    // consistent snapshot of a fully quiescent system.
    let try_finish = || -> bool {
        let mut sum1 = 0u64;
        for v in &ctl.ver {
            let x = v.load(SeqCst);
            if x & 1 == 1 {
                return false;
            }
            sum1 = sum1.wrapping_add(x);
        }
        if !ctl.head.iter().all(|h| h.load(SeqCst) >= stop_bound) {
            return false;
        }
        if !ctl.chans.iter().all(|c| c.ring.is_empty()) {
            return false;
        }
        let mut sum2 = 0u64;
        for v in &ctl.ver {
            sum2 = sum2.wrapping_add(v.load(SeqCst));
        }
        if sum1 == sum2 {
            ctl.done.store(true, SeqCst);
            true
        } else {
            false
        }
    };

    let worker = |part: usize, mut world: W, mut queue: EventQueue<(u32, W::Msg)>| {
        let mut events = 0u64;
        let mut last_t = SimTime::ZERO;
        let mut same_tick = 0u64;
        let mut epoch_next = 0usize;
        let mut remote_buf: Vec<RemoteMsg<W::Msg>> = Vec::new();
        let mut scratch: Vec<u64> = Vec::new();
        let mut enc: Vec<u64> = Vec::new();
        // Last bound published per out-edge (indexed like ctl.outs[part]);
        // keeps the single-writer stores monotone without re-reading.
        let mut pub_bounds: Vec<u64> = ctl.outs[part]
            .iter()
            .map(|&c| ctl.chans[c].bound.load(SeqCst))
            .collect();
        let fail = |e: ExecError<W::Err>| {
            let mut slot = lock_unpoisoned(&error);
            if slot.is_none() {
                *slot = Some(e);
            }
            ctl.stop.store(true, SeqCst);
        };
        // A panic in `world.handle` (a debug assertion, say) must still
        // release the other workers, or they spin forever and the panic
        // never propagates out of the thread scope.
        struct StopOnPanic<'a>(&'a AtomicBool);
        impl Drop for StopOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, SeqCst);
                }
            }
        }
        let _stop_guard = StopOnPanic(&ctl.stop);
        'main: while !ctl.done.load(SeqCst) && !ctl.stop.load(SeqCst) {
            // 1. Safe time: the minimum in-edge bound. Read *before*
            // draining — the safety argument in the module docs hangs
            // on this order.
            let mut s = u64::MAX;
            for &c in &ctl.in_of[part] {
                s = s.min(ctl.chans[c].bound.load(SeqCst));
            }
            let limit = s.min(stop_bound);
            let head = queue.peek_time().map_or(u64::MAX, |t| t.as_ns());
            let idle = head >= limit
                && ctl.in_of[part].iter().all(|&c| ctl.chans[c].ring.is_empty());
            if idle {
                // Nothing to drain, nothing processable: ratchet the
                // out-bounds (null messages) and scan for termination.
                // Publishing a bound needs no version bump — bounds are
                // monotone and the scan does not read them.
                let e = head.min(s);
                for (i, &c) in ctl.outs[part].iter().enumerate() {
                    let b = e.saturating_add(ctl.chans[c].lookahead);
                    if b > pub_bounds[i] {
                        pub_bounds[i] = b;
                        ctl.chans[c].bound.store(b, SeqCst);
                    }
                }
                if try_finish() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            // Active iteration: version odd while any shared-visible
            // state (rings, published head) is in motion.
            ctl.ver[part].fetch_add(1, SeqCst);
            // 2. Drain every in-ring fully, merging into the calendar
            // (the calendar is the k-way merge point: `schedule_keyed`
            // restores the deterministic (tick, key) order).
            for &c in &ctl.in_of[part] {
                while ctl.chans[c].ring.pop(&mut scratch) {
                    let at = SimTime::from_ns(scratch[0]);
                    let key = scratch[1];
                    let node = scratch[2] as u32;
                    let msg = W::Msg::decode(&scratch[3..]);
                    let msg = world.rehydrate(ctl.chans[c].src, msg);
                    queue.schedule_keyed(at, key, (node, msg));
                }
            }
            // 3. Process strictly below the safe time.
            while let Some(t) = queue.peek_time() {
                if t.as_ns() >= limit {
                    break;
                }
                // tidy: allow(no-unwrap) -- peek_time returned Some above; only this worker pops its own queue
                let ev = queue.pop().expect("peeked");
                // Replica-local epochs: apply every epoch at or before
                // this event's time, exactly like the serial loop.
                while epoch_next < epochs.len() && epochs[epoch_next] <= ev.time.as_ns() {
                    world.on_epoch(epoch_next);
                    epoch_next += 1;
                }
                events += 1;
                if ev.time == last_t {
                    same_tick += 1;
                    if same_tick > cfg.same_tick_limit {
                        fail(ExecError::SameTick { partition: part, time: ev.time });
                        break 'main;
                    }
                } else {
                    last_t = ev.time;
                    same_tick = 0;
                }
                let (node, msg) = ev.payload;
                let mut out = Outbox {
                    part: part as u32,
                    part_of: &cfg.part_of,
                    local: &mut queue,
                    remote: std::mem::take(&mut remote_buf),
                };
                let r = world.handle(ev.time, node, msg, &mut out);
                remote_buf = out.remote;
                if let Err(err) = r {
                    fail(ExecError::App { partition: part, time: ev.time, err });
                    break 'main;
                }
                for m in remote_buf.drain(..) {
                    let Some(c) = ctl.out_of[part][m.dst_part as usize] else {
                        fail(ExecError::Config {
                            detail: format!(
                                "partition {part} sent to partition {} with no declared edge",
                                m.dst_part
                            ),
                        });
                        break 'main;
                    };
                    debug_assert!(
                        m.at.as_ns() >= ev.time.as_ns().saturating_add(ctl.chans[c].lookahead),
                        "send at {} violates edge {part} -> {} lookahead {} (event at {})",
                        m.at.as_ns(),
                        m.dst_part,
                        ctl.chans[c].lookahead,
                        ev.time.as_ns(),
                    );
                    enc.clear();
                    enc.push(m.at.as_ns());
                    enc.push(m.key);
                    enc.push(m.node as u64);
                    m.msg.encode(&mut enc);
                    while !ctl.chans[c].ring.push(&enc) {
                        // Backpressure: the consumer is behind. Keep
                        // the system live while we wait — publish a
                        // floor bound (every future send happens at or
                        // after this event plus the edge lookahead) so
                        // neighbours can keep ratcheting, and drain our
                        // own in-rings so a producer blocked on *us*
                        // frees up in a send cycle.
                        for (i, &oc) in ctl.outs[part].iter().enumerate() {
                            let b = ev.time.as_ns().saturating_add(ctl.chans[oc].lookahead);
                            if b > pub_bounds[i] {
                                pub_bounds[i] = b;
                                ctl.chans[oc].bound.store(b, SeqCst);
                            }
                        }
                        for &ic in &ctl.in_of[part] {
                            while ctl.chans[ic].ring.pop(&mut scratch) {
                                let at = SimTime::from_ns(scratch[0]);
                                let key = scratch[1];
                                let node = scratch[2] as u32;
                                let dm = W::Msg::decode(&scratch[3..]);
                                let dm = world.rehydrate(ctl.chans[ic].src, dm);
                                queue.schedule_keyed(at, key, (node, dm));
                            }
                        }
                        if ctl.stop.load(SeqCst) {
                            break 'main;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            // 4. Publish: calendar head for the termination scan, then
            // out-bounds (min(head, S) + L per edge), then the even
            // version — the order makes the scan's snapshot sound.
            let head_now = queue.peek_time().map_or(u64::MAX, |t| t.as_ns());
            ctl.head[part].store(head_now, SeqCst);
            let e = head_now.min(s);
            for (i, &c) in ctl.outs[part].iter().enumerate() {
                let b = e.saturating_add(ctl.chans[c].lookahead);
                if b > pub_bounds[i] {
                    pub_bounds[i] = b;
                    ctl.chans[c].bound.store(b, SeqCst);
                }
            }
            ctl.ver[part].fetch_add(1, SeqCst);
        }
        // Trailing epochs fire on every replica once the run completes
        // (an error leaves them unapplied, matching the serial loop).
        if !ctl.stop.load(SeqCst) {
            while epoch_next < epochs.len() {
                world.on_epoch(epoch_next);
                epoch_next += 1;
            }
        }
        (world, events)
    };

    let mut results: Vec<(W, u64)> = Vec::with_capacity(n_parts);
    std::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .into_iter()
            .zip(queues)
            .enumerate()
            .map(|(i, (w, q))| s.spawn(move || worker(i, w, q)))
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                // Re-raise a worker's panic with its original payload
                // (the StopOnPanic guard has already released peers).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out_worlds = Vec::with_capacity(n_parts);
    let mut events_per_part = Vec::with_capacity(n_parts);
    let mut events = 0u64;
    for (w, e) in results {
        out_worlds.push(w);
        events_per_part.push(e);
        events += e;
    }
    ExecResult {
        worlds: out_worlds,
        events,
        events_per_part,
        error: error.into_inner().unwrap_or_else(PoisonError::into_inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy world: nodes pass tokens around a ring with a fixed wire
    /// delay, folding every delivery into a per-node FNV checksum. The
    /// checksums are order-sensitive, so serial/parallel equality means
    /// each node saw the identical event sequence.
    struct Ring {
        part: u32,
        part_of: Vec<u32>,
        n_nodes: u32,
        delay: u64,
        rounds: u64,
        /// (deliveries, checksum) per node (only owned nodes touched).
        state: Vec<(u64, u64)>,
        seq: Vec<u64>,
        epoch_marks: Vec<(usize, u64)>,
        /// Highest local event time seen before each epoch fired.
        max_seen: u64,
        /// Cross-partition deliveries seen via the rehydrate hook.
        rehydrated: u64,
    }

    impl Ring {
        fn new(part: u32, part_of: Vec<u32>, n_nodes: u32, delay: u64, rounds: u64) -> Self {
            Ring {
                part,
                part_of,
                n_nodes,
                delay,
                rounds,
                state: vec![(0, 0xcbf2_9ce4_8422_2325); n_nodes as usize],
                seq: vec![0; n_nodes as usize],
                epoch_marks: Vec::new(),
                max_seen: 0,
                rehydrated: 0,
            }
        }
        fn key(&mut self, node: u32) -> u64 {
            let s = self.seq[node as usize];
            self.seq[node as usize] += 1;
            ((node as u64) << 40) | s
        }
    }

    impl PartWorld for Ring {
        type Msg = u64; // hop count
        type Err = ();
        fn seed(&mut self, out: &mut Outbox<'_, u64>) {
            for n in 0..self.n_nodes {
                if self.part_of[n as usize] == self.part {
                    let k = self.key(n);
                    out.send(n, SimTime::from_ns(1), k, 0);
                }
            }
        }
        fn handle(
            &mut self,
            now: SimTime,
            node: u32,
            hops: u64,
            out: &mut Outbox<'_, u64>,
        ) -> Result<(), ()> {
            let (count, sum) = &mut self.state[node as usize];
            *count += 1;
            *sum = (*sum ^ now.as_ns().wrapping_add(hops)).wrapping_mul(0x100_0000_01b3);
            self.max_seen = self.max_seen.max(now.as_ns());
            if hops < self.rounds {
                let next = (node + 1) % self.n_nodes;
                let k = self.key(node);
                out.send(next, now + SimDuration::from_ns(self.delay), k, hops + 1);
            }
            Ok(())
        }
        fn on_epoch(&mut self, idx: usize) {
            self.epoch_marks.push((idx, self.max_seen));
        }
        fn rehydrate(&mut self, _from_part: u32, msg: u64) -> u64 {
            self.rehydrated += 1;
            msg
        }
    }

    fn ring_cfg(part_of: Vec<u32>, epochs: Vec<SimTime>, horizon: Option<SimTime>) -> ExecConfig {
        ExecConfig {
            lookahead: SimDuration::from_ns(16),
            edges: None,
            ring_words: 1 << 12,
            epochs,
            horizon,
            same_tick_limit: 1_000,
            part_of,
        }
    }

    fn run_ring_n(
        parts: usize,
        n_nodes: u32,
        epochs: Vec<SimTime>,
        horizon: Option<SimTime>,
    ) -> ExecResult<Ring> {
        let part_of: Vec<u32> = (0..n_nodes).map(|n| n % parts as u32).collect();
        let worlds: Vec<Ring> = (0..parts)
            .map(|p| Ring::new(p as u32, part_of.clone(), n_nodes, 16, 200))
            .collect();
        execute(worlds, ring_cfg(part_of, epochs, horizon))
    }

    fn run_ring(parts: usize, epochs: Vec<SimTime>, horizon: Option<SimTime>) -> ExecResult<Ring> {
        run_ring_n(parts, 6, epochs, horizon)
    }

    /// Merge per-node state across partitions (a node's state lives in
    /// its owner; the others kept the initial value).
    fn merged(res: &ExecResult<Ring>) -> Vec<(u64, u64)> {
        let n = res.worlds[0].n_nodes as usize;
        (0..n)
            .map(|i| {
                let owner = res.worlds[0].part_of[i] as usize;
                res.worlds[owner.min(res.worlds.len() - 1)].state[i]
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let ser = run_ring(1, vec![], None);
        assert!(ser.error.is_none());
        for parts in [2, 3] {
            let par = run_ring(parts, vec![], None);
            assert!(par.error.is_none());
            assert_eq!(par.events, ser.events, "{parts} partitions");
            assert_eq!(merged(&par), merged(&ser), "{parts} partitions");
        }
    }

    #[test]
    fn eight_partitions_match_serial() {
        let ser = run_ring_n(1, 8, vec![], None);
        let par = run_ring_n(8, 8, vec![], None);
        assert!(ser.error.is_none() && par.error.is_none());
        assert_eq!(par.events, ser.events);
        assert_eq!(merged(&par), merged(&ser));
        // Every hop crosses a partition at 8 parts / 8 nodes, and every
        // crossing runs through the rehydrate hook.
        let rehydrated: u64 = par.worlds.iter().map(|w| w.rehydrated).sum();
        assert_eq!(rehydrated + 8, par.events, "every non-seed delivery crossed");
    }

    #[test]
    fn tiny_rings_backpressure_without_divergence() {
        // An 8-word ring holds a single 5-word record at a time, so the
        // producers live in the backpressure path — results must not
        // change.
        let ser = run_ring(1, vec![], None);
        let part_of: Vec<u32> = (0..6u32).map(|n| n % 3).collect();
        let worlds: Vec<Ring> =
            (0..3).map(|p| Ring::new(p, part_of.clone(), 6, 16, 200)).collect();
        let mut cfg = ring_cfg(part_of, vec![], None);
        cfg.ring_words = 8;
        let par = execute(worlds, cfg);
        assert!(par.error.is_none());
        assert_eq!(par.events, ser.events);
        assert_eq!(merged(&par), merged(&ser));
    }

    #[test]
    fn explicit_edge_list_runs_the_ring() {
        // The 6-node ring on 3 partitions only sends p -> (p+1) % 3 and
        // p -> (p-1) % 3... in fact node n sends to n+1 only, so the
        // needed edges are exactly p -> (p+1) % 3. Extra edges are
        // allowed; missing ones would panic.
        let ser = run_ring(1, vec![], None);
        let part_of: Vec<u32> = (0..6u32).map(|n| n % 3).collect();
        let worlds: Vec<Ring> =
            (0..3).map(|p| Ring::new(p, part_of.clone(), 6, 16, 200)).collect();
        let mut cfg = ring_cfg(part_of, vec![], None);
        cfg.edges = Some(
            (0..3u32)
                .map(|p| ExecEdge {
                    from: p,
                    to: (p + 1) % 3,
                    lookahead: SimDuration::from_ns(16),
                })
                .collect(),
        );
        let par = execute(worlds, cfg);
        assert!(par.error.is_none());
        assert_eq!(par.events, ser.events);
        assert_eq!(merged(&par), merged(&ser));
    }

    #[test]
    fn events_per_part_sums_to_total() {
        for parts in [1usize, 2, 3] {
            let res = run_ring(parts, vec![], None);
            assert!(res.error.is_none());
            assert_eq!(res.events_per_part.len(), parts);
            assert_eq!(res.events_per_part.iter().sum::<u64>(), res.events);
        }
    }

    #[test]
    fn epochs_fire_on_every_replica_in_order() {
        let e = vec![SimTime::from_ns(500), SimTime::from_ns(10_000_000)];
        let ser = run_ring(1, e.clone(), None);
        let par = run_ring(3, e, None);
        assert!(ser.error.is_none() && par.error.is_none());
        assert_eq!(merged(&par), merged(&ser));
        // Every partition applies every epoch to its replica, in epoch
        // order, each after its local events before the epoch time and
        // before any at or past it (ring steps are 16 ns apart from
        // t=1, so the last pre-epoch event is at 497 ns). The second
        // epoch lies beyond the last event and still fires (trailing).
        for (p, w) in par.worlds.iter().enumerate() {
            assert_eq!(w.epoch_marks.len(), 2, "partition {p}");
            assert_eq!(w.epoch_marks[0].0, 0);
            assert_eq!(w.epoch_marks[1].0, 1);
            assert!(
                w.epoch_marks[0].1 < 500,
                "partition {p}: epoch 0 fired after an event at {}",
                w.epoch_marks[0].1
            );
        }
        assert_eq!(ser.worlds[0].epoch_marks.len(), 2);
        assert!(ser.worlds[0].epoch_marks[0].1 < 500);
    }

    #[test]
    fn horizon_truncates_identically() {
        let h = Some(SimTime::from_ns(700));
        let ser = run_ring(1, vec![], h);
        let par = run_ring(2, vec![], h);
        assert!(ser.error.is_none() && par.error.is_none());
        assert!(ser.events < run_ring(1, vec![], None).events);
        assert_eq!(par.events, ser.events);
        assert_eq!(merged(&par), merged(&ser));
    }

    #[test]
    fn zero_lookahead_errors_instead_of_deadlocking() {
        // Global zero lookahead.
        let part_of: Vec<u32> = (0..6u32).map(|n| n % 2).collect();
        let worlds: Vec<Ring> =
            (0..2).map(|p| Ring::new(p, part_of.clone(), 6, 16, 200)).collect();
        let mut cfg = ring_cfg(part_of.clone(), vec![], None);
        cfg.lookahead = SimDuration::ZERO;
        let res = execute(worlds, cfg);
        match res.error {
            Some(ExecError::Config { detail }) => {
                assert!(detail.contains("lookahead"), "unhelpful detail: {detail}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        // A single zero-lookahead edge in an otherwise fine list.
        let worlds: Vec<Ring> =
            (0..2).map(|p| Ring::new(p, part_of.clone(), 6, 16, 200)).collect();
        let mut cfg = ring_cfg(part_of, vec![], None);
        cfg.edges = Some(vec![
            ExecEdge { from: 0, to: 1, lookahead: SimDuration::from_ns(16) },
            ExecEdge { from: 1, to: 0, lookahead: SimDuration::ZERO },
        ]);
        let res = execute(worlds, cfg);
        match res.error {
            Some(ExecError::Config { detail }) => {
                assert!(detail.contains("1 -> 0"), "unhelpful detail: {detail}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        // Serial runs don't need a lookahead at all.
        let worlds = vec![Ring::new(0, vec![0; 6], 6, 16, 200)];
        let mut cfg = ring_cfg(vec![0; 6], vec![], None);
        cfg.lookahead = SimDuration::ZERO;
        let res = execute(worlds, cfg);
        assert!(res.error.is_none());
    }

    /// A world that reschedules itself at the same instant forever.
    struct Livelock;
    impl PartWorld for Livelock {
        type Msg = ();
        type Err = ();
        fn seed(&mut self, out: &mut Outbox<'_, ()>) {
            out.send(0, SimTime::from_ns(5), 0, ());
        }
        fn handle(
            &mut self,
            now: SimTime,
            _node: u32,
            _msg: (),
            out: &mut Outbox<'_, ()>,
        ) -> Result<(), ()> {
            out.send(0, now, 1, ());
            Ok(())
        }
        fn on_epoch(&mut self, _idx: usize) {}
    }

    fn one_node_cfg() -> ExecConfig {
        ExecConfig {
            lookahead: SimDuration::from_ns(1),
            edges: None,
            ring_words: 64,
            epochs: vec![],
            horizon: None,
            same_tick_limit: 100,
            part_of: vec![0],
        }
    }

    #[test]
    fn same_tick_watchdog_fires() {
        let res = execute(vec![Livelock], one_node_cfg());
        match res.error {
            Some(ExecError::SameTick { partition: 0, time }) => {
                assert_eq!(time, SimTime::from_ns(5));
            }
            other => panic!("expected SameTick, got {other:?}"),
        }
    }

    /// An erroring handler surfaces as `App` and returns the worlds.
    struct Fails;
    impl PartWorld for Fails {
        type Msg = ();
        type Err = &'static str;
        fn seed(&mut self, out: &mut Outbox<'_, ()>) {
            out.send(0, SimTime::from_ns(3), 0, ());
        }
        fn handle(
            &mut self,
            _now: SimTime,
            _node: u32,
            _msg: (),
            _out: &mut Outbox<'_, ()>,
        ) -> Result<(), &'static str> {
            Err("boom")
        }
        fn on_epoch(&mut self, _idx: usize) {}
    }

    #[test]
    fn app_errors_propagate() {
        let res = execute(vec![Fails], one_node_cfg());
        assert_eq!(res.worlds.len(), 1);
        match res.error {
            Some(ExecError::App { partition: 0, time, err: "boom" }) => {
                assert_eq!(time, SimTime::from_ns(3));
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    /// A two-partition world where one handler errors mid-run: the
    /// error must come back and the other worker must not hang.
    struct FailsAt {
        part: u32,
    }
    impl PartWorld for FailsAt {
        type Msg = u64;
        type Err = &'static str;
        fn seed(&mut self, out: &mut Outbox<'_, u64>) {
            if self.part == 0 {
                out.send(0, SimTime::from_ns(1), 0, 0);
            }
        }
        fn handle(
            &mut self,
            now: SimTime,
            node: u32,
            hops: u64,
            out: &mut Outbox<'_, u64>,
        ) -> Result<(), &'static str> {
            if hops == 40 {
                return Err("mid-run failure");
            }
            out.send(1 - node, now + SimDuration::from_ns(10), hops + 1, hops + 1);
            Ok(())
        }
        fn on_epoch(&mut self, _idx: usize) {}
    }

    #[test]
    fn parallel_error_releases_all_workers() {
        let part_of = vec![0u32, 1];
        let worlds = vec![FailsAt { part: 0 }, FailsAt { part: 1 }];
        let res = execute(
            worlds,
            ExecConfig {
                lookahead: SimDuration::from_ns(10),
                edges: None,
                ring_words: 256,
                epochs: vec![],
                horizon: None,
                same_tick_limit: 100,
                part_of,
            },
        );
        match res.error {
            Some(ExecError::App { err: "mid-run failure", .. }) => {}
            other => panic!("expected App, got {other:?}"),
        }
    }
}
