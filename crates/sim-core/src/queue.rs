//! The event calendar.
//!
//! Two implementations share one API and one semantics contract:
//!
//! * [`EventQueue`] — the production calendar: a **two-level bucketed
//!   calendar queue** (timing-wheel-style near buckets plus a sorted
//!   overflow heap). Scheduling and popping are O(1) amortised for the
//!   dense, short-horizon event patterns a network simulation produces,
//!   instead of the O(log n) per operation of a binary heap.
//! * [`BinaryHeapQueue`] — the original binary-heap calendar, kept as the
//!   reference oracle for differential tests and as the baseline in the
//!   `event_kernel` bench.
//!
//! **Semantics contract** (identical for both): events pop in
//! non-decreasing time order, and events that share a tick pop in the
//! order they were scheduled (stable FIFO tie-break on a monotonically
//! increasing sequence number). Scheduling in the past is a logic error
//! and panics in debug builds.
//!
//! # Bucketed calendar design
//!
//! Time is divided into buckets of `2^shift` ns. The wheel is a ring of
//! `n_buckets` (a power of two) slots covering the *horizon*
//! `[cur_abs, cur_abs + n_buckets)` in absolute bucket indices, where
//! `cur_abs = now >> shift` is the cursor. An event at time `t` with
//! absolute bucket `abs = t >> shift`:
//!
//! * lands in ring slot `abs & (n_buckets - 1)` if `abs` is inside the
//!   horizon — an O(1) push onto an unsorted per-bucket `Vec`;
//! * otherwise goes to the **overflow** binary heap.
//!
//! Buckets sort lazily: a bucket is only sorted (descending by
//! `(time, seq)`, so the minimum pops from the back in O(1)) the first
//! time the cursor drains it, and a later push into a sorted bucket just
//! clears its sorted flag. A per-slot occupancy bitmap (`Vec<u64>`,
//! scanned with `trailing_zeros`) lets the cursor skip runs of empty
//! buckets 64 at a time.
//!
//! Whenever the cursor advances, overflow events whose bucket has come
//! inside the horizon migrate into the wheel (each event migrates at most
//! once). This preserves the invariant that every overflow event is
//! strictly beyond every wheel event, so the wheel — when non-empty —
//! always holds the global minimum, and the `(time, seq)` sort inside a
//! bucket restores exact FIFO order even when equal-tick events arrive
//! via different levels.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The tick at which the event fires.
    pub time: SimTime,
    /// The simulation-defined payload.
    pub payload: E,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Min-heap ordering on (time, seq): earlier time first; among equal times,
// the event scheduled first fires first (deterministic FIFO).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (time, seq) on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug)]
struct Bucket<E> {
    items: Vec<Entry<E>>,
    /// True when `items` is sorted descending by `(time, seq)` — the
    /// minimum is at the back. Lazily established on first drain.
    sorted: bool,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket { items: Vec::new(), sorted: true }
    }
}

/// Default bucket width: `2^3` = 8 ns. At the paper's 8 Gb/s links one
/// byte serialises in 1 ns, so an 8 ns bucket is a fraction of even a
/// minimum-size packet — same-bucket collisions stay rare.
const DEFAULT_SHIFT: u32 = 3;
/// Default wheel size: 1024 buckets × 8 ns ≈ 8 µs horizon, which covers
/// packet serialisation (~2 µs for an MTU at 8 Gb/s), link flight and
/// credit round-trips; only far-future events (idle source wake-ups, long
/// Pareto OFF periods) take the overflow path. Measured on the
/// `event_kernel` churn workload this geometry beat both wider buckets
/// (deeper per-bucket sorts) and larger rings (bucket headers and the
/// occupancy bitmap fall out of cache) at every tested occupancy.
const DEFAULT_BUCKETS: usize = 1024;

/// A discrete-event calendar (two-level bucketed implementation).
///
/// Events are `(SimTime, E)` pairs; [`EventQueue::pop`] returns them in
/// non-decreasing time order, with FIFO order among events that share a
/// tick. Scheduling in the past is a logic error and panics in debug
/// builds (it would silently reorder causality).
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Bucket<E>>,
    /// One bit per ring slot; set iff the slot's bucket is non-empty.
    occupancy: Vec<u64>,
    /// Second level: one bit per `occupancy` word, set iff the word is
    /// non-zero. Valid only when the ring has at most 64 words (4096
    /// buckets); larger rings fall back to scanning the words directly.
    word_occ: u64,
    /// Events beyond the wheel horizon, min-first by `(time, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    /// log2 of the bucket width in ns.
    shift: u32,
    /// `n_buckets - 1`; `n_buckets` is a power of two.
    mask: u64,
    /// Absolute bucket index of the cursor (`now >> shift`).
    cur_abs: u64,
    /// Events currently in the wheel (excludes overflow).
    wheel_len: usize,
    len: usize,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar at time zero with the default geometry.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_BUCKETS)
    }

    /// An empty calendar with pre-allocated overflow capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.overflow.reserve(cap.min(1 << 20));
        q
    }

    /// An empty calendar with an explicit bucket width (`2^shift` ns) and
    /// wheel size. `n_buckets` is rounded up to a power of two, minimum
    /// 64 (one occupancy word). Small geometries are useful in tests to
    /// force the overflow/migration paths.
    pub fn with_geometry(shift: u32, n_buckets: usize) -> Self {
        assert!(shift < 32, "bucket width 2^{shift} ns is absurdly large");
        let n = n_buckets.next_power_of_two().max(64);
        EventQueue {
            buckets: (0..n).map(|_| Bucket::default()).collect(),
            occupancy: vec![0u64; n / 64],
            word_occ: 0,
            overflow: BinaryHeap::new(),
            shift,
            mask: (n - 1) as u64,
            cur_abs: 0,
            wheel_len: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    #[inline]
    fn n_buckets(&self) -> u64 {
        self.mask + 1
    }

    /// The time of the most recently popped event (the current simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// `at` must not precede the current clock.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        let abs = at.as_ns() >> self.shift;
        let entry = Entry { time: at, seq, payload };
        // `abs >= cur_abs` whenever `at >= now`; the saturating_sub keeps
        // release builds from indexing garbage if that contract is broken.
        if abs.saturating_sub(self.cur_abs) < self.n_buckets() {
            self.push_wheel(abs, entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Schedule `payload` to fire at absolute time `at`, ordered among
    /// same-tick events by the caller-supplied `key` instead of the
    /// internal insertion counter.
    ///
    /// This is the partitioned runtime's determinism hook: keys encode
    /// `(source node, per-source sequence)` so that the pop order at a
    /// tick is a pure function of who sent what, not of the interleaving
    /// in which sends reached this calendar. A calendar must be driven
    /// either entirely through [`EventQueue::schedule`] or entirely
    /// through `schedule_keyed` — mixing counter values with caller keys
    /// would interleave the two keyspaces arbitrarily.
    ///
    /// `at` must not precede the current clock.
    #[inline]
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        self.scheduled_total += 1;
        self.len += 1;
        let abs = at.as_ns() >> self.shift;
        let entry = Entry { time: at, seq: key, payload };
        if abs.saturating_sub(self.cur_abs) < self.n_buckets() {
            self.push_wheel(abs, entry);
        } else {
            self.overflow.push(entry);
        }
    }

    #[inline]
    fn push_wheel(&mut self, abs: u64, entry: Entry<E>) {
        let slot = (abs & self.mask) as usize;
        let b = &mut self.buckets[slot];
        b.sorted = b.items.is_empty();
        b.items.push(entry);
        self.occupancy[slot >> 6] |= 1u64 << (slot & 63);
        self.word_occ |= 1u64 << ((slot >> 6) & 63);
        self.wheel_len += 1;
    }

    /// Move the cursor to `new_abs` and pull every overflow event whose
    /// bucket is now inside the horizon into the wheel. Migrated events
    /// always land at or ahead of the new cursor, never behind it.
    fn advance_to(&mut self, new_abs: u64) {
        self.cur_abs = new_abs;
        if self.overflow.is_empty() {
            return;
        }
        while let Some(top) = self.overflow.peek() {
            let abs = top.time.as_ns() >> self.shift;
            if abs.saturating_sub(self.cur_abs) >= self.n_buckets() {
                break;
            }
            // tidy: allow(no-unwrap) -- the while-let peek above proved the
            // overflow heap is non-empty.
            let entry = self.overflow.pop().expect("peeked");
            // Still pending, so `len` is untouched; push_wheel bumps
            // `wheel_len` to account for the level change.
            self.push_wheel(abs, entry);
        }
    }

    /// Ring offset (0..n_buckets) of the first occupied slot at or after
    /// the cursor, scanning the occupancy bitmap a word at a time.
    fn next_occupied_offset(&self) -> Option<u64> {
        let start = self.cur_abs & self.mask;
        let nw = self.occupancy.len();
        let w0 = (start >> 6) as usize;
        let b0 = (start & 63) as u32;
        let first = self.occupancy[w0] & (!0u64 << b0);
        if first != 0 {
            let slot = ((w0 as u64) << 6) | first.trailing_zeros() as u64;
            return Some(slot - start);
        }
        if nw <= 64 {
            // Small ring: the second-level bitmap finds the next
            // non-empty word in O(1). Rotate so that word `w0 + 1` is at
            // bit 0, take the first set bit, and rotate back.
            let occ = if nw == 64 {
                self.word_occ
            } else {
                // Replicate the ring so the rotation below never pulls in
                // vacant high bits.
                let m = (1u64 << nw) - 1;
                let w = self.word_occ & m;
                w | (w << nw)
            };
            let rot = occ.rotate_right((w0 as u32 + 1) & 63);
            if rot == 0 {
                return None;
            }
            let w = (w0 + 1 + rot.trailing_zeros() as usize) & (nw - 1);
            let word = if w == w0 {
                // Came all the way around: only the wrapped low bits of
                // the cursor word remain.
                self.occupancy[w0] & !(!0u64 << b0)
            } else {
                self.occupancy[w]
            };
            if word == 0 {
                return None;
            }
            let slot = ((w as u64) << 6) | word.trailing_zeros() as u64;
            return Some(slot.wrapping_sub(start) & self.mask);
        }
        // Large ring: scan word by word. `nw` is a power of two
        // (n_buckets is, and is at least 64), so the wrap is a mask.
        let wmask = nw - 1;
        for i in 1..nw {
            let w = (w0 + i) & wmask;
            let word = self.occupancy[w];
            if word != 0 {
                let slot = ((w as u64) << 6) | word.trailing_zeros() as u64;
                return Some(slot.wrapping_sub(start) & self.mask);
            }
        }
        let wrapped = self.occupancy[w0] & !(!0u64 << b0);
        if wrapped != 0 {
            let slot = ((w0 as u64) << 6) | wrapped.trailing_zeros() as u64;
            return Some(slot.wrapping_sub(start) & self.mask);
        }
        None
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Everything pending is beyond the horizon: jump the cursor to
            // the overflow minimum, which migrates it (and any followers
            // inside the new horizon) into the wheel.
            // tidy: allow(no-unwrap) -- len > 0 and wheel_len == 0, so the
            // remaining events all live in the overflow heap.
            let t = self.overflow.peek().expect("len > 0, wheel empty").time;
            self.advance_to(t.as_ns() >> self.shift);
        } else {
            let slot = (self.cur_abs & self.mask) as usize;
            if self.buckets[slot].items.is_empty() {
                // The cursor bucket is empty, so the nearest occupied
                // slot is strictly ahead.
                let off = self
                    .next_occupied_offset()
                    // tidy: allow(no-unwrap) -- wheel_len > 0 means some
                    // bucket is occupied, so the bitmap scan finds a slot.
                    .expect("wheel_len > 0 implies an occupied slot");
                self.advance_to(self.cur_abs + off);
            }
        }
        let slot = (self.cur_abs & self.mask) as usize;
        let b = &mut self.buckets[slot];
        if !b.sorted {
            // Descending, so the (time, seq) minimum pops from the back.
            b.items
                .sort_unstable_by(|a, b| (b.time, b.seq).cmp(&(a.time, a.seq)));
            b.sorted = true;
        }
        // tidy: allow(no-unwrap) -- the cursor was just advanced to an
        // occupied slot (or was already on one), so the bucket has items.
        let e = b.items.pop().expect("cursor bucket is non-empty");
        if b.items.is_empty() {
            let w = slot >> 6;
            self.occupancy[w] &= !(1u64 << (slot & 63));
            if self.occupancy[w] == 0 {
                self.word_occ &= !(1u64 << (w & 63));
            }
        }
        self.wheel_len -= 1;
        self.len -= 1;
        debug_assert!(e.time >= self.now, "event queue time went backwards");
        debug_assert_eq!(e.time.as_ns() >> self.shift, self.cur_abs);
        self.now = e.time;
        Some(ScheduledEvent { time: e.time, payload: e.payload })
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self.overflow.peek().map(|e| e.time);
        }
        // The wheel, when non-empty, always holds the global minimum:
        // every overflow event is beyond the horizon, every wheel event
        // inside it.
        // tidy: allow(no-unwrap) -- wheel_len > 0 guarantees an occupied slot.
        let off = self.next_occupied_offset().expect("wheel_len > 0");
        let slot = ((self.cur_abs + off) & self.mask) as usize;
        let b = &self.buckets[slot];
        if b.sorted {
            b.items.last().map(|e| e.time)
        } else {
            b.items.iter().map(|e| e.time).min()
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the calendar is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (kernel throughput metric).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (the clock is preserved).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.items.clear();
            b.sorted = true;
        }
        self.occupancy.iter_mut().for_each(|w| *w = 0);
        self.word_occ = 0;
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
    }
}

/// The original binary-heap calendar, kept as the reference oracle.
///
/// Same API and semantics as [`EventQueue`]; differential tests assert
/// bit-identical pop order between the two, and the `event_kernel` bench
/// uses it as the baseline the bucketed calendar must beat.
#[derive(Debug)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue { heap: BinaryHeap::with_capacity(cap), ..Self::new() }
    }

    /// The time of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at` (`at >= now`).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time: at, seq, payload });
    }

    /// Remove and return the earliest event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now, "event queue time went backwards");
        self.now = e.time;
        Some(ScheduledEvent { time: e.time, payload: e.payload })
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (the clock is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        assert!(q.pop().is_none());
        // Clock is preserved after drain.
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u32);
        let e = q.pop().unwrap();
        assert_eq!(e.payload, 1);
        // Schedule relative to the new clock.
        q.schedule(q.now() + SimDuration::from_ns(5), 2);
        q.schedule(q.now() + SimDuration::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn overflow_events_come_back_in_order() {
        // Tiny wheel (64 buckets × 1 ns = 64 ns horizon) so that most
        // events take the overflow + migration path.
        let mut q = EventQueue::with_geometry(0, 64);
        let times = [500u64, 3, 70, 64, 63, 1000, 65, 2, 500, 129];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        sorted.sort(); // (time, insertion order) — insertion order == seq order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time.as_ns(), e.payload))).collect();
        assert_eq!(got, sorted);
    }

    #[test]
    fn equal_ticks_split_across_wheel_and_overflow_stay_fifo() {
        let mut q = EventQueue::with_geometry(0, 64);
        // 100 is beyond the horizon [0, 64): goes to overflow.
        q.schedule(SimTime::from_ns(100), 0);
        q.schedule(SimTime::from_ns(50), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        // Cursor is now at 50; 100 is inside [50, 114) so this insert goes
        // straight to the wheel while event 0 still sits in overflow.
        q.schedule(SimTime::from_ns(100), 2);
        // FIFO among the equal tick demands 0 before 2.
        assert_eq!(q.pop().unwrap().payload, 0);
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn drain_refill_cycles_wrap_the_ring() {
        let mut q = EventQueue::with_geometry(0, 64);
        let mut t = 0u64;
        let mut rng = SimRng::new(77);
        for _ in 0..50 {
            // Refill with a burst that straddles the horizon, then drain.
            let base = t;
            let mut expect = Vec::new();
            for i in 0..40 {
                let at = base + rng.range_u64(0, 200);
                q.schedule(SimTime::from_ns(at), i);
                expect.push(at);
            }
            expect.sort_unstable();
            for &want in &expect {
                let e = q.pop().unwrap();
                assert_eq!(e.time.as_ns(), want);
                t = e.time.as_ns();
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn differential_vs_reference_heap_small() {
        let mut rng = SimRng::new(2024);
        let mut fast = EventQueue::with_geometry(2, 64);
        let mut oracle = BinaryHeapQueue::new();
        let mut pending = 0u32;
        for step in 0..20_000u64 {
            if pending == 0 || (pending < 512 && rng.chance(0.55)) {
                let at = SimTime::from_ns(
                    fast.now().as_ns() + rng.range_u64(0, 700),
                );
                fast.schedule(at, step);
                oracle.schedule(at, step);
                pending += 1;
            } else {
                let a = fast.pop().unwrap();
                let b = oracle.pop().unwrap();
                assert_eq!((a.time, a.payload), (b.time, b.payload));
                pending -= 1;
            }
            assert_eq!(fast.len(), oracle.len());
            assert_eq!(fast.peek_time(), oracle.peek_time());
        }
        while let Some(b) = oracle.pop() {
            let a = fast.pop().unwrap();
            assert_eq!((a.time, a.payload), (b.time, b.payload));
        }
        assert!(fast.is_empty());
    }

    #[test]
    fn clear_preserves_clock() {
        let mut q = EventQueue::with_geometry(0, 64);
        q.schedule(SimTime::from_ns(10), ());
        q.schedule(SimTime::from_ns(5000), ()); // overflow
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), SimTime::from_ns(10));
        assert_eq!(q.peek_time(), None);
        // Still usable after clear.
        q.schedule(SimTime::from_ns(11), ());
        assert_eq!(q.pop().unwrap().time, SimTime::from_ns(11));
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popped timestamps are non-decreasing, and among equal
            /// timestamps the original scheduling order is preserved.
            #[test]
            fn prop_stable_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_ns(t), i);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some(e) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        prop_assert!(e.time >= lt);
                        if e.time == lt {
                            prop_assert!(e.payload > lidx, "FIFO violated among equal ticks");
                        }
                    }
                    last = Some((e.time, e.payload));
                }
            }
        }
    }

    /// Dependency-free port of `prop_stable_time_order`: randomized
    /// schedules via the in-house RNG, checked against the same invariant.
    #[test]
    fn stable_time_order_randomized() {
        let mut rng = SimRng::new(31337);
        for case in 0..200u64 {
            let n = 1 + rng.index(200);
            let mut q = EventQueue::with_geometry((case % 5) as u32, 64);
            for i in 0..n {
                q.schedule(SimTime::from_ns(rng.range_u64(0, 999)), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(e) = q.pop() {
                if let Some((lt, lidx)) = last {
                    assert!(e.time >= lt);
                    if e.time == lt {
                        assert!(e.payload > lidx, "FIFO violated among equal ticks");
                    }
                }
                last = Some((e.time, e.payload));
            }
        }
    }
}
