//! The event calendar: a binary-heap priority queue with stable FIFO
//! tie-breaking for events scheduled at the same tick.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The tick at which the event fires.
    pub time: SimTime,
    /// The simulation-defined payload.
    pub payload: E,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Min-heap ordering on (time, seq): earlier time first; among equal times,
// the event scheduled first fires first (deterministic FIFO).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (time, seq) on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event calendar.
///
/// Events are `(SimTime, E)` pairs; [`EventQueue::pop`] returns them in
/// non-decreasing time order, with FIFO order among events that share a
/// tick. Scheduling in the past is a logic error and panics in debug
/// builds (it would silently reorder causality).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The time of the most recently popped event (the current simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// `at` must not precede the current clock.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time: at, seq, payload });
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now, "event queue time went backwards");
        self.now = e.time;
        Some(ScheduledEvent { time: e.time, payload: e.payload })
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (kernel throughput metric).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (the clock is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        assert!(q.pop().is_none());
        // Clock is preserved after drain.
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u32);
        let e = q.pop().unwrap();
        assert_eq!(e.payload, 1);
        // Schedule relative to the new clock.
        q.schedule(q.now() + SimDuration::from_ns(5), 2);
        q.schedule(q.now() + SimDuration::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.scheduled_total(), 3);
    }

    proptest! {
        /// Popped timestamps are non-decreasing, and among equal
        /// timestamps the original scheduling order is preserved.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ns(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(e) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(e.time >= lt);
                    if e.time == lt {
                        prop_assert!(e.payload > lidx, "FIFO violated among equal ticks");
                    }
                }
                last = Some((e.time, e.payload));
            }
        }
    }
}
