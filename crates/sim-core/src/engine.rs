//! A minimal driver loop for simulations whose state fits one `World`.
//!
//! The full network simulator in `dqos-netsim` owns its loop (it needs
//! fine-grained control over draining and measurement windows), but unit
//! tests, examples and the smaller models use this engine.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation world: state plus an event handler.
///
/// The handler receives the current time, the event payload, and the
/// calendar so it can schedule follow-up events.
pub trait World {
    /// The event payload type this world understands.
    type Event;

    /// Handle one event. Scheduling new events through `queue` is the only
    /// way to keep the simulation alive.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of an [`Engine::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Events processed during this run.
    pub events_processed: u64,
    /// Simulation clock when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the calendar drained (rather than
    /// reaching the horizon).
    pub drained: bool,
}

/// Drives a [`World`] against an [`EventQueue`].
#[derive(Debug)]
pub struct Engine<W: World> {
    /// The simulation state.
    pub world: W,
    /// The event calendar.
    pub queue: EventQueue<W::Event>,
}

impl<W: World> Engine<W> {
    /// Create an engine around `world` with an empty calendar.
    pub fn new(world: W) -> Self {
        Engine { world, queue: EventQueue::new() }
    }

    /// Schedule an initial event.
    pub fn schedule(&mut self, at: SimTime, ev: W::Event) {
        self.queue.schedule(at, ev);
    }

    /// Process events until the calendar drains or the next event would
    /// fire strictly after `horizon`. Events *at* the horizon still run.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        let mut processed = 0u64;
        loop {
            match self.queue.peek_time() {
                None => {
                    return RunStats {
                        events_processed: processed,
                        end_time: self.queue.now(),
                        drained: true,
                    };
                }
                Some(t) if t > horizon => {
                    return RunStats {
                        events_processed: processed,
                        end_time: self.queue.now(),
                        drained: false,
                    };
                }
                Some(_) => {
                    // tidy: allow(no-unwrap) -- peek_time returned Some just
                    // above and nothing ran in between, so pop must succeed.
                    let ev = self.queue.pop().expect("peeked event vanished");
                    self.world.handle(ev.time, ev.payload, &mut self.queue);
                    processed += 1;
                }
            }
        }
    }

    /// Run until the calendar is completely empty.
    pub fn run_to_completion(&mut self) -> RunStats {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A world that re-schedules itself `remaining` times at a fixed period
    /// and records every firing.
    struct Ticker {
        remaining: u32,
        period: SimDuration,
        fired_at: Vec<SimTime>,
    }

    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule(now + self.period, ());
            }
        }
    }

    #[test]
    fn ticker_fires_periodically() {
        let mut e = Engine::new(Ticker {
            remaining: 4,
            period: SimDuration::from_us(10),
            fired_at: vec![],
        });
        e.schedule(SimTime::ZERO, ());
        let stats = e.run_to_completion();
        assert!(stats.drained);
        assert_eq!(stats.events_processed, 5);
        assert_eq!(
            e.world.fired_at,
            (0..5).map(|i| SimTime::from_us(10 * i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut e = Engine::new(Ticker {
            remaining: 100,
            period: SimDuration::from_us(10),
            fired_at: vec![],
        });
        e.schedule(SimTime::ZERO, ());
        let stats = e.run_until(SimTime::from_us(30));
        assert!(!stats.drained);
        // Fires at 0, 10, 20, 30 us.
        assert_eq!(stats.events_processed, 4);
        assert_eq!(e.world.fired_at.len(), 4);
        assert_eq!(*e.world.fired_at.last().unwrap(), SimTime::from_us(30));
        // Continuing picks up where we left off.
        let stats2 = e.run_until(SimTime::from_us(50));
        assert_eq!(stats2.events_processed, 2);
    }

    #[test]
    fn empty_run_is_drained_at_time_zero() {
        let mut e = Engine::new(Ticker {
            remaining: 0,
            period: SimDuration::ZERO,
            fired_at: vec![],
        });
        let stats = e.run_to_completion();
        assert!(stats.drained);
        assert_eq!(stats.events_processed, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }
}
