//! Simulation time and bandwidth arithmetic.
//!
//! One simulation tick is one **nanosecond**. All time arithmetic is done
//! in `u64` ticks; floating point only appears at the configuration
//! boundary (e.g. "8 Gb/s", "40 ms") and in statistics output.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation timestamp, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable timestamp; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw tick count (nanoseconds).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This timestamp expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This timestamp expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This timestamp expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier`
    /// is in the future (callers compare clocks from different domains).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    /// Saturating subtraction of a duration (clamps at time zero).
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw tick count (nanoseconds).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_time(f, self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_time(f, self.0)
    }
}

fn write_time(f: &mut fmt::Formatter<'_>, ns: u64) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

/// Link / crossbar bandwidth, stored as **bytes per second**.
///
/// The paper evaluates 8 Gb/s links; at the 1 ns tick this is exactly
/// 1 byte per tick, which keeps serialisation times integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Construct from gigabits per second (decimal gigabits, as in the paper).
    #[inline]
    pub const fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000 / 8)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000 / 8)
    }

    /// Construct from bytes per second.
    #[inline]
    pub const fn bytes_per_sec(b: u64) -> Self {
        Bandwidth(b)
    }

    /// Construct from megabytes per second (e.g. the paper's "3 Mbyte/s"
    /// MPEG-4 streams).
    #[inline]
    pub const fn mbytes_per_sec(mb: u64) -> Self {
        Bandwidth(mb * 1_000_000)
    }

    /// Bandwidth in bytes per second.
    #[inline]
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Bandwidth in (decimal) gigabits per second.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 * 8.0 / 1e9
    }

    /// Time needed to serialise `bytes` at this bandwidth, rounded **up**
    /// to a whole tick (a transmission never finishes early).
    #[inline]
    pub fn tx_time(self, bytes: u64) -> SimDuration {
        debug_assert!(self.0 > 0, "zero bandwidth");
        // ceil(bytes * 1e9 / bytes_per_sec) without overflow for any
        // realistic packet size (bytes <= ~1 MiB, so the product fits u128).
        let num = (bytes as u128) * 1_000_000_000u128;
        let den = self.0 as u128;
        SimDuration(num.div_ceil(den) as u64)
    }

    /// The fraction `f` of this bandwidth (used for per-class shares).
    pub fn scaled(self, f: f64) -> Bandwidth {
        assert!(f.is_finite() && f >= 0.0, "bandwidth scale must be non-negative");
        Bandwidth((self.0 as f64 * f).round() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gb/s", self.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(20).as_ns(), 20_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_ns(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + SimDuration::from_us(5);
        assert_eq!(t, SimTime::from_us(15));
        assert_eq!(t - SimTime::from_us(10), SimDuration::from_us(5));
        assert_eq!(t.since(SimTime::from_us(20)), SimDuration::ZERO);
        assert_eq!(t.saturating_sub(SimDuration::from_ms(1)), SimTime::ZERO);
        assert_eq!(t.checked_sub(SimDuration::from_ms(1)), None);
        assert_eq!(
            t.checked_sub(SimDuration::from_us(5)),
            Some(SimTime::from_us(10))
        );
    }

    #[test]
    fn eight_gbps_is_one_byte_per_ns() {
        let bw = Bandwidth::gbps(8);
        assert_eq!(bw.as_bytes_per_sec(), 1_000_000_000);
        assert_eq!(bw.tx_time(2048), SimDuration::from_ns(2048));
        assert_eq!(bw.tx_time(1), SimDuration::from_ns(1));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 Gb/s = 125 MB/s = 8 ns per byte.
        let bw = Bandwidth::gbps(1);
        assert_eq!(bw.tx_time(1), SimDuration::from_ns(8));
        // 3 bytes at 1 Gb/s = 24 ns exactly.
        assert_eq!(bw.tx_time(3), SimDuration::from_ns(24));
        // Non-divisible case rounds up: 1 byte at 3 GB/s = ceil(1/3 ns).
        let odd = Bandwidth::bytes_per_sec(3_000_000_000);
        assert_eq!(odd.tx_time(1), SimDuration::from_ns(1));
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::mbps(8).as_bytes_per_sec(), 1_000_000);
        assert_eq!(Bandwidth::mbytes_per_sec(3).as_bytes_per_sec(), 3_000_000);
        assert!((Bandwidth::gbps(8).as_gbps_f64() - 8.0).abs() < 1e-9);
        assert_eq!(Bandwidth::gbps(8).scaled(0.25), Bandwidth::gbps(2));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(Bandwidth::gbps(8).to_string(), "8.000Gb/s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(SimTime::from_ns(7).max(SimTime::from_ns(3)), SimTime::from_ns(7));
        assert_eq!(SimTime::from_ns(7).min(SimTime::from_ns(3)), SimTime::from_ns(3));
    }
}
