//! # dqos-faults
//!
//! Deterministic fault injection for the network simulator.
//!
//! The paper evaluates its deadline-based QoS algorithms on a perfect
//! lossless fabric; this crate provides the machinery to ask what
//! survives a *degraded* one. A [`FaultPlan`] is a declarative, seeded
//! description of everything that goes wrong during a run:
//!
//! * **Timed events** — a link (or a whole switch, meaning all of its
//!   links) goes down at a given simulation time and optionally comes
//!   back up later.
//! * **Per-link impairments** — independent per-packet drop and
//!   corruption probabilities, and a per-credit loss probability on the
//!   reverse channel (lost credits are never resynthesised, so a high
//!   enough loss rate manufactures a genuine credit deadlock — the
//!   stall-watchdog test case).
//! * **Clock drift** — per-node rate skew in parts-per-million,
//!   generalising the constant-offset clock-domain ablation of §3.3.
//!
//! Plans are *compiled* against a concrete [`FoldedClos`] into a
//! [`CompiledFaults`] table: selectors resolve to directed [`LinkId`]s,
//! probabilities to integer thresholds, and all randomness comes from
//! dedicated SplitMix64 streams seeded from the plan — one stream **per
//! (link, impairment kind)**, so the roll sequence a link sees is a pure
//! function of the plan and of how many packets crossed *that* link, not
//! of how traffic on unrelated links interleaved with it. That is what
//! lets the partitioned runtime clone the table into every partition
//! (each link's rolls happen at exactly one node) and still produce
//! bit-identical results to the serial oracle; a fault run is
//! bit-reproducible for a fixed (config seed, plan) pair, and an empty
//! plan draws nothing and perturbs nothing.
//!
//! Mutable link up/down state lives in a separate [`LinkState`] so the
//! simulator can share one authority for "is this link failed" across
//! partitions (mutated only at epoch fences) while the stochastic tables
//! stay cloned and lock-free. The timed schedule itself is driven
//! through [`FaultInjector`], the fault subsystem's
//! [`NodeModel`](dqos_core::NodeModel).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dqos_core::NodeModel;
use dqos_sim_core::{SimTime, SplitMix64};
use dqos_topology::{FoldedClos, HostId, LinkId, SwitchId};

/// A node reference for clock-drift specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// A host, by index.
    Host(u32),
    /// A switch, by index (leaves first, then spines).
    Switch(u32),
}

/// Selects one or more directed links of the topology.
///
/// Selectors are resolved at compile time against the concrete network;
/// the symbolic forms exist so plans can be written without knowing the
/// topology's link numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// One directed link by id.
    Link(LinkId),
    /// Both directions of the cable between a leaf and a spine
    /// (identified by leaf index and spine index).
    LeafSpine {
        /// Leaf switch index.
        leaf: u16,
        /// Spine index (`0 ..` spines, *not* a switch id).
        spine: u16,
    },
    /// Both directions of a host's cable (injection + delivery link).
    HostLink(u32),
}

/// What a timed fault event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The selected link(s) stop carrying packets.
    LinkDown(LinkSelector),
    /// The selected link(s) carry packets again.
    LinkUp(LinkSelector),
    /// Every link touching the switch goes down (whole-switch failure).
    SwitchDown(
        /// Switch index.
        u32,
    ),
    /// Every link touching the switch comes back.
    SwitchUp(
        /// Switch index.
        u32,
    ),
}

/// One timed fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    /// Global simulation time at which the fault applies.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Stochastic impairment of one link (applied to every packet or credit
/// that crosses it, independently, for the whole run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkImpairment {
    /// Which link(s) the impairment applies to.
    pub selector: LinkSelector,
    /// Probability a packet crossing the link is silently dropped
    /// (the sender's consumed credit is resynthesised, as real hardware
    /// frees the never-filled buffer slot).
    pub drop_prob: f64,
    /// Probability a packet arrives with a bad CRC: it traverses the
    /// fabric but is discarded at the destination sink.
    pub corrupt_prob: f64,
    /// Probability a credit returning over the link's reverse channel is
    /// lost. Lost credits are **not** resynthesised: buffer accounting
    /// leaks, which can starve the sender into a credit deadlock.
    pub credit_loss_prob: f64,
}

/// Per-node clock rate skew: the node's local clock runs at
/// `1 + ppm/1e6` times the global rate (on top of any constant offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDriftSpec {
    /// The node whose clock drifts.
    pub node: NodeRef,
    /// Rate skew in parts per million (positive = fast clock).
    pub skew_ppm: i32,
}

/// A declarative, seeded fault scenario. An empty (default) plan injects
/// nothing and must leave simulation results bit-identical to a run
/// without any fault machinery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the impairment rolls (independent of the traffic seed).
    pub seed: u64,
    /// Timed link/switch down/up events.
    pub timed: Vec<TimedFault>,
    /// Stochastic per-link impairments.
    pub impairments: Vec<LinkImpairment>,
    /// Per-node clock rate skews.
    pub drift: Vec<ClockDriftSpec>,
}

impl FaultPlan {
    /// An empty plan with the given impairment seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.timed.is_empty() && self.impairments.is_empty() && self.drift.is_empty()
    }

    /// Add a timed fault.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.timed.push(TimedFault { at, kind });
        self
    }

    /// Kill spine `j` (all its links) at `at`.
    pub fn spine_down(self, at: SimTime, spine: u16, net: &FoldedClos) -> Self {
        self.at(at, FaultKind::SwitchDown(net.spine(spine).0))
    }

    /// Restore spine `j` at `at`.
    pub fn spine_up(self, at: SimTime, spine: u16, net: &FoldedClos) -> Self {
        self.at(at, FaultKind::SwitchUp(net.spine(spine).0))
    }

    /// Add a stochastic impairment.
    pub fn impair(mut self, imp: LinkImpairment) -> Self {
        self.impairments.push(imp);
        self
    }

    /// Add a clock rate skew.
    pub fn with_drift(mut self, node: NodeRef, skew_ppm: i32) -> Self {
        self.drift.push(ClockDriftSpec { node, skew_ppm });
        self
    }

    /// Resolve the plan against a concrete network.
    ///
    /// Impairments whose selectors overlap on a link (say a
    /// [`LinkSelector::Link`] and a [`LinkSelector::LeafSpine`] covering
    /// it) compose as independent loss processes — the link's effective
    /// probability is `1 - (1-p1)(1-p2)` — so a later impairment can
    /// only add risk, never silently erase an earlier one.
    pub fn compile(&self, net: &FoldedClos) -> CompiledFaults {
        let n = net.n_links() as usize;
        let mut c = CompiledFaults {
            enabled: true,
            timed: Vec::with_capacity(self.timed.len()),
            drop_thresh: vec![0; n],
            corrupt_thresh: vec![0; n],
            credit_thresh: vec![0; n],
            any_impairment: false,
            state: LinkState::new(n),
            host_skew: vec![0; net.n_hosts() as usize],
            sw_skew: vec![0; net.n_switches() as usize],
            drop_rng: (0..n).map(|l| stream(self.seed, 0, l)).collect(),
            corrupt_rng: (0..n).map(|l| stream(self.seed, 1, l)).collect(),
            credit_rng: (0..n).map(|l| stream(self.seed, 2, l)).collect(),
        };
        for tf in &self.timed {
            let (links, down) = match tf.kind {
                FaultKind::LinkDown(sel) => (resolve(sel, net), true),
                FaultKind::LinkUp(sel) => (resolve(sel, net), false),
                FaultKind::SwitchDown(sw) => (net.switch_links(SwitchId(sw)), true),
                FaultKind::SwitchUp(sw) => (net.switch_links(SwitchId(sw)), false),
            };
            c.timed.push(CompiledTimed { at: tf.at, links, down });
        }
        c.timed.sort_by_key(|t| t.at);
        let mut drop_p = vec![0.0f64; n];
        let mut corrupt_p = vec![0.0f64; n];
        let mut credit_p = vec![0.0f64; n];
        for imp in &self.impairments {
            for l in resolve(imp.selector, net) {
                let i = l.idx();
                drop_p[i] = union(drop_p[i], imp.drop_prob);
                corrupt_p[i] = union(corrupt_p[i], imp.corrupt_prob);
                credit_p[i] = union(credit_p[i], imp.credit_loss_prob);
            }
            c.any_impairment = true;
        }
        for i in 0..n {
            c.drop_thresh[i] = threshold(drop_p[i]);
            c.corrupt_thresh[i] = threshold(corrupt_p[i]);
            c.credit_thresh[i] = threshold(credit_p[i]);
        }
        for d in &self.drift {
            match d.node {
                NodeRef::Host(h) => c.host_skew[h as usize] = d.skew_ppm,
                NodeRef::Switch(s) => c.sw_skew[s as usize] = d.skew_ppm,
            }
        }
        c
    }
}

/// Independent-union of two probabilities, `1 - (1-a)(1-b)`. The
/// identity cases short-circuit so a lone impairment keeps its exact
/// threshold (bit-identical to composing with nothing).
fn union(a: f64, b: f64) -> f64 {
    let b = b.clamp(0.0, 1.0);
    if a <= 0.0 {
        b
    } else if b <= 0.0 {
        a
    } else {
        1.0 - (1.0 - a) * (1.0 - b)
    }
}

/// Resolve a selector to concrete directed links.
fn resolve(sel: LinkSelector, net: &FoldedClos) -> Vec<LinkId> {
    match sel {
        LinkSelector::Link(l) => vec![l],
        LinkSelector::LeafSpine { leaf, spine } => {
            net.leaf_spine_links(leaf, spine).to_vec()
        }
        LinkSelector::HostLink(h) => {
            vec![net.host_out_link(HostId(h)).link, net.host_delivery_link(HostId(h))]
        }
    }
}

/// The private random stream for impairment `kind` on link `link_idx`.
/// One stream per (link, kind) pair: each is consumed by exactly one
/// node (the one that ships packets onto, or returns credits over, that
/// link), so the sequence of rolls is interleaving-independent.
fn stream(seed: u64, kind: u64, link_idx: usize) -> SplitMix64 {
    let mut mix =
        SplitMix64::new(seed ^ 0xFA17_0BAD_5EED_0001 ^ (kind << 56) ^ (link_idx as u64));
    SplitMix64::new(mix.next_u64())
}

/// Probability → 64-bit comparison threshold. `p >= 1` maps to the
/// sentinel `u64::MAX` ("always, no draw needed"), `p <= 0` to 0
/// ("never, no draw needed").
fn threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        (p * 18_446_744_073_709_551_616.0) as u64
    }
}

/// One resolved timed fault: the links to flip and their new state.
#[derive(Debug, Clone)]
pub struct CompiledTimed {
    /// When it applies (global time).
    pub at: SimTime,
    /// The directed links affected.
    pub links: Vec<LinkId>,
    /// `true` = links go down, `false` = links come back up.
    pub down: bool,
}

/// Mutable link up/down state, separated from the stochastic tables so
/// one authority can be shared across partitions (mutated only at epoch
/// fences) while [`CompiledFaults`] is cloned per partition.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    /// Per-link count of active down-causes: a link can be covered by
    /// several overlapping down intervals (a `SwitchDown` plus a
    /// `LinkDown`, say) and only comes back up when the last one lifts.
    down_causes: Vec<u32>,
}

impl LinkState {
    /// All-links-up state for a topology with `n_links` directed links.
    pub fn new(n_links: usize) -> Self {
        LinkState { down_causes: vec![0; n_links] }
    }

    /// Whether `link` is currently failed.
    #[inline]
    pub fn is_down(&self, link: LinkId) -> bool {
        self.down_causes[link.idx()] > 0
    }

    /// Apply one resolved timed fault, returning the links whose state
    /// actually *changed* and the new state (`true` = now down).
    ///
    /// Down-causes are refcounted per link, so with overlapping down
    /// intervals the first Up event does not resurrect a link another
    /// interval still holds down — it is omitted from the returned list
    /// (which is what drives flow re-routing and the admission
    /// controller's link state), and `is_down` keeps reporting it failed
    /// until the last cause lifts. An Up with no matching Down is
    /// ignored rather than underflowing.
    pub fn apply_timed(&mut self, t: &CompiledTimed) -> (Vec<LinkId>, bool) {
        let down = t.down;
        let mut changed = Vec::with_capacity(t.links.len());
        for &l in &t.links {
            let causes = &mut self.down_causes[l.idx()];
            if down {
                *causes += 1;
                if *causes == 1 {
                    changed.push(l);
                }
            } else if *causes > 0 {
                *causes -= 1;
                if *causes == 0 {
                    changed.push(l);
                }
            }
        }
        (changed, down)
    }
}

/// The timed-fault schedule as a [`NodeModel`]: event `idx` selects the
/// `idx`-th entry of the compiled schedule, the effect is the set of
/// links whose state changed plus their new state. The runtime drives
/// one injector per simulation (at epoch fences, all partitions
/// quiescent) and fans the changed links out to routing, admission, and
/// the per-link down flags.
#[derive(Debug)]
pub struct FaultInjector {
    timed: Vec<CompiledTimed>,
    state: LinkState,
}

impl FaultInjector {
    /// Current link up/down state.
    pub fn state(&self) -> &LinkState {
        &self.state
    }

    /// The schedule being driven (sorted by time).
    pub fn timed(&self) -> &[CompiledTimed] {
        &self.timed
    }
}

impl NodeModel for FaultInjector {
    type Event = usize;
    type Effect = (Vec<LinkId>, bool);

    fn on_event(&mut self, _local: SimTime, idx: usize) -> (Vec<LinkId>, bool) {
        let t = self.timed[idx].clone();
        self.state.apply_timed(&t)
    }
}

/// A [`FaultPlan`] resolved against a concrete topology, ready for the
/// event loop: O(1) per-link state/threshold lookups, a private RNG
/// stream per (link, impairment kind) for the rolls.
#[derive(Debug, Clone)]
pub struct CompiledFaults {
    enabled: bool,
    timed: Vec<CompiledTimed>,
    drop_thresh: Vec<u64>,
    corrupt_thresh: Vec<u64>,
    credit_thresh: Vec<u64>,
    any_impairment: bool,
    state: LinkState,
    host_skew: Vec<i32>,
    sw_skew: Vec<i32>,
    drop_rng: Vec<SplitMix64>,
    corrupt_rng: Vec<SplitMix64>,
    credit_rng: Vec<SplitMix64>,
}

impl CompiledFaults {
    /// The no-faults table used by plain (fault-free) simulations: every
    /// query short-circuits and no state is allocated.
    pub fn disabled() -> Self {
        CompiledFaults {
            enabled: false,
            timed: Vec::new(),
            drop_thresh: Vec::new(),
            corrupt_thresh: Vec::new(),
            credit_thresh: Vec::new(),
            any_impairment: false,
            state: LinkState::default(),
            host_skew: Vec::new(),
            sw_skew: Vec::new(),
            drop_rng: Vec::new(),
            corrupt_rng: Vec::new(),
            credit_rng: Vec::new(),
        }
    }

    /// Whether any fault machinery is active for this run.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The timed fault schedule (sorted by time).
    pub fn timed(&self) -> &[CompiledTimed] {
        &self.timed
    }

    /// Apply timed fault `idx` to the *internal* link state, returning
    /// the links whose state actually changed and the new state (`true`
    /// = now down). See [`LinkState::apply_timed`]. Simulations that
    /// share link state across partitions keep their own [`LinkState`]
    /// (or a [`FaultInjector`]) instead of calling this.
    pub fn apply_timed(&mut self, idx: usize) -> (Vec<LinkId>, bool) {
        let t = self.timed[idx].clone();
        self.state.apply_timed(&t)
    }

    /// Whether `link` is currently failed (per the internal state).
    #[inline]
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.enabled && self.state.is_down(link)
    }

    /// A fresh all-links-up state sized for this topology.
    pub fn link_state(&self) -> LinkState {
        LinkState::new(self.drop_thresh.len())
    }

    /// The timed schedule as a drivable [`FaultInjector`] node.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            timed: self.timed.clone(),
            state: LinkState::new(self.drop_thresh.len()),
        }
    }

    #[inline]
    fn roll(rng: &mut SplitMix64, thresh: u64) -> bool {
        if thresh == 0 {
            false
        } else if thresh == u64::MAX {
            true
        } else {
            rng.next_u64() < thresh
        }
    }

    /// Roll the per-packet drop impairment for `link`.
    #[inline]
    pub fn roll_drop(&mut self, link: LinkId) -> bool {
        self.any_impairment && {
            let i = link.idx();
            Self::roll(&mut self.drop_rng[i], self.drop_thresh[i])
        }
    }

    /// Roll the per-packet corruption impairment for `link`.
    #[inline]
    pub fn roll_corrupt(&mut self, link: LinkId) -> bool {
        self.any_impairment && {
            let i = link.idx();
            Self::roll(&mut self.corrupt_rng[i], self.corrupt_thresh[i])
        }
    }

    /// Roll the per-credit loss impairment for the reverse channel of
    /// data link `link`.
    #[inline]
    pub fn roll_credit_loss(&mut self, link: LinkId) -> bool {
        self.any_impairment && {
            let i = link.idx();
            Self::roll(&mut self.credit_rng[i], self.credit_thresh[i])
        }
    }

    /// Clock rate skew for a host, ppm.
    pub fn host_skew_ppm(&self, host: u32) -> i32 {
        if self.enabled { self.host_skew[host as usize] } else { 0 }
    }

    /// Clock rate skew for a switch, ppm.
    pub fn switch_skew_ppm(&self, sw: u32) -> i32 {
        if self.enabled { self.sw_skew[sw as usize] } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_topology::ClosParams;

    fn net() -> FoldedClos {
        FoldedClos::build(ClosParams::scaled(16))
    }

    #[test]
    fn empty_plan_compiles_inert() {
        let net = net();
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let c = plan.compile(&net);
        assert!(c.enabled());
        assert!(c.timed().is_empty());
        let mut c2 = c.clone();
        for l in 0..net.n_links() {
            assert!(!c2.is_link_down(LinkId(l)));
            assert!(!c2.roll_drop(LinkId(l)));
            assert!(!c2.roll_corrupt(LinkId(l)));
        }
        // No randomness was consumed by any of those queries.
        assert_eq!(format!("{:?}", c.drop_rng), format!("{:?}", c2.drop_rng));
        assert_eq!(format!("{:?}", c.corrupt_rng), format!("{:?}", c2.corrupt_rng));
    }

    #[test]
    fn disabled_table_answers_everything_without_state() {
        let mut d = CompiledFaults::disabled();
        assert!(!d.enabled());
        assert!(!d.is_link_down(LinkId(0)));
        assert!(!d.roll_drop(LinkId(123)));
        assert_eq!(d.host_skew_ppm(5), 0);
    }

    #[test]
    fn switch_down_resolves_all_its_links() {
        let net = net();
        let spine0 = net.spine(0);
        let plan = FaultPlan::new(1).at(SimTime::from_ms(1), FaultKind::SwitchDown(spine0.0));
        let mut c = plan.compile(&net);
        assert_eq!(c.timed().len(), 1);
        // A spine in a 2-leaf network touches 2 leaves × 2 directions.
        assert_eq!(c.timed()[0].links.len(), 4);
        let (links, down) = c.apply_timed(0);
        assert!(down);
        for l in links {
            assert!(c.is_link_down(l));
        }
        // The leaf-spine selector agrees with the switch-wide one.
        let pair = net.leaf_spine_links(0, 0);
        assert!(c.is_link_down(pair[0]) && c.is_link_down(pair[1]));
        // Links of other spines are untouched.
        let other = net.leaf_spine_links(0, 1);
        assert!(!c.is_link_down(other[0]));
    }

    #[test]
    fn down_then_up_restores() {
        let net = net();
        let sel = LinkSelector::HostLink(3);
        let plan = FaultPlan::new(2)
            .at(SimTime::from_ms(1), FaultKind::LinkDown(sel))
            .at(SimTime::from_ms(2), FaultKind::LinkUp(sel));
        let mut c = plan.compile(&net);
        let up_link = net.host_out_link(HostId(3)).link;
        c.apply_timed(0);
        assert!(c.is_link_down(up_link));
        c.apply_timed(1);
        assert!(!c.is_link_down(up_link));
    }

    #[test]
    fn overlapping_down_intervals_are_refcounted() {
        let net = net();
        let spine0 = net.spine(0);
        let cable = LinkSelector::LeafSpine { leaf: 0, spine: 0 };
        // The switch-wide failure and the leaf-0 cable failure overlap
        // on two links; the first Up must not resurrect them.
        let plan = FaultPlan::new(4)
            .at(SimTime::from_ms(1), FaultKind::SwitchDown(spine0.0))
            .at(SimTime::from_ms(2), FaultKind::LinkDown(cable))
            .at(SimTime::from_ms(3), FaultKind::SwitchUp(spine0.0))
            .at(SimTime::from_ms(4), FaultKind::LinkUp(cable));
        let mut c = plan.compile(&net);
        let pair = net.leaf_spine_links(0, 0);
        let (ch, down) = c.apply_timed(0);
        assert!(down);
        assert_eq!(ch.len(), 4, "fresh failure changes every spine link");
        let (ch, _) = c.apply_timed(1);
        assert!(ch.is_empty(), "already-down links do not change state");
        let (ch, down) = c.apply_timed(2);
        assert!(!down);
        assert_eq!(ch.len(), 2, "only the other leaf's links come back");
        assert!(!ch.contains(&pair[0]) && !ch.contains(&pair[1]));
        assert!(c.is_link_down(pair[0]) && c.is_link_down(pair[1]), "cable fault still holds");
        let (ch, _) = c.apply_timed(3);
        assert_eq!(ch.len(), 2);
        assert!(!c.is_link_down(pair[0]) && !c.is_link_down(pair[1]));
    }

    #[test]
    fn stray_up_event_is_ignored() {
        let net = net();
        let sel = LinkSelector::HostLink(1);
        let plan = FaultPlan::new(6).at(SimTime::from_ms(1), FaultKind::LinkUp(sel));
        let mut c = plan.compile(&net);
        let (ch, down) = c.apply_timed(0);
        assert!(!down);
        assert!(ch.is_empty(), "an Up with no matching Down changes nothing");
        assert!(!c.is_link_down(net.host_out_link(HostId(1)).link));
    }

    #[test]
    fn overlapping_impairments_compose_instead_of_overwriting() {
        let net = net();
        let link = net.host_out_link(HostId(0)).link;
        let plan = FaultPlan::new(9)
            .impair(LinkImpairment {
                selector: LinkSelector::Link(link),
                drop_prob: 0.5,
                corrupt_prob: 0.3,
                credit_loss_prob: 0.0,
            })
            // HostLink(0) covers `link` too: drop composes, and its zero
            // corrupt/credit probabilities must not erase the first
            // impairment's.
            .impair(LinkImpairment {
                selector: LinkSelector::HostLink(0),
                drop_prob: 0.5,
                corrupt_prob: 0.0,
                credit_loss_prob: 0.0,
            });
        let c = plan.compile(&net);
        assert_eq!(c.drop_thresh[link.idx()], threshold(0.75), "1-(1-0.5)(1-0.5)");
        assert_eq!(c.corrupt_thresh[link.idx()], threshold(0.3), "0.0 erased 0.3");
        // The delivery link only appears in the second impairment.
        let delivery = net.host_delivery_link(HostId(0));
        assert_eq!(c.drop_thresh[delivery.idx()], threshold(0.5));
        assert_eq!(c.corrupt_thresh[delivery.idx()], 0);
    }

    #[test]
    fn timed_schedule_is_sorted() {
        let net = net();
        let sel = LinkSelector::HostLink(0);
        let plan = FaultPlan::new(3)
            .at(SimTime::from_ms(5), FaultKind::LinkUp(sel))
            .at(SimTime::from_ms(1), FaultKind::LinkDown(sel));
        let c = plan.compile(&net);
        assert!(c.timed()[0].at < c.timed()[1].at);
        assert!(c.timed()[0].down);
    }

    #[test]
    fn probability_thresholds() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(1.0), u64::MAX);
        assert_eq!(threshold(2.0), u64::MAX);
        let half = threshold(0.5);
        assert!(half > u64::MAX / 2 - 2 && half < u64::MAX / 2 + 2);
    }

    #[test]
    fn certain_probabilities_do_not_draw() {
        let net = net();
        let link = net.host_out_link(HostId(0)).link;
        let plan = FaultPlan::new(7).impair(LinkImpairment {
            selector: LinkSelector::Link(link),
            drop_prob: 1.0,
            corrupt_prob: 0.0,
            credit_loss_prob: 0.0,
        });
        let mut c = plan.compile(&net);
        let before =
            (format!("{:?}", c.drop_rng[link.idx()]), format!("{:?}", c.corrupt_rng[link.idx()]));
        assert!(c.roll_drop(link));
        assert!(!c.roll_corrupt(link));
        let after =
            (format!("{:?}", c.drop_rng[link.idx()]), format!("{:?}", c.corrupt_rng[link.idx()]));
        assert_eq!(before, after, "p=1 and p=0 draw nothing");
    }

    #[test]
    fn rolls_are_seed_deterministic() {
        let net = net();
        let link = net.host_out_link(HostId(1)).link;
        let mk = |seed| {
            FaultPlan::new(seed).impair(LinkImpairment {
                selector: LinkSelector::Link(link),
                drop_prob: 0.3,
                corrupt_prob: 0.0,
                credit_loss_prob: 0.0,
            })
        };
        let mut a = mk(42).compile(&net);
        let mut b = mk(42).compile(&net);
        let sa: Vec<bool> = (0..256).map(|_| a.roll_drop(link)).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.roll_drop(link)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x));
        let mut c = mk(43).compile(&net);
        let sc: Vec<bool> = (0..256).map(|_| c.roll_drop(link)).collect();
        assert_ne!(sa, sc, "different seeds give different streams");
    }

    #[test]
    fn rolls_are_interleaving_independent_across_links() {
        // The per-(link, kind) streams mean the outcome sequence a link
        // sees is independent of traffic on any other link — the
        // property the partitioned runtime relies on when it clones the
        // table into every partition.
        let net = net();
        let la = net.host_out_link(HostId(0)).link;
        let lb = net.host_out_link(HostId(1)).link;
        let plan = |seed| {
            let imp = |l| LinkImpairment {
                selector: LinkSelector::Link(l),
                drop_prob: 0.4,
                corrupt_prob: 0.2,
                credit_loss_prob: 0.0,
            };
            FaultPlan::new(seed).impair(imp(la)).impair(imp(lb))
        };
        // Sequential: all of link A's rolls, then all of link B's.
        let mut seq = plan(11).compile(&net);
        let sa: Vec<bool> = (0..64).map(|_| seq.roll_drop(la)).collect();
        let sb: Vec<bool> = (0..64).map(|_| seq.roll_drop(lb)).collect();
        // Interleaved, with corrupt rolls mixed in for good measure.
        let mut il = plan(11).compile(&net);
        let mut ia = Vec::new();
        let mut ib = Vec::new();
        for _ in 0..64 {
            ib.push(il.roll_drop(lb));
            il.roll_corrupt(la);
            ia.push(il.roll_drop(la));
            il.roll_corrupt(lb);
        }
        assert_eq!(sa, ia);
        assert_eq!(sb, ib);
    }

    #[test]
    fn injector_matches_internal_apply_timed() {
        let net = net();
        let sel = LinkSelector::HostLink(2);
        let plan = FaultPlan::new(5)
            .at(SimTime::from_ms(1), FaultKind::LinkDown(sel))
            .at(SimTime::from_ms(2), FaultKind::LinkUp(sel));
        let mut c = plan.compile(&net);
        let mut inj = c.injector();
        use dqos_core::NodeModel;
        for idx in 0..c.timed().len() {
            let at = c.timed()[idx].at;
            let (a, da) = c.apply_timed(idx);
            let (b, db) = inj.on_event(at, idx);
            assert_eq!((a, da), (b, db));
        }
        assert!(!inj.state().is_down(net.host_out_link(HostId(2)).link));
    }

    #[test]
    fn drift_specs_land_on_nodes() {
        let net = net();
        let plan = FaultPlan::new(0)
            .with_drift(NodeRef::Host(2), 150)
            .with_drift(NodeRef::Switch(1), -80);
        let c = plan.compile(&net);
        assert_eq!(c.host_skew_ppm(2), 150);
        assert_eq!(c.host_skew_ppm(3), 0);
        assert_eq!(c.switch_skew_ppm(1), -80);
        assert_eq!(c.switch_skew_ppm(0), 0);
    }
}
