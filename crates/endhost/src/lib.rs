//! # dqos-endhost
//!
//! The end-host network interface of §3.2, plus the receive side.
//!
//! Egress ([`Nic`]) mirrors the paper's two-VC organisation:
//!
//! * **Regulated VC**: two queues, one feeding the other. Packets wait in
//!   an *eligible-time* queue (ascending eligible time); once eligible
//!   they move to an injection queue sorted by ascending deadline.
//!   Injection happens when the link is free and credits are available.
//! * **Best-effort VC**: one deadline-sorted queue, injected "only when
//!   the link is available, there are credits, and the regulated traffic
//!   VC has no packets ready to inject" — strict priority, with packets
//!   still waiting for eligibility explicitly *not* blocking best-effort.
//!
//! Under *Traditional 2 VCs* the same structure degrades to two plain
//! FIFOs with no eligible-time stage (no deadlines exist).
//!
//! Ingress ([`Sink`]) consumes packets at link rate, returns credits,
//! verifies per-flow in-order delivery (the property the appendix
//! proves), and reassembles application messages/frames so the paper's
//! *frame latency* (Figure 3) can be measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nic;
pub mod sink;

pub use nic::{Nic, NicConfig, NicStats};
pub use sink::{CompletedMessage, Sink, SinkStats};
