//! Receive side: consume, credit, verify order, reassemble.
//!
//! Hosts drain their delivery link at line rate (the paper's hosts never
//! back-pressure the fabric), so every received packet immediately frees
//! its buffer space and a credit returns upstream.
//!
//! The sink also enforces the paper's correctness claims at runtime:
//! out-of-order delivery within a flow is **counted** (the appendix
//! proves the count must be zero for every architecture, since all four
//! use FIFO-composable structures — the integration tests assert this),
//! and application messages are reassembled so frame latency can be
//! reported as in Figure 3.

use dqos_core::{NodeAction, NodeModel, Packet, TrafficClass};
use dqos_sim_core::SimTime;
use dqos_topology::Port;

/// A fully reassembled application message (frame, control message, or
/// best-effort transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedMessage {
    /// Traffic class.
    pub class: TrafficClass,
    /// When the message was handed to the source NIC (global time).
    pub created_at: SimTime,
    /// When the last part arrived (global time).
    pub completed_at: SimTime,
    /// Total message bytes.
    pub bytes: u64,
    /// Number of packets it was segmented into.
    pub parts: u32,
    /// The flow it belongs to.
    pub flow: dqos_core::FlowId,
}

/// Receive-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinkStats {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
    /// Messages completed.
    pub messages: u64,
    /// Out-of-order deliveries observed (must stay 0; see appendix).
    pub out_of_order: u64,
    /// Messages that were abandoned half-assembled (must stay 0 in a
    /// lossless fabric).
    pub broken_messages: u64,
}

#[derive(Debug, Clone, Copy)]
struct FlowProgress {
    last_msg: u64,
    last_part: u32,
    seen_any: bool,
    // Current message under reassembly.
    cur_msg: u64,
    cur_received: u32,
    cur_bytes: u64,
}

impl Default for FlowProgress {
    fn default() -> Self {
        FlowProgress {
            last_msg: 0,
            last_part: 0,
            seen_any: false,
            cur_msg: u64::MAX,
            cur_received: 0,
            cur_bytes: 0,
        }
    }
}

#[derive(Debug)]
struct Band {
    base: usize,
    slots: Vec<FlowProgress>,
}

/// The receive side of one host.
///
/// Per-flow reassembly state lives in **bands**: pre-sized dense slabs
/// covering the contiguous flow-id ranges this host actually terminates
/// (the static flow-id layout gives every destination one video range
/// and one aggregated range). Ids outside every band fall back to a
/// grow-on-demand dense table, so a band-less `Sink::new()` accepts any
/// flow id — at the cost of sizing its table by the largest id seen.
#[derive(Debug, Default)]
pub struct Sink {
    bands: Vec<Band>,
    // Fallback, indexed by FlowId; grown on demand.
    flows: Vec<FlowProgress>,
    stats: SinkStats,
}

impl Sink {
    /// A fresh sink with no bands (everything on the fallback table).
    pub fn new() -> Self {
        Sink::default()
    }

    /// A sink pre-sized for the given `(first_id, count)` flow-id
    /// ranges. Ranges must be disjoint; lookups scan them in order.
    pub fn with_bands(ranges: &[(u32, u32)]) -> Self {
        Sink {
            bands: ranges
                .iter()
                .map(|&(base, count)| Band {
                    base: base as usize,
                    slots: vec![FlowProgress::default(); count as usize],
                })
                .collect(),
            flows: Vec::new(),
            stats: SinkStats::default(),
        }
    }

    fn progress<'a>(
        bands: &'a mut [Band],
        flows: &'a mut Vec<FlowProgress>,
        idx: usize,
    ) -> &'a mut FlowProgress {
        for b in bands {
            if idx >= b.base && idx < b.base + b.slots.len() {
                return &mut b.slots[idx - b.base];
            }
        }
        if idx >= flows.len() {
            flows.resize_with(idx + 1, FlowProgress::default);
        }
        &mut flows[idx]
    }

    /// Counters.
    pub fn stats(&self) -> SinkStats {
        self.stats
    }

    /// A packet arrived at global time `now`. Returns the credit action
    /// for the upstream switch and, if this packet completed a message,
    /// the reassembled record.
    pub fn on_packet(
        &mut self,
        pkt: &Packet,
        now: SimTime,
    ) -> (NodeAction, Option<CompletedMessage>) {
        self.stats.packets += 1;
        self.stats.bytes += pkt.len as u64;

        let fp = Self::progress(&mut self.bands, &mut self.flows, pkt.flow.idx());

        // In-order check: (msg_id, part) must increase lexicographically
        // within a flow.
        if fp.seen_any {
            let ok = (pkt.msg.msg_id, pkt.msg.part) > (fp.last_msg, fp.last_part);
            if !ok {
                self.stats.out_of_order += 1;
            }
        }
        fp.seen_any = true;
        fp.last_msg = pkt.msg.msg_id;
        fp.last_part = pkt.msg.part;

        // Reassembly. In-order delivery makes messages sequential within
        // a flow; a new msg_id while the previous is incomplete means
        // packets were lost, which the lossless fabric forbids.
        if fp.cur_msg != pkt.msg.msg_id {
            if fp.cur_msg != u64::MAX && fp.cur_received > 0 {
                self.stats.broken_messages += 1;
            }
            fp.cur_msg = pkt.msg.msg_id;
            fp.cur_received = 0;
            fp.cur_bytes = 0;
        }
        fp.cur_received += 1;
        fp.cur_bytes += pkt.len as u64;

        let completed = if fp.cur_received == pkt.msg.parts {
            self.stats.messages += 1;
            let msg = CompletedMessage {
                class: pkt.class,
                created_at: pkt.msg.created_at,
                completed_at: now,
                bytes: fp.cur_bytes,
                parts: pkt.msg.parts,
                flow: pkt.flow,
            };
            fp.cur_msg = u64::MAX;
            fp.cur_received = 0;
            fp.cur_bytes = 0;
            Some(msg)
        } else {
            None
        };

        // Host consumes instantly: buffer space frees now.
        let credit = NodeAction::SendCredit { in_port: Port(0), vc: pkt.vc(), bytes: pkt.len };
        (credit, completed)
    }
}

impl NodeModel for Sink {
    type Event = Packet;
    type Effect = (NodeAction, Option<CompletedMessage>);

    /// Sinks keep no clock domain of their own: `local` here is the
    /// **global** arrival time, so completion latencies are comparable
    /// across hosts regardless of skew.
    fn on_event(&mut self, local: SimTime, pkt: Packet) -> Self::Effect {
        self.on_packet(&pkt, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_core::{FlowId, MsgTag};
    use dqos_topology::{HostId, Route, RouteHop, SwitchId};

    fn pkt(flow: u32, msg_id: u64, part: u32, parts: u32, len: u32) -> Packet {
        Packet {
            id: (msg_id << 8) | part as u64,
            flow: FlowId(flow),
            class: TrafficClass::Multimedia,
            src: HostId(0),
            dst: HostId(1),
            len,
            deadline: SimTime::ZERO,
            eligible: None,
            route: Route::new(
                HostId(0),
                HostId(1),
                vec![RouteHop { switch: SwitchId(0), out_port: Port(1) }],
            )
            .port_path(),
            hop: 0,
            injected_at: SimTime::ZERO,
            msg: MsgTag { msg_id, part, parts, created_at: SimTime::from_us(5) },
            corrupted: false,
        }
    }

    #[test]
    fn single_packet_message_completes() {
        let mut s = Sink::new();
        let (credit, done) = s.on_packet(&pkt(0, 1, 0, 1, 512), SimTime::from_us(9));
        assert!(matches!(credit, NodeAction::SendCredit { bytes: 512, .. }));
        let m = done.unwrap();
        assert_eq!(m.bytes, 512);
        assert_eq!(m.parts, 1);
        assert_eq!(m.created_at, SimTime::from_us(5));
        assert_eq!(m.completed_at, SimTime::from_us(9));
        assert_eq!(s.stats().messages, 1);
    }

    #[test]
    fn multi_part_message_completes_on_last_part() {
        let mut s = Sink::new();
        for part in 0..3 {
            let (_, done) = s.on_packet(&pkt(0, 1, part, 4, 2048), SimTime::from_us(part as u64));
            assert!(done.is_none());
        }
        let (_, done) = s.on_packet(&pkt(0, 1, 3, 4, 100), SimTime::from_us(10));
        let m = done.unwrap();
        assert_eq!(m.bytes, 3 * 2048 + 100);
        assert_eq!(m.parts, 4);
        assert_eq!(s.stats().out_of_order, 0);
        assert_eq!(s.stats().broken_messages, 0);
    }

    #[test]
    fn detects_out_of_order() {
        let mut s = Sink::new();
        s.on_packet(&pkt(0, 1, 1, 3, 100), SimTime::ZERO);
        s.on_packet(&pkt(0, 1, 0, 3, 100), SimTime::ZERO); // regression!
        assert_eq!(s.stats().out_of_order, 1);
    }

    #[test]
    fn flows_are_independent() {
        let mut s = Sink::new();
        s.on_packet(&pkt(0, 5, 0, 2, 100), SimTime::ZERO);
        s.on_packet(&pkt(3, 1, 0, 1, 100), SimTime::ZERO); // other flow, smaller msg id: fine
        assert_eq!(s.stats().out_of_order, 0);
        let (_, done) = s.on_packet(&pkt(0, 5, 1, 2, 100), SimTime::ZERO);
        assert!(done.is_some());
        assert_eq!(s.stats().messages, 2);
    }

    #[test]
    fn counts_broken_messages() {
        let mut s = Sink::new();
        s.on_packet(&pkt(0, 1, 0, 3, 100), SimTime::ZERO);
        // Next message begins while msg 1 is incomplete.
        s.on_packet(&pkt(0, 2, 0, 1, 100), SimTime::ZERO);
        assert_eq!(s.stats().broken_messages, 1);
    }

    #[test]
    fn banded_and_fallback_flows_behave_identically() {
        // Bands [10, 12) and [100, 103); flow 5 spills to the fallback.
        let mut s = Sink::with_bands(&[(10, 2), (100, 3)]);
        for flow in [10u32, 11, 102, 5] {
            let (_, done) = s.on_packet(&pkt(flow, 1, 0, 2, 64), SimTime::ZERO);
            assert!(done.is_none());
            let (_, done) = s.on_packet(&pkt(flow, 1, 1, 2, 64), SimTime::from_us(1));
            assert!(done.is_some(), "flow {flow}");
        }
        assert_eq!(s.stats().messages, 4);
        assert_eq!(s.stats().out_of_order, 0);
        assert_eq!(s.stats().broken_messages, 0);
        // The fallback table only grew to cover the spilled id, not the
        // banded ranges.
        assert!(s.flows.len() <= 6);
    }

    #[test]
    fn interleaved_messages_across_flows_reassemble() {
        let mut s = Sink::new();
        s.on_packet(&pkt(0, 1, 0, 2, 10), SimTime::ZERO);
        s.on_packet(&pkt(1, 1, 0, 2, 20), SimTime::ZERO);
        s.on_packet(&pkt(1, 1, 1, 2, 20), SimTime::ZERO);
        let (_, done) = s.on_packet(&pkt(0, 1, 1, 2, 10), SimTime::ZERO);
        assert!(done.is_some());
        assert_eq!(s.stats().messages, 2);
        assert_eq!(s.stats().broken_messages, 0);
    }
}
