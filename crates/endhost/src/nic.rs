//! Egress NIC model.

// tidy: hot-path

use dqos_core::{Architecture, NicEvent, NodeAction, NodeModel, PktTok, Vc, NUM_VCS};
use dqos_queues::{DeadlineSortedQueue, FlatFifo, SchedQueue, SortedQueue};
use dqos_sim_core::{Bandwidth, SimTime};
use dqos_topology::Port;
use dqos_trace::ModelNote;

/// NIC parameters.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Architecture (decides queue structures and whether eligible time
    /// exists).
    pub arch: Architecture,
    /// Injection link bandwidth.
    pub link_bw: Bandwidth,
    /// The switch's input buffer per VC (initial credit).
    pub peer_buffer_per_vc: u32,
}

/// Injection counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Packets put on the wire.
    pub injected_packets: u64,
    /// Bytes put on the wire.
    pub injected_bytes: u64,
    /// High-water mark of packets queued in the NIC (all queues).
    pub max_queued_packets: usize,
}

/// The host-side injection queue: deadline-sorted for the EDF
/// architectures, FIFO (flat ring) for Traditional.
#[derive(Debug)]
enum InjectQueue {
    Sorted(DeadlineSortedQueue<PktTok>),
    Fifo(FlatFifo<PktTok>),
}

impl InjectQueue {
    fn new(arch: Architecture) -> Self {
        if arch.host_sorted_queues() {
            InjectQueue::Sorted(DeadlineSortedQueue::new())
        } else {
            InjectQueue::Fifo(FlatFifo::new())
        }
    }
    fn enqueue(&mut self, p: PktTok) {
        match self {
            InjectQueue::Sorted(q) => q.enqueue(p),
            InjectQueue::Fifo(q) => q.enqueue(p),
        }
    }
    fn peek(&self) -> Option<&PktTok> {
        match self {
            InjectQueue::Sorted(q) => q.peek(),
            InjectQueue::Fifo(q) => q.peek(),
        }
    }
    fn dequeue(&mut self) -> Option<PktTok> {
        match self {
            InjectQueue::Sorted(q) => q.dequeue(),
            InjectQueue::Fifo(q) => q.dequeue(),
        }
    }
    fn len(&self) -> usize {
        match self {
            InjectQueue::Sorted(q) => SchedQueue::len(q),
            InjectQueue::Fifo(q) => SchedQueue::len(q),
        }
    }
}

/// The egress NIC state machine. All times are in the host's local clock
/// domain; the event loop translates.
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    /// Packets not yet eligible, keyed by eligible time (EDF archs only).
    eligible_q: SortedQueue<PktTok>,
    /// Ready-to-inject queues per VC.
    ready: [InjectQueue; NUM_VCS],
    credits: [u32; NUM_VCS],
    tx_busy: bool,
    /// The earliest wake-up already requested (dedup of WakeAt actions).
    wake_at: Option<SimTime>,
    stats: NicStats,
    /// Flight-recorder hooks (off by default; see `dqos-trace`). Pacing
    /// promotions leave [`ModelNote`]s for the runtime to drain.
    tracing: bool,
    notes: Vec<ModelNote>,
}

impl Nic {
    /// Build a NIC.
    pub fn new(cfg: NicConfig) -> Self {
        Nic {
            cfg,
            eligible_q: SortedQueue::new(),
            ready: [InjectQueue::new(cfg.arch), InjectQueue::new(cfg.arch)],
            credits: [cfg.peer_buffer_per_vc; NUM_VCS],
            tx_busy: false,
            wake_at: None,
            stats: NicStats::default(),
            tracing: false,
            notes: Vec::new(),
        }
    }

    /// Enable or disable flight-recorder notes. Tracing must never change
    /// behaviour: the only effect is appending to the note buffer.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Swap the accumulated notes into `buf` (which should be empty).
    pub fn swap_notes(&mut self, buf: &mut Vec<ModelNote>) {
        std::mem::swap(&mut self.notes, buf);
    }

    /// Counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Packets currently queued (all stages).
    pub fn queued_packets(&self) -> usize {
        self.eligible_q.len() + self.ready[0].len() + self.ready[1].len()
    }

    /// Remaining injection credit toward the leaf switch on `vc`
    /// (stall diagnostics: a stuck NIC with zero credit means the
    /// returning credit was lost or the switch buffer never drained).
    pub fn credits(&self, vc: Vc) -> u32 {
        self.credits[vc.idx()]
    }

    /// Hand a batch of freshly stamped packet tokens to the NIC at local
    /// time `now`. The whole message's worth of packets is sorted into
    /// the pacing/injection queues in one visit, then the link is pumped
    /// once — the NIC-side half of the simulator's batch pacing. Borrows
    /// the slice so the runtime can reuse its token scratch buffer.
    pub fn enqueue_batch(&mut self, toks: &[PktTok], now: SimTime, actions: &mut Vec<NodeAction>) {
        for &p in toks {
            // Eligible-time smoothing only exists in the EDF
            // architectures, and only delays packets still in the
            // future. (`eligible == ZERO` encodes "no eligible time" and
            // can never exceed `now`.)
            if self.cfg.arch.uses_deadlines() && p.eligible > now {
                self.eligible_q.insert(p.eligible, p);
            } else {
                self.ready[p.vc.idx()].enqueue(p);
            }
        }
        self.stats.max_queued_packets = self.stats.max_queued_packets.max(self.queued_packets());
        self.pump(now, actions);
    }

    /// Timer callback: promote eligible packets, try to inject.
    pub fn on_wake(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        self.wake_at = None;
        self.pump(now, actions);
    }

    /// The injection link finished serialising.
    pub fn on_tx_done(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        self.tx_busy = false;
        self.pump(now, actions);
    }

    /// The switch returned credit.
    pub fn on_credit(&mut self, vc: Vc, bytes: u32, now: SimTime, actions: &mut Vec<NodeAction>) {
        self.credits[vc.idx()] += bytes;
        debug_assert!(self.credits[vc.idx()] <= self.cfg.peer_buffer_per_vc);
        self.pump(now, actions);
    }

    /// Promote, inject, and arrange the next wake-up.
    fn pump(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        // Promote every packet whose eligible time has come.
        while let Some(p) = self.eligible_q.pop_due(now) {
            if self.tracing {
                self.notes.push(ModelNote::Promoted { pkt: p.id });
            }
            let vc = p.vc.idx();
            self.ready[vc].enqueue(p);
        }
        self.try_tx(now, actions);
        // Arrange a wake-up for the next eligible head, if it is not
        // already covered by a pending one.
        if let Some(head) = self.eligible_q.head_key() {
            let need = match self.wake_at {
                None => true,
                Some(w) => head < w,
            };
            if need {
                self.wake_at = Some(head);
                actions.push(NodeAction::WakeAt { at: head });
            }
        }
    }

    fn try_tx(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        if self.tx_busy {
            return;
        }
        // §3.2: best-effort is injected only when the regulated VC has no
        // packet ready to inject — packets awaiting eligibility do not
        // count, and neither does a credit-blocked head ("ready" means
        // transmittable: the VCs account separate downstream buffers, so
        // best-effort may use a link the regulated VC cannot).
        let mut chosen = None;
        for vc in Vc::ALL {
            match self.ready[vc.idx()].peek() {
                Some(head) if self.credits[vc.idx()] >= head.len => {
                    chosen = Some(vc);
                    break;
                }
                _ => {}
            }
        }
        let Some(vc) = chosen else { return };
        // tidy: allow(no-unwrap) -- vc was chosen above precisely because
        // its ready queue had a head packet; nothing ran in between.
        let tok = self.ready[vc.idx()].dequeue().expect("nonempty");
        let len = tok.len;
        self.credits[vc.idx()] -= len;
        self.tx_busy = true;
        self.stats.injected_packets += 1;
        self.stats.injected_bytes += len as u64;
        // The arena-resident packet's `injected_at` stamp is the
        // runtime's job (it owns the arena this token points into).
        let finish = now + self.cfg.link_bw.tx_time(len as u64);
        actions.push(NodeAction::StartTx { out_port: Port(0), tok, finish });
    }
}

impl NodeModel for Nic {
    type Event = NicEvent;
    type Effect = Vec<NodeAction>;

    fn on_event(&mut self, local: SimTime, ev: NicEvent) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        match ev {
            NicEvent::Enqueue(toks) => self.enqueue_batch(&toks, local, &mut actions),
            NicEvent::Wake => self.on_wake(local, &mut actions),
            NicEvent::TxDone => self.on_tx_done(local, &mut actions),
            NicEvent::Credit { vc, bytes } => self.on_credit(vc, bytes, local, &mut actions),
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_core::TrafficClass;

    fn cfg(arch: Architecture) -> NicConfig {
        NicConfig { arch, link_bw: Bandwidth::gbps(8), peer_buffer_per_vc: 8192 }
    }

    fn pkt(id: u64, class: TrafficClass, len: u32, deadline: u64, eligible: Option<u64>) -> PktTok {
        PktTok {
            id,
            deadline: SimTime::from_ns(deadline),
            eligible: eligible.map_or(SimTime::ZERO, SimTime::from_ns),
            slot: id as u32,
            len,
            out: Port(1),
            hop: 0,
            vc: class.vc(),
            class,
        }
    }

    fn enq(nic: &mut Nic, toks: Vec<PktTok>, now: SimTime) -> Vec<NodeAction> {
        let mut acts = Vec::new();
        nic.enqueue_batch(&toks, now, &mut acts);
        acts
    }

    fn wake(nic: &mut Nic, now: SimTime) -> Vec<NodeAction> {
        let mut acts = Vec::new();
        nic.on_wake(now, &mut acts);
        acts
    }

    fn tx_done(nic: &mut Nic, now: SimTime) -> Vec<NodeAction> {
        let mut acts = Vec::new();
        nic.on_tx_done(now, &mut acts);
        acts
    }

    fn credit(nic: &mut Nic, vc: Vc, bytes: u32, now: SimTime) -> Vec<NodeAction> {
        let mut acts = Vec::new();
        nic.on_credit(vc, bytes, now, &mut acts);
        acts
    }

    fn tx_ids(actions: &[NodeAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                NodeAction::StartTx { tok, .. } => Some(tok.id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn injects_immediately_when_idle() {
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        let acts = enq(&mut nic, vec![pkt(1, TrafficClass::Control, 512, 5000, None)], SimTime::ZERO);
        assert_eq!(tx_ids(&acts), vec![1]);
        assert_eq!(nic.stats().injected_packets, 1);
    }

    #[test]
    fn deadline_order_within_regulated_vc() {
        let mut nic = Nic::new(cfg(Architecture::Simple2Vc));
        // The whole batch lands in the sorted queue before the link is
        // scheduled, so injection is in pure deadline order.
        let a = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::Control, 512, 9_000, None),
                pkt(2, TrafficClass::Control, 512, 7_000, None),
                pkt(3, TrafficClass::Control, 512, 8_000, None),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&a), vec![2], "earliest deadline first");
        let b = tx_done(&mut nic, SimTime::from_ns(512));
        assert_eq!(tx_ids(&b), vec![3]);
        let c = tx_done(&mut nic, SimTime::from_ns(1024));
        assert_eq!(tx_ids(&c), vec![1]);
    }

    #[test]
    fn traditional_keeps_fifo_order() {
        let mut nic = Nic::new(cfg(Architecture::Traditional2Vc));
        let a = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::Control, 512, 9_000, None),
                pkt(2, TrafficClass::Control, 512, 1_000, None),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&a), vec![1]);
        let b = tx_done(&mut nic, SimTime::from_ns(512));
        // FIFO: packet 2 goes second despite its earlier deadline — a
        // sorted queue would have sent it first had packet 1 not already
        // been on the wire; here order is pure arrival order.
        assert_eq!(tx_ids(&b), vec![2]);
    }

    #[test]
    fn eligible_time_delays_injection() {
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        let acts = enq(
            &mut nic,
            vec![pkt(1, TrafficClass::Multimedia, 2048, 50_000, Some(30_000))],
            SimTime::ZERO,
        );
        // Not injected yet; a wake-up at the eligible time is requested.
        assert!(tx_ids(&acts).is_empty());
        assert!(matches!(
            acts.as_slice(),
            [NodeAction::WakeAt { at }] if *at == SimTime::from_ns(30_000)
        ));
        let acts = wake(&mut nic, SimTime::from_ns(30_000));
        assert_eq!(tx_ids(&acts), vec![1]);
    }

    #[test]
    fn traditional_ignores_eligible_time() {
        let mut nic = Nic::new(cfg(Architecture::Traditional2Vc));
        let acts = enq(
            &mut nic,
            vec![pkt(1, TrafficClass::Multimedia, 2048, 50_000, Some(30_000))],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&acts), vec![1], "no smoothing without deadlines");
    }

    #[test]
    fn best_effort_waits_for_regulated() {
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        let acts = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::BestEffort, 512, 9_000, None),
                pkt(2, TrafficClass::Control, 512, 5_000, None),
            ],
            SimTime::ZERO,
        );
        // Control (VC0) wins even though BE arrived first.
        assert_eq!(tx_ids(&acts), vec![2]);
        let acts = tx_done(&mut nic, SimTime::from_ns(512));
        assert_eq!(tx_ids(&acts), vec![1]);
    }

    #[test]
    fn best_effort_proceeds_when_regulated_credit_starved() {
        // A VC0 head without credits is not "ready to inject": VC1 may
        // use the link (its credits account a different buffer).
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        nic.credits[0] = 0;
        let acts = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::Control, 512, 5_000, None),
                pkt(2, TrafficClass::BestEffort, 512, 9_000, None),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&acts), vec![2], "BE uses the link VC0 cannot");
        // VC0 credits arrive mid-flight; once the link frees, control goes.
        let acts = credit(&mut nic, Vc::REGULATED, 8192, SimTime::from_ns(100));
        assert!(tx_ids(&acts).is_empty(), "link still busy");
        let acts = tx_done(&mut nic, SimTime::from_ns(512));
        assert_eq!(tx_ids(&acts), vec![1]);
    }

    #[test]
    fn best_effort_flows_while_regulated_only_waits_eligibility() {
        // Packets waiting for eligible time do NOT block best-effort
        // (the paper's parenthetical).
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        let acts = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::Multimedia, 512, 100_000, Some(80_000)),
                pkt(2, TrafficClass::BestEffort, 512, 9_000, None),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&acts), vec![2], "BE uses the idle link");
    }

    #[test]
    fn credit_gating() {
        let mut nic = Nic::new(NicConfig {
            arch: Architecture::Ideal,
            link_bw: Bandwidth::gbps(8),
            peer_buffer_per_vc: 600,
        });
        let acts = enq(
            &mut nic,
            vec![
                pkt(1, TrafficClass::Control, 512, 5_000, None),
                pkt(2, TrafficClass::Control, 512, 6_000, None),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tx_ids(&acts), vec![1]);
        // 88 bytes of credit left: packet 2 stalls even when tx finishes.
        let acts = tx_done(&mut nic, SimTime::from_ns(512));
        assert!(tx_ids(&acts).is_empty());
        let acts = credit(&mut nic, Vc::REGULATED, 512, SimTime::from_ns(700));
        assert_eq!(tx_ids(&acts), vec![2]);
    }

    /// Drive random regulated packets through the NIC, serving the
    /// link to completion, and collect the injection order. Shared by the
    /// randomized port below and the gated proptest suite.
    fn injection_order(packets: Vec<(u32, u64)>) -> Vec<(u64, u64)> {
        // Effectively infinite credit: this property is about
        // ordering, not flow control.
        let mut nic = Nic::new(NicConfig {
            arch: Architecture::Ideal,
            link_bw: Bandwidth::gbps(8),
            peer_buffer_per_vc: u32::MAX / 2,
        });
        let batch: Vec<PktTok> = packets
            .iter()
            .enumerate()
            .map(|(i, &(len, deadline))| {
                pkt(i as u64, TrafficClass::Control, len.max(1), deadline, None)
            })
            .collect();
        let mut out = vec![];
        let mut now = 0u64;
        let mut acts = enq(&mut nic, batch, SimTime::ZERO);
        loop {
            let mut finished = None;
            for a in &acts {
                if let NodeAction::StartTx { tok, finish, .. } = a {
                    out.push((tok.id, tok.deadline.as_ns()));
                    finished = Some(finish.as_ns());
                }
            }
            match finished {
                Some(f) => {
                    now = now.max(f);
                    acts = tx_done(&mut nic, SimTime::from_ns(now));
                }
                None => break,
            }
        }
        out
    }

    /// Dependency-free port of the property: with every packet ready at
    /// t=0, the EDF NIC injects in non-decreasing deadline order, and
    /// injects everything.
    #[test]
    fn randomized_injection_is_deadline_sorted() {
        use dqos_sim_core::SimRng;
        let mut rng = SimRng::new(0x21C0);
        for _ in 0..100 {
            let packets: Vec<(u32, u64)> = (0..1 + rng.index(49))
                .map(|_| (1 + rng.index(4095) as u32, rng.range_u64(0, 999_999)))
                .collect();
            let n = packets.len();
            let order = injection_order(packets);
            assert_eq!(order.len(), n, "every packet injected");
            for w in order.windows(2) {
                assert!(w[0].1 <= w[1].1, "deadline order violated: {w:?}");
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// With every packet ready at t=0, the EDF NIC injects in
            /// non-decreasing deadline order, and injects everything.
            #[test]
            fn prop_injection_is_deadline_sorted(
                packets in proptest::collection::vec((1u32..4096, 0u64..1_000_000), 1..50),
            ) {
                let n = packets.len();
                let order = injection_order(packets);
                prop_assert_eq!(order.len(), n, "every packet injected");
                for w in order.windows(2) {
                    prop_assert!(w[0].1 <= w[1].1, "deadline order violated: {:?}", w);
                }
            }
        }
    }

    #[test]
    fn wake_dedup() {
        let mut nic = Nic::new(cfg(Architecture::Advanced2Vc));
        let a = enq(
            &mut nic,
            vec![pkt(1, TrafficClass::Multimedia, 512, 60_000, Some(40_000))],
            SimTime::ZERO,
        );
        assert_eq!(a.len(), 1, "one wake for the head");
        // A later-eligible packet must not request an extra wake.
        let b = enq(
            &mut nic,
            vec![pkt(2, TrafficClass::Multimedia, 512, 90_000, Some(70_000))],
            SimTime::ZERO,
        );
        assert!(b.is_empty(), "covered by the pending wake");
        // An earlier-eligible packet must re-arm.
        let c = enq(
            &mut nic,
            vec![pkt(3, TrafficClass::Multimedia, 512, 30_000, Some(10_000))],
            SimTime::ZERO,
        );
        assert!(matches!(
            c.as_slice(),
            [NodeAction::WakeAt { at }] if *at == SimTime::from_ns(10_000)
        ));
    }
}
