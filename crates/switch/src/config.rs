//! Switch configuration.

use dqos_core::Architecture;
use dqos_sim_core::Bandwidth;

/// Parameters of one switch (§4.1 values as defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Which of the four evaluated architectures this switch implements.
    pub arch: Architecture,
    /// Port count (16 in the paper).
    pub n_ports: u8,
    /// Buffer bytes per VC at each input and each output port
    /// (8 KiB in the paper).
    pub buffer_per_vc: u32,
    /// Link bandwidth; the crossbar runs at the same rate
    /// (no internal speed-up), 8 Gb/s in the paper.
    pub link_bw: Bandwidth,
    /// Input-buffer organisation. `false` (the paper, Fig. 1): one queue
    /// structure per (input, VC), candidate = its head — order errors and
    /// head-of-line blocking are possible and the take-over queue earns
    /// its keep. `true` (ablation): per-output VOQ banks at each input.
    pub input_voq: bool,
}

impl SwitchConfig {
    /// The paper's switch: 16 ports, 8 KiB per VC, 8 Gb/s links.
    pub fn paper(arch: Architecture) -> Self {
        SwitchConfig {
            arch,
            n_ports: 16,
            buffer_per_vc: 8 * 1024,
            link_bw: Bandwidth::gbps(8),
            input_voq: false,
        }
    }

    /// Sanity checks; called by the switch constructor.
    pub fn validate(&self) {
        assert!(self.n_ports > 0, "switch needs ports");
        assert!(self.buffer_per_vc > 0, "switch needs buffer space");
        assert!(self.link_bw.as_bytes_per_sec() > 0, "links need bandwidth");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = SwitchConfig::paper(Architecture::Advanced2Vc);
        assert_eq!(c.n_ports, 16);
        assert_eq!(c.buffer_per_vc, 8192);
        assert_eq!(c.link_bw, Bandwidth::gbps(8));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "needs ports")]
    fn zero_ports_invalid() {
        let mut c = SwitchConfig::paper(Architecture::Ideal);
        c.n_ports = 0;
        c.validate();
    }
}
