//! The switch state machine.
//!
//! Driven by four handlers, each returning [`NodeAction`]s for the event
//! loop to schedule:
//!
//! * [`Switch::on_packet_arrival`] — a packet finished arriving on an
//!   input port (the upstream transmitter held a credit for it, so space
//!   is guaranteed).
//! * [`Switch::on_xbar_done`] — an internal crossbar transfer completed:
//!   the packet is now in the output buffer, the input-buffer space is
//!   returned upstream as a credit.
//! * [`Switch::on_tx_done`] — the output link finished serialising a
//!   packet and is free again.
//! * [`Switch::on_credit`] — the downstream node returned buffer credit.
//!
//! ## Input organisation
//!
//! Faithful to Fig. 1 and §3.2, each input port has **one queue
//! structure per VC** (FIFO / heap / ordered+take-over, by
//! architecture), and the arbiter only ever sees that structure's
//! *candidate* head: "the switches can just take into account the first
//! packet at each input buffer". A high-deadline candidate bound for a
//! blocked output therefore head-of-line-blocks the packets behind it —
//! exactly the *order error* the take-over queue attenuates.
//!
//! [`SwitchConfig::input_voq`] switches the input stage to per-output
//! VOQ banks instead (head-of-line blocking across outputs eliminated);
//! this is the `ablation_voq` configuration, not the paper's.
//!
//! Scheduling decisions happen in two places, re-evaluated whenever any
//! relevant resource frees: `try_xbar` (which input feeds an output's
//! buffer next — EDF over candidate heads or round-robin, VC0 first) and
//! `try_tx` (which VC's candidate the link serialises next — VC0
//! absolute priority, credit-gated on the candidate only, per the
//! paper's appendix note on flow control).
//!
//! ## Batch arbitration bookkeeping
//!
//! `try_xbar` used to rediscover candidates by scanning every input
//! queue's head on every call — O(ports × VCs) peeks, several times per
//! event. The switch now maintains per-(output, VC) **candidate
//! bitmasks** (`cand_mask`), updated at the only two points an input
//! queue mutates (arrival enqueue, grant dequeue), plus a mirror bitmask
//! of busy inputs. One arbitration pass is then a couple of word-ops and
//! a peek per *actual* candidate. The candidate sets — and therefore
//! every arbitration winner — are bit-identical to the scanning
//! implementation; only the cost of finding them changed.

// tidy: hot-path

use crate::arbiter::{pick_edf, pick_round_robin, Candidate};
use crate::config::SwitchConfig;
use dqos_core::{NodeAction, NodeModel, PktTok, SwitchEvent, Vc, NUM_VCS};
use dqos_queues::{AnyQueue, SchedQueue, Voq};
use dqos_sim_core::SimTime;
use dqos_topology::Port;
use dqos_trace::ModelNote;

/// Per-switch counters (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Packets forwarded out of the switch.
    pub forwarded_packets: u64,
    /// Bytes forwarded out of the switch.
    pub forwarded_bytes: u64,
    /// High-water mark of any (input, VC) buffer occupancy, bytes.
    pub max_input_occupancy: u64,
    /// High-water mark of any (output, VC) buffer occupancy, bytes.
    pub max_output_occupancy: u64,
    /// Order errors (§3.4): times a scheduler served a packet while a
    /// smaller deadline sat in the same buffer structure. Zero for the
    /// heap ("Ideal"); the take-over queue reduces it versus plain FIFO.
    /// Only counted for deadline architectures.
    pub order_errors: u64,
}

/// Occupancy / credit snapshot of one (port, VC) pair, taken by
/// [`Switch::diag`] for stall diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDiag {
    /// The port.
    pub port: Port,
    /// The virtual channel index.
    pub vc: u8,
    /// Bytes of downstream credit still available on (port, vc).
    pub credits: u32,
    /// Packets waiting in the input stage.
    pub input_queued: usize,
    /// Packets waiting in the output buffer.
    pub output_queued: usize,
}

struct OutputBuf {
    q: AnyQueue<PktTok>,
    /// Bytes reserved by an in-flight crossbar transfer (space is claimed
    /// when the transfer starts so two transfers cannot overcommit).
    reserved: u32,
}

/// One input port's buffer for one VC.
enum InputStage {
    /// The paper's organisation: one queue structure, candidate = its
    /// head.
    Single(AnyQueue<PktTok>),
    /// Per-output VOQ bank (ablation configuration).
    Voq(Voq<AnyQueue<PktTok>>),
}

impl InputStage {
    fn enqueue(&mut self, tok: PktTok) {
        match self {
            InputStage::Single(q) => q.enqueue(tok),
            InputStage::Voq(v) => {
                let out = tok.out.idx();
                v.enqueue(out, tok);
            }
        }
    }

    /// The candidate this input offers towards output `out`, if any.
    fn candidate_for(&self, out: usize) -> Option<&PktTok> {
        match self {
            InputStage::Single(q) => {
                let head = q.peek()?;
                (head.out.idx() == out).then_some(head)
            }
            InputStage::Voq(v) => v.peek(out),
        }
    }

    /// Remove the candidate previously seen via `candidate_for(out)`.
    fn dequeue_for(&mut self, out: usize) -> Option<PktTok> {
        match self {
            InputStage::Single(q) => {
                debug_assert_eq!(q.peek().map(|p| p.out.idx()), Some(out));
                q.dequeue()
            }
            InputStage::Voq(v) => v.dequeue(out),
        }
    }

    /// The true minimum deadline in the structure serving `out` (for the
    /// order-error count; see [`SchedQueue::min_deadline`]).
    fn min_deadline_for(&self, out: usize) -> Option<SimTime> {
        match self {
            InputStage::Single(q) => q.min_deadline(),
            InputStage::Voq(v) => v.queue(out).min_deadline(),
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            InputStage::Single(q) => SchedQueue::bytes(q),
            InputStage::Voq(v) => v.bytes(),
        }
    }

    fn len(&self) -> usize {
        match self {
            InputStage::Single(q) => SchedQueue::len(q),
            InputStage::Voq(v) => v.total_len(),
        }
    }

    /// Outputs that may now have a candidate from this input (after the
    /// input's head changed): one for Single, all non-empty for Voq.
    fn candidate_outputs(&self, scratch: &mut Vec<usize>) {
        scratch.clear();
        match self {
            InputStage::Single(q) => {
                if let Some(head) = q.peek() {
                    scratch.push(head.out.idx());
                }
            }
            InputStage::Voq(v) => {
                for out in 0..v.n_outputs() {
                    if v.has_for(out) {
                        scratch.push(out);
                    }
                }
            }
        }
    }

    /// Flags for a crossbar grant from this stage toward `out`, read just
    /// before the dequeue: was the candidate served via the take-over
    /// queue, and does the structure serve in FIFO order? Feeds the
    /// flight recorder's wait classification.
    fn grant_flags(&self, out: usize) -> (bool, bool) {
        match self {
            InputStage::Single(q) => (q.candidate_is_take_over(), q.is_fifo()),
            InputStage::Voq(v) => {
                let q = v.queue(out);
                (q.candidate_is_take_over(), q.is_fifo())
            }
        }
    }

    fn take_over_total(&self) -> u64 {
        match self {
            InputStage::Single(q) => q.take_over_total(),
            InputStage::Voq(v) => {
                (0..v.n_outputs()).map(|o| v.queue(o).take_over_total()).sum()
            }
        }
    }
}

/// Sentinel for `head_out`: the input queue is empty.
const NO_OUT: u8 = u8::MAX;

/// Cached arbitration-relevant fields of a single-queue stage's head,
/// refreshed whenever the queue mutates. Lets `try_xbar` build its
/// candidate list without touching the queues at all.
#[derive(Debug, Clone, Copy, Default)]
struct HeadMeta {
    len: u32,
    deadline: SimTime,
}

/// One switch instance.
pub struct Switch {
    cfg: SwitchConfig,
    /// `inputs[port][vc]`.
    inputs: Vec<[InputStage; NUM_VCS]>,
    /// `outputs[port][vc]`.
    outputs: Vec<[OutputBuf; NUM_VCS]>,
    /// Bit `i` set ⇔ input `i` feeds an in-flight crossbar transfer (an
    /// input feeds at most one at a time).
    busy_mask: u64,
    /// `cand_mask[out][vc]` bit `i` set ⇔ input `i` currently offers a
    /// candidate head towards output `out` on `vc` (busy/space filters
    /// are applied at arbitration time, not here).
    cand_mask: Vec<[u64; NUM_VCS]>,
    /// `head_out[input][vc]`: which output the single-queue stage's head
    /// targets (`NO_OUT` when empty; unused by the VOQ stage). This is
    /// the back-pointer that keeps `cand_mask` incremental.
    head_out: Vec<[u8; NUM_VCS]>,
    /// `head_meta[input][vc]`: the head's length and deadline, valid iff
    /// `head_out[input][vc] != NO_OUT` (single-queue stage only).
    head_meta: Vec<[HeadMeta; NUM_VCS]>,
    /// An output accepts at most one crossbar transfer at a time.
    xbar_busy: Vec<bool>,
    /// The in-flight transfer into each output.
    xbar_pkt: Vec<Option<(usize, Vc, PktTok)>>,
    /// Output links currently serialising.
    tx_busy: Vec<bool>,
    /// `credits[port][vc]`: bytes we may still send downstream.
    credits: Vec<[u32; NUM_VCS]>,
    /// Round-robin pointers (Traditional), per (output, vc).
    rr_ptr: Vec<[usize; NUM_VCS]>,
    /// Scratch list reused by candidate_outputs (avoids per-event alloc).
    scratch: Vec<usize>,
    /// Scratch candidate list reused by `try_xbar` (avoids per-event
    /// alloc; taken/restored around the arbitration scan).
    cand_buf: Vec<Candidate>,
    stats: SwitchStats,
    /// Flight-recorder hooks (off by default; see `dqos-trace`). When on,
    /// scheduling decisions leave [`ModelNote`]s for the runtime to drain
    /// after each event — the switch itself never sees the global clock.
    tracing: bool,
    notes: Vec<ModelNote>,
}

impl Switch {
    /// Build a switch; downstream credit counters start at
    /// `cfg.buffer_per_vc` (the peer's input buffer size).
    pub fn new(cfg: SwitchConfig) -> Self {
        cfg.validate();
        let n = cfg.n_ports as usize;
        assert!(n <= 64, "candidate bitmasks hold at most 64 ports");
        let kind = cfg.arch.switch_queue();
        let make_input = || {
            let mk = || {
                if cfg.input_voq {
                    InputStage::Voq(Voq::new(n, || AnyQueue::for_kind(kind)))
                } else {
                    InputStage::Single(AnyQueue::for_kind(kind))
                }
            };
            [mk(), mk()]
        };
        let make_out = || {
            [
                OutputBuf { q: AnyQueue::for_kind(kind), reserved: 0 },
                OutputBuf { q: AnyQueue::for_kind(kind), reserved: 0 },
            ]
        };
        Switch {
            cfg,
            inputs: (0..n).map(|_| make_input()).collect(),
            outputs: (0..n).map(|_| make_out()).collect(),
            busy_mask: 0,
            cand_mask: vec![[0; NUM_VCS]; n],
            head_out: vec![[NO_OUT; NUM_VCS]; n],
            head_meta: vec![[HeadMeta::default(); NUM_VCS]; n],
            xbar_busy: vec![false; n],
            xbar_pkt: (0..n).map(|_| None).collect(),
            tx_busy: vec![false; n],
            credits: vec![[cfg.buffer_per_vc; NUM_VCS]; n],
            rr_ptr: vec![[0; NUM_VCS]; n],
            scratch: Vec::with_capacity(n),
            cand_buf: Vec::with_capacity(n),
            stats: SwitchStats::default(),
            tracing: false,
            notes: Vec::new(),
        }
    }

    /// Enable or disable flight-recorder notes. Tracing must never change
    /// behaviour: the only effect is appending to the note buffer.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Swap the accumulated notes into `buf` (which should be empty).
    /// The runtime drains them after every event it feeds the switch.
    pub fn swap_notes(&mut self, buf: &mut Vec<ModelNote>) {
        std::mem::swap(&mut self.notes, buf);
    }

    /// The configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Override the initial credit toward one downstream (e.g. a host
    /// with a larger receive buffer).
    pub fn set_credits(&mut self, port: Port, vc: Vc, bytes: u32) {
        self.credits[port.idx()][vc.idx()] = bytes;
    }

    /// Total packets currently buffered (inputs + crossbar + outputs).
    pub fn occupancy_packets(&self) -> usize {
        let inputs: usize = self
            .inputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .map(|s| s.len())
            .sum();
        let outputs: usize = self
            .outputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .map(|o| SchedQueue::len(&o.q))
            .sum();
        let xbar: usize = self.xbar_pkt.iter().filter(|x| x.is_some()).count();
        inputs + outputs + xbar
    }

    /// Per-(port, VC) occupancy and credit snapshot for one switch —
    /// the stall watchdog prints these to show *where* packets are stuck
    /// and which downstream buffers ran out of credit.
    pub fn diag(&self) -> Vec<PortDiag> {
        (0..self.cfg.n_ports as usize)
            .flat_map(|p| {
                (0..NUM_VCS).map(move |vc| PortDiag {
                    port: Port(p as u8),
                    vc: vc as u8,
                    credits: self.credits[p][vc],
                    input_queued: self.inputs[p][vc].len(),
                    output_queued: SchedQueue::len(&self.outputs[p][vc].q),
                })
            })
            .collect()
    }

    /// Summed downstream credit across all ports for `vc` (occupancy
    /// sampler).
    pub fn credit_total(&self, vc: Vc) -> u32 {
        self.credits.iter().map(|c| c[vc.idx()]).sum()
    }

    /// Cumulative take-over-queue admissions across all buffers
    /// (Advanced 2 VCs diagnostics; 0 for other architectures).
    pub fn take_over_total(&self) -> u64 {
        let inputs: u64 = self
            .inputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .map(|s| s.take_over_total())
            .sum();
        let outputs: u64 = self
            .outputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .map(|o| o.q.take_over_total())
            .sum();
        inputs + outputs
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    /// A packet fully arrived on `in_port` at `now` (deadline already in
    /// this switch's clock domain and `tok.out` already resolved; the
    /// event loop did the TTD decode and the route lookup). Appends the
    /// resulting actions to `actions` — the runtime hands every handler
    /// one reusable buffer per event instead of allocating a fresh one.
    pub fn on_packet_arrival(
        &mut self,
        in_port: Port,
        tok: PktTok,
        now: SimTime,
        actions: &mut Vec<NodeAction>,
    ) {
        let vc = tok.vc;
        let out = tok.out.idx();
        let i = in_port.idx();
        debug_assert!(out < self.cfg.n_ports as usize, "route uses port beyond radix");
        let occupancy = self.inputs[i][vc.idx()].bytes() + tok.len as u64;
        debug_assert!(
            occupancy <= self.cfg.buffer_per_vc as u64,
            "credit flow control violated: input buffer overflow"
        );
        self.inputs[i][vc.idx()].enqueue(tok);
        self.stats.max_input_occupancy = self.stats.max_input_occupancy.max(occupancy);
        self.refresh_input(i, vc.idx(), out);
        // The arrival can only create a candidate where the (possibly
        // new) head points.
        self.retry_outputs_fed_by(i, now, actions);
    }

    /// The crossbar transfer into `out_port` completed.
    pub fn on_xbar_done(&mut self, out_port: Port, now: SimTime, actions: &mut Vec<NodeAction>) {
        let o = out_port.idx();
        // tidy: allow(no-unwrap) -- the slot was filled when this transfer
        // was scheduled; an empty slot means a duplicated completion event.
        let (i, vc, tok) = self.xbar_pkt[o].take().expect("xbar completion without transfer");
        if self.tracing {
            self.notes.push(ModelNote::XbarDone { pkt: tok.id });
        }
        let len = tok.len;
        let ob = &mut self.outputs[o][vc.idx()];
        ob.reserved -= len;
        ob.q.enqueue(tok);
        let occ = SchedQueue::bytes(&self.outputs[o][vc.idx()].q);
        self.stats.max_output_occupancy = self.stats.max_output_occupancy.max(occ);
        self.busy_mask &= !(1u64 << i);
        self.xbar_busy[o] = false;

        // Input-buffer space freed: upstream may refill it.
        actions.push(NodeAction::SendCredit { in_port: Port(i as u8), vc, bytes: len });
        // The output buffer gained a packet: maybe start serialising.
        self.try_tx(out_port, now, actions);
        // This output's crossbar slot freed: next transfer in.
        self.try_xbar(o, now, actions);
        // The input freed: wherever its candidate(s) point may now pull.
        self.retry_outputs_fed_by(i, now, actions);
    }

    /// The link on `out_port` finished serialising.
    pub fn on_tx_done(&mut self, out_port: Port, now: SimTime, actions: &mut Vec<NodeAction>) {
        self.tx_busy[out_port.idx()] = false;
        self.try_tx(out_port, now, actions);
    }

    /// Downstream returned `bytes` of credit for (`out_port`, `vc`).
    pub fn on_credit(
        &mut self,
        out_port: Port,
        vc: Vc,
        bytes: u32,
        now: SimTime,
        actions: &mut Vec<NodeAction>,
    ) {
        let c = &mut self.credits[out_port.idx()][vc.idx()];
        *c += bytes;
        self.try_tx(out_port, now, actions);
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Re-derive one input's candidate bit(s) after its queue mutated.
    /// `touched_out` is the affected VOQ bank (enqueue: the packet's
    /// output; dequeue: the granted output); the single-queue stage
    /// ignores it and tracks its head via `head_out`.
    fn refresh_input(&mut self, i: usize, vc: usize, touched_out: usize) {
        match &self.inputs[i][vc] {
            InputStage::Single(q) => {
                let new = match q.peek() {
                    Some(h) => {
                        // The head may change without its target changing
                        // (heap reorder, dequeue exposing a same-output
                        // successor): the meta cache refreshes either way.
                        self.head_meta[i][vc] = HeadMeta { len: h.len, deadline: h.deadline };
                        h.out.idx() as u8
                    }
                    None => NO_OUT,
                };
                let old = self.head_out[i][vc];
                if new != old {
                    if old != NO_OUT {
                        self.cand_mask[old as usize][vc] &= !(1u64 << i);
                    }
                    if new != NO_OUT {
                        self.cand_mask[new as usize][vc] |= 1u64 << i;
                    }
                    self.head_out[i][vc] = new;
                }
            }
            InputStage::Voq(v) => {
                if v.has_for(touched_out) {
                    self.cand_mask[touched_out][vc] |= 1u64 << i;
                } else {
                    self.cand_mask[touched_out][vc] &= !(1u64 << i);
                }
            }
        }
    }

    fn retry_outputs_fed_by(&mut self, input: usize, now: SimTime, actions: &mut Vec<NodeAction>) {
        if self.busy_mask & (1u64 << input) != 0 {
            return;
        }
        if !self.cfg.input_voq {
            // Single-queue stage: the only candidate per VC is the head,
            // whose target the mask bookkeeping already knows.
            for vc in 0..NUM_VCS {
                let out = self.head_out[input][vc];
                if out != NO_OUT && !self.xbar_busy[out as usize] {
                    self.try_xbar(out as usize, now, actions);
                    if self.busy_mask & (1u64 << input) != 0 {
                        // This input just won a transfer; no further
                        // candidates from it this round.
                        return;
                    }
                }
            }
            return;
        }
        let mut outs = std::mem::take(&mut self.scratch);
        for vc in 0..NUM_VCS {
            self.inputs[input][vc].candidate_outputs(&mut outs);
            for k in 0..outs.len() {
                let out = outs[k];
                if !self.xbar_busy[out] {
                    self.try_xbar(out, now, actions);
                    if self.busy_mask & (1u64 << input) != 0 {
                        self.scratch = outs;
                        return;
                    }
                }
            }
        }
        self.scratch = outs;
    }

    /// Try to start a crossbar transfer into output `out`.
    fn try_xbar(&mut self, out: usize, now: SimTime, actions: &mut Vec<NodeAction>) {
        if self.xbar_busy[out] {
            return;
        }
        let avail = !self.busy_mask;
        if self.cand_mask[out].iter().all(|&m| m & avail == 0) {
            // No non-busy input offers anything towards this output —
            // the common case on the re-evaluation call sites.
            return;
        }
        let n = self.cfg.n_ports as usize;
        let voq = self.cfg.input_voq;
        // Reusable candidate scratch: `try_xbar` never re-enters itself
        // (its body calls no scheduler method), so taking the buffer for
        // the scan is safe.
        let mut cands = std::mem::take(&mut self.cand_buf);
        // VC0 has priority over VC1 among available candidates.
        for vc in dqos_core::Vc::ALL {
            let mask = self.cand_mask[out][vc.idx()] & avail;
            if mask == 0 {
                continue;
            }
            let free = self.output_free_space(out, vc);
            cands.clear();
            let mut m = mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let (len, deadline) = if voq {
                    match self.inputs[i][vc.idx()].candidate_for(out) {
                        Some(head) => (head.len, head.deadline),
                        None => continue,
                    }
                } else {
                    let hm = self.head_meta[i][vc.idx()];
                    (hm.len, hm.deadline)
                };
                if len <= free {
                    cands.push(Candidate { input: i, deadline });
                }
            }
            let winner = if self.cfg.arch.edf_arbitration() {
                pick_edf(&cands)
            } else {
                pick_round_robin(&cands, n, &mut self.rr_ptr[out][vc.idx()])
            };
            if let Some(i) = winner {
                if self.cfg.arch.uses_deadlines() {
                    let chosen = self.inputs[i][vc.idx()]
                        .candidate_for(out)
                        // tidy: allow(no-unwrap) -- i won arbitration for
                        // `out`, so its head candidate is present.
                        .expect("winner has a head")
                        .deadline;
                    if self.inputs[i][vc.idx()].min_deadline_for(out).is_some_and(|m| chosen > m)
                    {
                        self.stats.order_errors += 1;
                    }
                }
                let grant_flags =
                    if self.tracing { Some(self.inputs[i][vc.idx()].grant_flags(out)) } else { None };
                // tidy: allow(no-unwrap) -- same invariant: the arbitration
                // winner's head for `out` is still queued.
                let tok = self.inputs[i][vc.idx()].dequeue_for(out).expect("winner has a head");
                self.refresh_input(i, vc.idx(), out);
                if let Some((take_over, fifo)) = grant_flags {
                    self.notes.push(ModelNote::XbarGrant {
                        pkt: tok.id,
                        vc: vc.idx() as u8,
                        take_over,
                        fifo,
                    });
                }
                let len = tok.len;
                self.busy_mask |= 1u64 << i;
                self.xbar_busy[out] = true;
                self.outputs[out][vc.idx()].reserved += len;
                self.xbar_pkt[out] = Some((i, vc, tok));
                let at = now + self.cfg.link_bw.tx_time(len as u64);
                actions.push(NodeAction::ScheduleXbarDone { out_port: Port(out as u8), at });
                self.cand_buf = cands;
                return;
            }
        }
        self.cand_buf = cands;
    }

    fn output_free_space(&self, out: usize, vc: Vc) -> u32 {
        let ob = &self.outputs[out][vc.idx()];
        let used = SchedQueue::bytes(&ob.q) as u32 + ob.reserved;
        self.cfg.buffer_per_vc.saturating_sub(used)
    }

    /// Try to start serialising on output `out_port`.
    ///
    /// VC0 has absolute priority; within a VC only the structure's
    /// candidate (minimum-deadline head) is checked against credits. If
    /// VC0's candidate is credit-blocked, VC1 may use the otherwise idle
    /// link (its credits account a different downstream buffer).
    fn try_tx(&mut self, out_port: Port, now: SimTime, actions: &mut Vec<NodeAction>) {
        let o = out_port.idx();
        if self.tx_busy[o] {
            return;
        }
        for vc in dqos_core::Vc::ALL {
            let Some(head) = self.outputs[o][vc.idx()].q.peek() else {
                continue;
            };
            let len = head.len;
            if self.credits[o][vc.idx()] < len {
                // Candidate credit-blocked; do not look deeper into this
                // VC (paper's rule), fall through to the next VC.
                continue;
            }
            if self.cfg.arch.uses_deadlines() {
                let q = &self.outputs[o][vc.idx()].q;
                // tidy: allow(no-unwrap) -- the VC scan peeked this queue's
                // head just above; nothing dequeued in between.
                let chosen = q.head_deadline().expect("peeked head");
                if q.min_deadline().is_some_and(|m| chosen > m) {
                    self.stats.order_errors += 1;
                }
            }
            // tidy: allow(no-unwrap) -- same peeked head: the queue cannot
            // have drained between the peek and this dequeue.
            let tok = self.outputs[o][vc.idx()].q.dequeue().expect("peeked head");
            self.credits[o][vc.idx()] -= len;
            self.tx_busy[o] = true;
            self.stats.forwarded_packets += 1;
            self.stats.forwarded_bytes += len as u64;
            // The hop advance (leaving this switch completes the packet's
            // current hop) happens in the runtime, which owns the
            // arena-resident route the next hop is read from.
            let finish = now + self.cfg.link_bw.tx_time(len as u64);
            actions.push(NodeAction::StartTx { out_port, tok, finish });
            // Output-buffer space freed: the crossbar may refill it.
            self.try_xbar(o, now, actions);
            return;
        }
    }
}

impl NodeModel for Switch {
    type Event = SwitchEvent;
    type Effect = Vec<NodeAction>;

    fn on_event(&mut self, local: SimTime, ev: SwitchEvent) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        match ev {
            SwitchEvent::Arrive { in_port, tok } => {
                self.on_packet_arrival(in_port, tok, local, &mut actions)
            }
            SwitchEvent::XbarDone { out_port } => self.on_xbar_done(out_port, local, &mut actions),
            SwitchEvent::TxDone { out_port } => self.on_tx_done(out_port, local, &mut actions),
            SwitchEvent::Credit { out_port, vc, bytes } => {
                self.on_credit(out_port, vc, bytes, local, &mut actions)
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_core::{Architecture, TrafficClass};
    use dqos_sim_core::Bandwidth;
    use std::collections::BinaryHeap;

    fn cfg(arch: Architecture) -> SwitchConfig {
        SwitchConfig {
            arch,
            n_ports: 4,
            buffer_per_vc: 8192,
            link_bw: Bandwidth::gbps(8),
            input_voq: false,
        }
    }

    /// Token headed for the given output of the switch under test (the
    /// runtime resolves `out` from the arena-resident route; here it is
    /// supplied directly).
    fn pkt(id: u64, class: TrafficClass, out_port: u8, len: u32, deadline_ns: u64) -> PktTok {
        PktTok {
            id,
            deadline: SimTime::from_ns(deadline_ns),
            eligible: SimTime::ZERO,
            slot: id as u32,
            len,
            out: Port(out_port),
            hop: 0,
            vc: class.vc(),
            class,
        }
    }

    /// Mini event loop driving a single switch: collects transmitted
    /// packets in order with their start times.
    struct Harness {
        sw: Switch,
        // (time, seq, kind)
        events: BinaryHeap<std::cmp::Reverse<(u64, u64, HEv)>>,
        seq: u64,
        sent: Vec<(u64, PktTok)>,
        credits_returned: Vec<(Port, Vc, u32)>,
    }

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    enum HEv {
        XbarDone(u8),
        TxDone(u8),
    }

    impl Harness {
        fn new(arch: Architecture) -> Self {
            Self::with_config(cfg(arch))
        }

        fn with_config(c: SwitchConfig) -> Self {
            Harness {
                sw: Switch::new(c),
                events: BinaryHeap::new(),
                seq: 0,
                sent: vec![],
                credits_returned: vec![],
            }
        }

        fn apply(&mut self, now: u64, actions: Vec<NodeAction>) {
            for a in actions {
                match a {
                    NodeAction::ScheduleXbarDone { out_port, at } => {
                        self.seq += 1;
                        self.events.push(std::cmp::Reverse((at.as_ns(), self.seq, HEv::XbarDone(out_port.0))));
                    }
                    NodeAction::StartTx { out_port, tok, finish } => {
                        assert!(finish.as_ns() >= now);
                        self.sent.push((now, tok));
                        self.seq += 1;
                        self.events.push(std::cmp::Reverse((finish.as_ns(), self.seq, HEv::TxDone(out_port.0))));
                    }
                    NodeAction::SendCredit { in_port, vc, bytes } => {
                        self.credits_returned.push((in_port, vc, bytes));
                    }
                    NodeAction::WakeAt { .. } => unreachable!("switches don't sleep"),
                }
            }
        }

        fn inject(&mut self, now: u64, in_port: u8, p: PktTok) {
            let mut acts = Vec::new();
            self.sw.on_packet_arrival(Port(in_port), p, SimTime::from_ns(now), &mut acts);
            self.apply(now, acts);
        }

        fn run(&mut self) -> u64 {
            let mut last = 0;
            while let Some(std::cmp::Reverse((t, _, ev))) = self.events.pop() {
                last = t;
                let mut acts = Vec::new();
                match ev {
                    HEv::XbarDone(p) => self.sw.on_xbar_done(Port(p), SimTime::from_ns(t), &mut acts),
                    HEv::TxDone(p) => self.sw.on_tx_done(Port(p), SimTime::from_ns(t), &mut acts),
                }
                self.apply(t, acts);
            }
            last
        }
    }

    #[test]
    fn single_packet_traverses() {
        let mut h = Harness::new(Architecture::Advanced2Vc);
        h.inject(0, 0, pkt(1, TrafficClass::Control, 2, 1000, 5000));
        h.run();
        assert_eq!(h.sent.len(), 1);
        let (t, p) = &h.sent[0];
        // Crossbar transfer takes 1000 ns; tx starts right after.
        assert_eq!(*t, 1000);
        assert_eq!(p.id, 1);
        assert_eq!(p.hop, 0, "hop advance is the runtime's job now");
        // Credit for the input buffer returned once.
        assert_eq!(h.credits_returned, vec![(Port(0), Vc::REGULATED, 1000)]);
        assert_eq!(h.sw.stats().forwarded_packets, 1);
        assert_eq!(h.sw.occupancy_packets(), 0);
    }

    #[test]
    fn edf_orders_across_inputs() {
        // Occupy the crossbar with a blocker from input 2, then let two
        // inputs race for output 0 while it is busy. When the crossbar
        // frees, both candidates are present and the earlier deadline
        // must win under every EDF architecture — even though the
        // late-deadline packet arrived first.
        for arch in [Architecture::Ideal, Architecture::Simple2Vc, Architecture::Advanced2Vc] {
            let mut h = Harness::new(arch);
            h.inject(0, 2, pkt(0, TrafficClass::Control, 0, 500, 50_000));
            h.inject(10, 0, pkt(1, TrafficClass::Control, 0, 500, 900_000));
            h.inject(20, 1, pkt(2, TrafficClass::Control, 0, 500, 100_000));
            h.run();
            assert_eq!(h.sent.len(), 3);
            assert_eq!(h.sent[0].1.id, 0);
            assert_eq!(h.sent[1].1.id, 2, "{arch:?}: earliest deadline first");
            assert_eq!(h.sent[2].1.id, 1);
        }
    }

    #[test]
    fn traditional_round_robins_ignoring_deadlines() {
        let mut h = Harness::new(Architecture::Traditional2Vc);
        // Input 0 offers a late-deadline packet, input 1 an urgent one;
        // RR starts at input 0.
        h.inject(0, 0, pkt(1, TrafficClass::Control, 0, 500, 900_000));
        h.inject(0, 1, pkt(2, TrafficClass::Control, 0, 500, 100));
        h.run();
        assert_eq!(h.sent[0].1.id, 1, "round robin ignores deadlines");
    }

    #[test]
    fn vc0_has_priority_over_vc1() {
        let mut h = Harness::new(Architecture::Advanced2Vc);
        // A best-effort packet arrives first, a control packet second —
        // both on the same input, same output. Both must be delivered
        // exactly once; the control packet must not be delayed by more
        // than the BE packet already in service.
        h.inject(0, 0, pkt(1, TrafficClass::Background, 0, 2048, 10_000));
        h.inject(10, 1, pkt(2, TrafficClass::Control, 0, 256, 5_000));
        h.run();
        assert_eq!(h.sent.len(), 2);
        let ids: Vec<u64> = h.sent.iter().map(|(_, p)| p.id).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
    }

    #[test]
    fn credit_blocking_stalls_link() {
        let mut h = Harness::new(Architecture::Simple2Vc);
        // Exhaust the downstream credit for VC0 on output 0.
        h.sw.set_credits(Port(0), Vc::REGULATED, 100);
        h.inject(0, 0, pkt(1, TrafficClass::Control, 0, 500, 1000));
        h.run();
        assert_eq!(h.sent.len(), 0, "no credits, no transmission");
        // Credits arrive: transmission resumes.
        let mut acts = Vec::new();
        h.sw.on_credit(Port(0), Vc::REGULATED, 8092, SimTime::from_us(100), &mut acts);
        h.apply(100_000, acts);
        h.run();
        assert_eq!(h.sent.len(), 1);
    }

    #[test]
    fn vc1_uses_link_when_vc0_credit_blocked() {
        let mut h = Harness::new(Architecture::Advanced2Vc);
        h.sw.set_credits(Port(0), Vc::REGULATED, 0);
        h.inject(0, 0, pkt(1, TrafficClass::Control, 0, 500, 1000));
        h.inject(0, 1, pkt(2, TrafficClass::BestEffort, 0, 500, 2000));
        h.run();
        assert_eq!(h.sent.len(), 1);
        assert_eq!(h.sent[0].1.id, 2, "BE may use the link VC0 cannot");
    }

    #[test]
    fn single_queue_input_has_hol_blocking() {
        // Paper organisation: output 0 is credit-blocked; a packet for
        // output 1 behind the blocked head on the same input must WAIT
        // (head-of-line blocking) — it only flows once output 0 unblocks.
        let mut h = Harness::new(Architecture::Simple2Vc);
        h.sw.set_credits(Port(0), Vc::REGULATED, 0);
        h.inject(0, 0, pkt(1, TrafficClass::Control, 0, 500, 1000));
        h.inject(0, 0, pkt(2, TrafficClass::Control, 1, 500, 2000));
        h.run();
        // Packet 1 crossed the crossbar into output 0's buffer (space
        // available) and got stuck at the link; packet 2 then became the
        // input head and crossed to output 1 and out.
        assert_eq!(h.sent.len(), 1);
        assert_eq!(h.sent[0].1.id, 2);
        // Now block output 0's *buffer* instead: fill it so the head
        // cannot even cross the crossbar.
        let mut h = Harness::new(Architecture::Simple2Vc);
        h.sw.set_credits(Port(0), Vc::REGULATED, 0);
        // Four 2 KiB packets fill output 0's 8 KiB buffer.
        for i in 0..4 {
            h.inject(i * 10, 3, pkt(10 + i, TrafficClass::Control, 0, 2048, 1000 + i));
        }
        h.run();
        // Input 0: head to output 0 (buffer full -> stuck), then one to
        // output 1 behind it.
        h.inject(1000, 0, pkt(1, TrafficClass::Control, 0, 500, 1_000_000));
        h.inject(1010, 0, pkt(2, TrafficClass::Control, 1, 500, 1_000_001));
        h.run();
        let sent_ids: Vec<u64> = h.sent.iter().map(|(_, p)| p.id).collect();
        assert!(!sent_ids.contains(&2), "HoL: packet 2 stuck behind blocked head");
    }

    #[test]
    fn voq_input_avoids_hol_blocking() {
        // Ablation organisation: same scenario, but with per-output VOQ
        // the packet for output 1 flows immediately.
        let mut c = cfg(Architecture::Simple2Vc);
        c.input_voq = true;
        let mut h = Harness::with_config(c);
        h.sw.set_credits(Port(0), Vc::REGULATED, 0);
        for i in 0..4 {
            h.inject(i * 10, 3, pkt(10 + i, TrafficClass::Control, 0, 2048, 1000 + i));
        }
        h.run();
        h.inject(1000, 0, pkt(1, TrafficClass::Control, 0, 500, 1_000_000));
        h.inject(1010, 0, pkt(2, TrafficClass::Control, 1, 500, 1_000_001));
        h.run();
        let sent_ids: Vec<u64> = h.sent.iter().map(|(_, p)| p.id).collect();
        assert!(sent_ids.contains(&2), "VOQ: packet 2 bypasses the blocked head");
    }

    #[test]
    fn take_over_lets_urgent_packet_pass_blocked_head() {
        // The §3.4 mechanism at the input buffer: a high-deadline head
        // bound for a blocked output would delay an urgent packet behind
        // it under Simple; under Advanced the urgent packet goes to the
        // take-over queue... no — lower deadline goes to take-over only
        // if it arrives after a higher-deadline tail. Construct exactly
        // that: first a high-deadline packet (to blocked output 0), then
        // an urgent one to output 1.
        let build = |arch| {
            let mut h = Harness::new(arch);
            h.sw.set_credits(Port(0), Vc::REGULATED, 0);
            for i in 0..4 {
                h.inject(i * 10, 3, pkt(10 + i, TrafficClass::Control, 0, 2048, 100 + i));
            }
            h.run();
            // Head: deadline 1_000_000 to blocked output 0. Then urgent
            // deadline 5_000 to output 1 -> take-over queue (Advanced).
            h.inject(1000, 0, pkt(1, TrafficClass::Control, 0, 500, 1_000_000));
            h.inject(1010, 0, pkt(2, TrafficClass::Control, 1, 500, 5_000));
            h.run();
            h.sent.iter().map(|(_, p)| p.id).collect::<Vec<_>>()
        };
        let simple = build(Architecture::Simple2Vc);
        assert!(!simple.contains(&2), "Simple: urgent packet stuck (order error)");
        let advanced = build(Architecture::Advanced2Vc);
        assert!(advanced.contains(&2), "Advanced: take-over queue frees the urgent packet");
    }

    #[test]
    fn conservation_under_load() {
        // Throw a few hundred packets at all ports; every one must leave
        // exactly once, per VC accounting must hold. The harness has no
        // upstream credit model, so give the switch deep buffers — this
        // test checks conservation, not flow control.
        for arch in Architecture::ALL {
            for voq in [false, true] {
                let mut big = cfg(arch);
                big.buffer_per_vc = 1 << 20;
                big.input_voq = voq;
                let mut h = Harness::with_config(big);
                let mut id = 0;
                for round in 0..50u64 {
                    for inp in 0..4u8 {
                        id += 1;
                        let class = match id % 4 {
                            0 => TrafficClass::Control,
                            1 => TrafficClass::Multimedia,
                            2 => TrafficClass::BestEffort,
                            _ => TrafficClass::Background,
                        };
                        let out = (id % 4) as u8;
                        h.inject(round * 10, inp, pkt(id, class, out, 512, 1000 + id * 64));
                    }
                }
                h.run();
                assert_eq!(h.sent.len(), 200, "{arch:?} voq={voq}: all packets forwarded");
                assert_eq!(h.sw.occupancy_packets(), 0, "{arch:?} voq={voq}: switch drained");
                assert_eq!(h.credits_returned.len(), 200);
                let mut ids: Vec<u64> = h.sent.iter().map(|(_, p)| p.id).collect();
                ids.sort();
                ids.dedup();
                assert_eq!(ids.len(), 200, "{arch:?} voq={voq}: no duplicates");
            }
        }
    }

    #[test]
    fn per_flow_order_preserved_through_switch() {
        // Packets of one flow (same input, same output, increasing
        // deadlines) must depart in order for every architecture —
        // Theorem 3 end-to-end at switch scope.
        for arch in Architecture::ALL {
            let mut h = Harness::new(arch);
            // One flow = consecutive ids with strictly increasing
            // deadlines (the appendix hypotheses).
            for i in 0..20u64 {
                h.inject(i * 50, 0, pkt(i, TrafficClass::Multimedia, 0, 256, 1000 + i * 500));
            }
            h.run();
            let ids: Vec<u64> = h.sent.iter().map(|(_, p)| p.id).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted, "{arch:?}: flow reordered");
        }
    }

    #[test]
    fn take_over_counts_only_for_advanced() {
        let mut h = Harness::new(Architecture::Advanced2Vc);
        // Make the output queue hold a high-deadline packet, then a lower
        // one arrives -> take-over. Block tx with zero credits so packets
        // accumulate in the output buffer.
        h.sw.set_credits(Port(0), Vc::REGULATED, 0);
        h.inject(0, 0, pkt(1, TrafficClass::Control, 0, 256, 1_000_000));
        h.run();
        h.inject(10_000, 1, pkt(2, TrafficClass::Control, 0, 256, 500));
        h.run();
        assert!(h.sw.take_over_total() >= 1, "low-deadline late arrival recorded");

        let mut h2 = Harness::new(Architecture::Simple2Vc);
        h2.inject(0, 0, pkt(1, TrafficClass::Control, 0, 256, 1_000_000));
        h2.inject(0, 1, pkt(2, TrafficClass::Control, 0, 256, 500));
        h2.run();
        assert_eq!(h2.sw.take_over_total(), 0);
    }
}
