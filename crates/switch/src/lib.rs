//! # dqos-switch
//!
//! The combined input-output buffered switch of §4.1, as a pure state
//! machine driven by `on_*` handlers that return
//! [`dqos_core::NodeAction`]s.
//!
//! Architecture (identical for all four evaluated designs except the
//! queue structure and the arbiter):
//!
//! ```text
//!  in ports                 crossbar                 out ports
//!  ┌────────────┐                                ┌────────────┐
//!  │ VC0 VOQ[Q] │──┐                          ┌──│ VC0 [Q]    │── link ──▶
//!  │ VC1 VOQ[Q] │  │   one transfer per       │  │ VC1 [Q]    │  (credits)
//!  └────────────┘  ├──▶ input and per output ─┤  └────────────┘
//!       ...        │   at link speed          │       ...
//!  ┌────────────┐  │                          │  ┌────────────┐
//!  └────────────┘──┘                          └──└────────────┘
//! ```
//!
//! * **Input stage**: per (port, VC) a VOQ bank — one queue structure
//!   per output port — inside a shared per-VC byte budget (8 KiB in the
//!   paper) that credit-based flow control guarantees is never exceeded.
//! * **Crossbar**: each input feeds at most one transfer at a time, each
//!   output accepts at most one; transfers run at link speed.
//! * **Output stage**: per (port, VC) one queue structure feeding the
//!   link; the link scheduler gives VC0 absolute priority and, inside a
//!   VC, serves the structure's candidate (for the two-queue system,
//!   "only the packet with the smallest deadline of the potential two
//!   available is checked for credits", §appendix).
//! * **Arbiters** ([`arbiter`]): EDF head-compare for the deadline
//!   architectures, round-robin for *Traditional 2 VCs*.
//!
//! The switch never inspects flow ids and keeps no flow state — only
//! deadlines and routes, which is the paper's design constraint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod config;
pub mod switch;

pub use arbiter::{pick_edf, pick_round_robin, Candidate};
pub use config::SwitchConfig;
pub use switch::{PortDiag, Switch, SwitchStats};
