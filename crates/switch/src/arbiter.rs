//! Output-port arbitration policies.
//!
//! For each output port the arbiter chooses among **candidates** — the
//! head packets of the input VOQ sub-queues heading to that output.
//!
//! * [`pick_edf`] — the paper's EDF approximation: choose the candidate
//!   with the smallest deadline *among queue heads*. With deadline-sorted
//!   arrivals this equals true EDF (the merge-sort argument of §3.2);
//!   ties break deterministically by input index.
//! * [`pick_round_robin`] — *Traditional 2 VCs*: rotate over inputs,
//!   ignoring deadlines.

use dqos_sim_core::SimTime;

/// One arbitration candidate: an input port offering its head packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Offering input port index.
    pub input: usize,
    /// Deadline of the head packet (ignored by round-robin).
    pub deadline: SimTime,
}

/// EDF over queue heads: the minimum-deadline candidate, ties to the
/// lowest input index.
pub fn pick_edf(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .min_by_key(|c| (c.deadline, c.input))
        .map(|c| c.input)
}

/// Round-robin: the first candidate at or after `*ptr`, then advance the
/// pointer past the winner.
pub fn pick_round_robin(candidates: &[Candidate], n_inputs: usize, ptr: &mut usize) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    debug_assert!(*ptr < n_inputs.max(1));
    // Scan inputs ptr, ptr+1, ..., wrapping, and take the first that is a
    // candidate. Candidate lists are tiny (≤ 16), linear scan is fine.
    for off in 0..n_inputs {
        let i = (*ptr + off) % n_inputs;
        if candidates.iter().any(|c| c.input == i) {
            *ptr = (i + 1) % n_inputs;
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(input: usize, deadline: u64) -> Candidate {
        Candidate { input, deadline: SimTime::from_ns(deadline) }
    }

    #[test]
    fn edf_picks_minimum() {
        let cands = [c(0, 300), c(1, 100), c(2, 200)];
        assert_eq!(pick_edf(&cands), Some(1));
    }

    #[test]
    fn edf_tie_breaks_by_input() {
        let cands = [c(2, 100), c(0, 100), c(1, 100)];
        assert_eq!(pick_edf(&cands), Some(0));
    }

    #[test]
    fn edf_empty() {
        assert_eq!(pick_edf(&[]), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut ptr = 0;
        let cands = [c(0, 1), c(1, 1), c(3, 1)];
        assert_eq!(pick_round_robin(&cands, 4, &mut ptr), Some(0));
        assert_eq!(ptr, 1);
        assert_eq!(pick_round_robin(&cands, 4, &mut ptr), Some(1));
        assert_eq!(ptr, 2);
        // Input 2 not a candidate: skip to 3.
        assert_eq!(pick_round_robin(&cands, 4, &mut ptr), Some(3));
        assert_eq!(ptr, 0);
        // Wraps back to 0.
        assert_eq!(pick_round_robin(&cands, 4, &mut ptr), Some(0));
    }

    #[test]
    fn round_robin_is_deadline_blind() {
        let mut ptr = 0;
        // Input 1 has the urgent packet, but RR picks 0 first.
        let cands = [c(0, 1_000_000), c(1, 1)];
        assert_eq!(pick_round_robin(&cands, 2, &mut ptr), Some(0));
    }

    #[test]
    fn round_robin_empty() {
        let mut ptr = 0;
        assert_eq!(pick_round_robin(&[], 4, &mut ptr), None);
        assert_eq!(ptr, 0);
    }

    #[test]
    fn round_robin_single_candidate_any_ptr() {
        for start in 0..8 {
            let mut ptr = start;
            assert_eq!(pick_round_robin(&[c(5, 9)], 8, &mut ptr), Some(5));
            assert_eq!(ptr, 6);
        }
    }

    /// Dependency-free ports of the property suite, driven by the
    /// in-house RNG so they run in the offline tier-1 build.
    mod randomized {
        use super::*;
        use dqos_sim_core::SimRng;

        /// EDF always returns the candidate with the smallest
        /// (deadline, input) pair.
        #[test]
        fn edf_is_min() {
            let mut rng = SimRng::new(0xA6B1);
            for _ in 0..500 {
                let mut seen = std::collections::HashSet::new();
                let cands: Vec<Candidate> = (0..1 + rng.index(15))
                    .map(|_| (rng.index(16), rng.range_u64(0, 9_999)))
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(input, d)| c(input, d))
                    .collect();
                let winner = pick_edf(&cands).unwrap();
                let wd = cands.iter().find(|x| x.input == winner).unwrap().deadline;
                for x in &cands {
                    assert!(
                        (wd, winner) <= (x.deadline, x.input),
                        "candidate {x:?} beats winner {winner} @ {wd:?}"
                    );
                }
            }
        }

        /// Round-robin with a persistent candidate set is fair: over
        /// n_rounds = k * |set| picks, every candidate wins exactly k.
        #[test]
        fn round_robin_fair() {
            let mut rng = SimRng::new(0x66A1);
            for _ in 0..200 {
                let mut inputs = std::collections::HashSet::new();
                for _ in 0..1 + rng.index(11) {
                    inputs.insert(rng.index(12));
                }
                let k = 1 + rng.index(4);
                let cands: Vec<Candidate> = inputs.iter().map(|&i| c(i, 1)).collect();
                let mut ptr = 0;
                let mut wins = std::collections::HashMap::new();
                for _ in 0..k * cands.len() {
                    let w = pick_round_robin(&cands, 12, &mut ptr).unwrap();
                    *wins.entry(w).or_insert(0usize) += 1;
                }
                for &i in &inputs {
                    assert_eq!(wins.get(&i).copied().unwrap_or(0), k, "input {i} starved");
                }
            }
        }

        /// The round-robin pointer always stays in range.
        #[test]
        fn round_robin_ptr_in_range() {
            let mut rng = SimRng::new(0x3019);
            let mut ptr = 0;
            for _ in 0..1_000 {
                let mut seen = std::collections::HashSet::new();
                let cands: Vec<Candidate> = (0..rng.index(8))
                    .map(|_| rng.index(8))
                    .filter(|i| seen.insert(*i))
                    .map(|i| c(i, 1))
                    .collect();
                let _ = pick_round_robin(&cands, 8, &mut ptr);
                assert!(ptr < 8);
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// EDF always returns the candidate with the smallest
            /// (deadline, input) pair.
            #[test]
            fn prop_edf_is_min(cands in proptest::collection::vec((0usize..16, 0u64..10_000), 1..16)) {
                // Dedup inputs (an input offers at most one candidate).
                let mut seen = std::collections::HashSet::new();
                let cands: Vec<Candidate> = cands
                    .into_iter()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(input, d)| c(input, d))
                    .collect();
                let winner = pick_edf(&cands).unwrap();
                let wd = cands.iter().find(|x| x.input == winner).unwrap().deadline;
                for x in &cands {
                    prop_assert!(
                        (wd, winner) <= (x.deadline, x.input),
                        "candidate {x:?} beats winner {winner} @ {wd:?}"
                    );
                }
            }

            /// Round-robin with a persistent candidate set is fair: over
            /// n_rounds = k * |set| picks, every candidate wins exactly k.
            #[test]
            fn prop_round_robin_fair(inputs in proptest::collection::hash_set(0usize..12, 1..12), k in 1usize..5) {
                let cands: Vec<Candidate> = inputs.iter().map(|&i| c(i, 1)).collect();
                let mut ptr = 0;
                let mut wins = std::collections::HashMap::new();
                for _ in 0..k * cands.len() {
                    let w = pick_round_robin(&cands, 12, &mut ptr).unwrap();
                    *wins.entry(w).or_insert(0usize) += 1;
                }
                for &i in &inputs {
                    prop_assert_eq!(wins.get(&i).copied().unwrap_or(0), k, "input {} starved", i);
                }
            }

            /// The round-robin pointer always stays in range.
            #[test]
            fn prop_round_robin_ptr_in_range(
                picks in proptest::collection::vec(proptest::collection::vec(0usize..8, 0..8), 1..50),
            ) {
                let mut ptr = 0;
                for set in picks {
                    let mut seen = std::collections::HashSet::new();
                    let cands: Vec<Candidate> = set
                        .into_iter()
                        .filter(|i| seen.insert(*i))
                        .map(|i| c(i, 1))
                        .collect();
                    let _ = pick_round_robin(&cands, 8, &mut ptr);
                    prop_assert!(ptr < 8);
                }
            }
        }
    }
}
