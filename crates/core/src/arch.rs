//! The four switch architectures evaluated in §4.1/§5.
//!
//! All four use two VCs and identical buffering budgets; they differ only
//! in queue structure and arbitration, which is the paper's point — the
//! EDF proposals cost essentially the same silicon as the traditional
//! design (except *Ideal*, whose heap buffers are declared unfeasible and
//! serve as the upper bound).

use std::fmt;

/// Queue structure used inside switch buffers (per VC, per VOQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchQueueKind {
    /// Plain FIFO.
    Fifo,
    /// A heap ordered by deadline ("Ideal": always exposes the true
    /// minimum; hardware-unfeasible at high radix).
    Heap,
    /// The §3.4 two-queue system: ordered queue + take-over queue.
    TwoQueue,
}

/// One of the paper's four evaluated architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// PCI AS-style 2-VC switch: FIFO queues, round-robin within a VC,
    /// VC0 strict priority; **no deadlines anywhere**.
    Traditional2Vc,
    /// EDF with heap buffers: the unfeasible upper bound.
    Ideal,
    /// First proposal: FIFO queues, arbiter compares queue-head deadlines.
    Simple2Vc,
    /// Improved proposal: ordered + take-over queue pair per buffer.
    Advanced2Vc,
}

impl Architecture {
    /// All four, in the paper's presentation order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Traditional2Vc,
        Architecture::Ideal,
        Architecture::Simple2Vc,
        Architecture::Advanced2Vc,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Traditional2Vc => "Traditional 2 VCs",
            Architecture::Ideal => "Ideal",
            Architecture::Simple2Vc => "Simple 2 VCs",
            Architecture::Advanced2Vc => "Advanced 2 VCs",
        }
    }

    /// Whether packets carry deadline tags and hosts stamp them.
    pub fn uses_deadlines(self) -> bool {
        !matches!(self, Architecture::Traditional2Vc)
    }

    /// The switch buffer structure.
    pub fn switch_queue(self) -> SwitchQueueKind {
        match self {
            Architecture::Traditional2Vc | Architecture::Simple2Vc => SwitchQueueKind::Fifo,
            Architecture::Ideal => SwitchQueueKind::Heap,
            Architecture::Advanced2Vc => SwitchQueueKind::TwoQueue,
        }
    }

    /// Whether the arbiter compares deadlines (EDF) or round-robins.
    pub fn edf_arbitration(self) -> bool {
        self.uses_deadlines()
    }

    /// Whether host NICs keep deadline-sorted injection queues (all EDF
    /// variants; hosts have the resources for real sorted queues, §3.2).
    pub fn host_sorted_queues(self) -> bool {
        self.uses_deadlines()
    }

    /// Short identifier for file names / CLI flags.
    pub fn slug(self) -> &'static str {
        match self {
            Architecture::Traditional2Vc => "traditional",
            Architecture::Ideal => "ideal",
            Architecture::Simple2Vc => "simple",
            Architecture::Advanced2Vc => "advanced",
        }
    }

    /// Parse a slug (case-insensitive).
    pub fn from_slug(s: &str) -> Option<Architecture> {
        match s.to_ascii_lowercase().as_str() {
            "traditional" | "trad" => Some(Architecture::Traditional2Vc),
            "ideal" => Some(Architecture::Ideal),
            "simple" => Some(Architecture::Simple2Vc),
            "advanced" => Some(Architecture::Advanced2Vc),
            _ => None,
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(Architecture::Traditional2Vc.label(), "Traditional 2 VCs");
        assert_eq!(Architecture::Ideal.label(), "Ideal");
        assert_eq!(Architecture::Simple2Vc.label(), "Simple 2 VCs");
        assert_eq!(Architecture::Advanced2Vc.label(), "Advanced 2 VCs");
    }

    #[test]
    fn queue_kinds() {
        use SwitchQueueKind::*;
        assert_eq!(Architecture::Traditional2Vc.switch_queue(), Fifo);
        assert_eq!(Architecture::Simple2Vc.switch_queue(), Fifo);
        assert_eq!(Architecture::Ideal.switch_queue(), Heap);
        assert_eq!(Architecture::Advanced2Vc.switch_queue(), TwoQueue);
    }

    #[test]
    fn only_traditional_skips_deadlines() {
        for a in Architecture::ALL {
            assert_eq!(a.uses_deadlines(), a != Architecture::Traditional2Vc);
            assert_eq!(a.edf_arbitration(), a.uses_deadlines());
            assert_eq!(a.host_sorted_queues(), a.uses_deadlines());
        }
    }

    #[test]
    fn slug_roundtrip() {
        for a in Architecture::ALL {
            assert_eq!(Architecture::from_slug(a.slug()), Some(a));
        }
        assert_eq!(Architecture::from_slug("TRAD"), Some(Architecture::Traditional2Vc));
        assert_eq!(Architecture::from_slug("nope"), None);
    }
}
