//! # dqos-core
//!
//! The paper's primary contribution, as a library: everything a host or
//! switch needs to run deadline-based QoS without per-flow state in the
//! fabric.
//!
//! * [`class`] — the four traffic classes of Table 1 and their mapping
//!   onto the two virtual channels (regulated VC0, best-effort VC1).
//! * [`packet`] — the packet format: a deadline tag, routing information,
//!   and *nothing else* that a switch needs (§3: "only the information in
//!   the header of packets is used").
//! * [`arena`] — pooled slab storage for packets in flight, so simulator
//!   events carry `u32` handles instead of packets by value.
//! * [`deadline`] — the Virtual-Clock deadline calculus of §3.1:
//!   average-bandwidth stamping, the frame-spread method for multimedia,
//!   full-link-bandwidth stamping for control traffic, and eligible-time
//!   smoothing.
//! * [`flow`] — per-flow stamping state kept at the **end hosts** (the
//!   switches keep none), including the aggregated flow records used for
//!   weighted best-effort classes.
//! * [`clock`] — the time-to-destination (TTD) transport of §3.3 that
//!   removes the need for global clock synchronisation.
//! * [`admission`] — the centralised admission control with a per-link
//!   bandwidth ledger and load-balanced fixed-path assignment.
//! * [`arch`] — descriptors for the four evaluated switch architectures
//!   (*Traditional 2 VCs*, *Ideal*, *Simple 2 VCs*, *Advanced 2 VCs*).
//! * [`model`] / [`action`] — the component contract: every network
//!   element is a [`NodeModel`](model::NodeModel) state machine that
//!   consumes typed events and emits [`NodeAction`]s for the runtime to
//!   schedule; the partitioned executor in `dqos-sim-core` can then
//!   place any node in any partition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod admission;
pub mod model;
pub mod arch;
pub mod arena;
pub mod class;
pub mod clock;
pub mod deadline;
pub mod flow;
pub mod packet;

pub use action::NodeAction;
pub use admission::{AdmissionController, AdmissionError, AdmissionState, AdmittedFlow};
pub use arch::{Architecture, SwitchQueueKind};
pub use arena::{PacketArena, PacketRef};
pub use class::{TrafficClass, Vc, NUM_CLASSES, NUM_VCS};
pub use clock::{ClockDomain, Ttd};
pub use deadline::{segment_message, DeadlineMode, Stamper};
pub use deadline::StampedTimes;
pub use flow::{Flow, FlowId, FlowSpec, PartStamp};
pub use model::{Actions, NicEvent, NodeModel, SwitchEvent};
pub use packet::{MsgTag, Packet, PacketId, PktTok};
