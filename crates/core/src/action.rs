//! Actions emitted by node models (switches, NICs) toward the event loop.
//!
//! The switch and end-host models are pure state machines: the simulator
//! calls their `on_*` handlers and receives a list of [`NodeAction`]s to
//! turn into scheduled events. Keeping the models event-loop-agnostic
//! makes them unit-testable in isolation and reusable outside the full
//! network simulation.

use crate::class::Vc;
use crate::packet::PktTok;
use dqos_sim_core::SimTime;
use dqos_topology::Port;

/// Something a node asks the simulator to do.
///
/// `Copy` on purpose: the runtime drains action buffers into reusable
/// scratch vectors on the hot path, and a 48-byte memcpy beats any
/// ownership dance.
#[derive(Debug, Clone, Copy)]
pub enum NodeAction {
    /// Begin transmitting the packet behind `tok` on `out_port` now; the
    /// transmitter is busy until `finish` (serialisation time), and the
    /// packet arrives at the peer `finish + wire_delay` later. The
    /// emitting node has already accounted credits; its `on_tx_done`
    /// must be called at `finish`.
    StartTx {
        /// The transmitting port.
        out_port: Port,
        /// The packet token, its deadline still in the sender's clock
        /// domain (the simulator performs the TTD re-encoding).
        tok: PktTok,
        /// When serialisation completes.
        finish: SimTime,
    },
    /// Return `bytes` of credit for `vc` to whoever feeds `in_port`.
    SendCredit {
        /// The input port whose buffer freed space.
        in_port: Port,
        /// The virtual channel the space belongs to.
        vc: Vc,
        /// Freed bytes.
        bytes: u32,
    },
    /// Call the node's `on_xbar_done(out_port)` at `at` (internal
    /// crossbar transfer completion; switches only).
    ScheduleXbarDone {
        /// The output port receiving the transfer.
        out_port: Port,
        /// Completion time.
        at: SimTime,
    },
    /// Call the node's `on_wake()` at `at` (eligible-time timer; hosts
    /// only).
    WakeAt {
        /// Wake-up time.
        at: SimTime,
    },
}
