//! The packet: the only thing a switch is allowed to know about a flow.
//!
//! A cornerstone of the proposal (§3) is that switches keep **no**
//! per-flow state; scheduling uses only what is in the packet header —
//! the deadline tag (carried as a TTD on the wire, see [`crate::clock`])
//! and the routing information. Everything else on this struct
//! (`injected_at`, `msg`) is simulator instrumentation that a real header
//! would not carry; it is used solely by the statistics sink.

use crate::class::{TrafficClass, Vc};
use crate::flow::FlowId;
use dqos_sim_core::SimTime;
use dqos_topology::{HostId, Port, PortPath};

/// Globally unique packet identifier (simulator-side, for accounting).
pub type PacketId = u64;

/// Message/frame tag: which application message this packet is part `part`
/// of, out of `parts`. Lets the sink reassemble frames and measure
/// *frame* latency, which is how Figure 3 reports multimedia results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgTag {
    /// Message id, unique per source host.
    pub msg_id: u64,
    /// Index of this packet within the message (0-based).
    pub part: u32,
    /// Total packets in the message.
    pub parts: u32,
    /// Global time the message was handed to the NIC (stats only).
    pub created_at: SimTime,
}

/// A network packet in flight.
///
/// Plain old data: every field is `Copy`, the route is interned into a
/// fixed-size [`PortPath`] at flow setup, so moving a packet between
/// queues, events and the arena is a flat memcpy with no allocator or
/// refcount traffic.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Simulator-unique id.
    pub id: PacketId,
    /// The flow this packet belongs to (stamped by the source host; the
    /// sink uses it for in-order verification, switches never read it).
    pub flow: FlowId,
    /// Traffic class (determines the VC).
    pub class: TrafficClass,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Length in bytes (payload + header; at the paper's 8 Gb/s this is
    /// also the serialisation time in nanoseconds).
    pub len: u32,
    /// The deadline tag, expressed in the clock domain of whichever node
    /// currently holds the packet (see [`crate::clock::Ttd`]).
    pub deadline: SimTime,
    /// Eligible time: the earliest local time the *source host* may
    /// inject the packet. Not transmitted in the header (§3.1) and
    /// meaningless after injection.
    pub eligible: Option<SimTime>,
    /// The fixed route assigned at flow setup, interned to its output
    /// ports (switches never read anything else from it).
    pub route: PortPath,
    /// Index of the next hop in `route`.
    pub hop: u8,
    /// Global time of injection into the network (stats only).
    pub injected_at: SimTime,
    /// Message/frame reassembly tag (stats only).
    pub msg: MsgTag,
    /// Payload was damaged in flight (models a CRC failure detected at
    /// the destination: the packet traverses the fabric and consumes
    /// resources, but the sink discards it). Only fault injection sets
    /// this.
    pub corrupted: bool,
}

/// The hot-path view of a packet: everything a switch or NIC scheduler
/// reads, and nothing else.
///
/// The full [`Packet`] (~100 bytes with its interned route and stats
/// tags) lives in the owning partition's struct-of-arrays arena from
/// stamping to delivery; queues, crossbars, and transmitters move this
/// 40-byte token instead. `slot` is the arena handle; the cold fields
/// (route, message tag, flow, injection time) are fetched through it
/// only at hop boundaries and at delivery.
///
/// A real switch sees exactly this much of a packet — the deadline tag
/// and the routing decision — so the token is also the honest model of
/// the paper's "no per-flow state in the fabric" claim (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktTok {
    /// Simulator-unique id (for the flight recorder and accounting).
    pub id: PacketId,
    /// The deadline tag, in the clock domain of the node holding the
    /// token (the runtime performs TTD re-encoding between domains).
    pub deadline: SimTime,
    /// Eligible time at the source host; [`SimTime::ZERO`] means
    /// "immediately eligible" (an `eligible > now` test is then never
    /// true, matching the `Option::None` semantics of [`Packet`]).
    pub eligible: SimTime,
    /// Arena slot holding the full [`Packet`] in the owning partition.
    pub slot: u32,
    /// Length in bytes (also serialisation nanoseconds at 8 Gb/s).
    pub len: u32,
    /// Output port at the switch currently holding the token (the
    /// runtime refreshes this from the arena route at each hop).
    pub out: Port,
    /// Index of the current hop in the arena-resident route.
    pub hop: u8,
    /// Virtual channel (derived from the class at stamping).
    pub vc: Vc,
    /// Traffic class, for per-class accounting on drop paths.
    pub class: TrafficClass,
}

impl PktTok {
    /// Build the token for `pkt`, resident in arena slot `slot`.
    /// `out` must be `pkt.current_out_port()` at the node receiving the
    /// token.
    #[inline]
    pub fn of(pkt: &Packet, slot: u32, out: Port) -> Self {
        PktTok {
            id: pkt.id,
            deadline: pkt.deadline,
            eligible: pkt.eligible.unwrap_or(SimTime::ZERO),
            slot,
            len: pkt.len,
            out,
            hop: pkt.hop,
            vc: pkt.vc(),
            class: pkt.class,
        }
    }
}

impl Packet {
    /// The virtual channel this packet travels on.
    #[inline]
    pub fn vc(&self) -> Vc {
        self.class.vc()
    }

    /// Output port at the current hop's switch.
    #[inline]
    pub fn current_out_port(&self) -> dqos_topology::Port {
        self.route
            .port(self.hop as usize)
            // tidy: allow(no-unwrap) -- hop is advanced only by switches on
            // the stamped path, so it cannot pass the route's end.
            .expect("packet hop index within route")
    }

    /// Whether the current hop is the last switch before the destination.
    #[inline]
    pub fn at_last_hop(&self) -> bool {
        self.route.is_last_hop(self.hop as usize)
    }

    /// Advance to the next hop (called when the packet leaves a switch).
    #[inline]
    pub fn advance_hop(&mut self) {
        self.hop += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_topology::{Port, Route, RouteHop, SwitchId};

    fn test_packet() -> Packet {
        let route = Route::new(
            HostId(0),
            HostId(9),
            vec![
                RouteHop { switch: SwitchId(0), out_port: Port(8) },
                RouteHop { switch: SwitchId(2), out_port: Port(1) },
                RouteHop { switch: SwitchId(1), out_port: Port(1) },
            ],
        )
        .port_path();
        Packet {
            id: 1,
            flow: FlowId(7),
            class: TrafficClass::Multimedia,
            src: HostId(0),
            dst: HostId(9),
            len: 2048,
            deadline: SimTime::from_us(50),
            eligible: Some(SimTime::from_us(30)),
            route,
            hop: 0,
            injected_at: SimTime::ZERO,
            msg: MsgTag { msg_id: 3, part: 0, parts: 4, created_at: SimTime::ZERO },
            corrupted: false,
        }
    }

    #[test]
    fn vc_follows_class() {
        let p = test_packet();
        assert_eq!(p.vc(), Vc::REGULATED);
        let mut p2 = p.clone();
        p2.class = TrafficClass::Background;
        assert_eq!(p2.vc(), Vc::BEST_EFFORT);
    }

    #[test]
    fn hop_walk() {
        let mut p = test_packet();
        assert_eq!(p.current_out_port(), Port(8));
        assert!(!p.at_last_hop());
        p.advance_hop();
        assert_eq!(p.current_out_port(), Port(1));
        p.advance_hop();
        assert!(p.at_last_hop());
        assert_eq!(p.current_out_port(), Port(1));
    }
}
