//! The Virtual-Clock deadline calculus of §3.1.
//!
//! Deadlines are computed **once**, at the source host, and never
//! recomputed by switches (single-chip switches have no room for flow
//! state, and recomputation would add delay). Three stamping modes cover
//! the paper's traffic classes:
//!
//! * [`DeadlineMode::AvgBandwidth`] — the general rule:
//!   `D(Pᵢ) = max(D(Pᵢ₋₁), T_now) + L(Pᵢ)/BW_avg`.
//! * [`DeadlineMode::FullLink`] — control traffic: no admission, the
//!   "reserved" bandwidth is the whole link, so deadlines are as tight as
//!   physically possible and control gets maximum priority.
//! * [`DeadlineMode::FrameSpread`] — multimedia: the user fixes a target
//!   latency per application frame (10 ms in the paper) and each of the
//!   frame's `Parts(Fᵢ)` packets advances the virtual clock by
//!   `target / Parts(Fᵢ)`, so every frame lands close to the target
//!   regardless of its size, with a smooth packet distribution.
//!
//! Eligible time (§3.1/§3.2) is optional smoothing: a packet may not
//! enter the network before `deadline − Δ` (Δ = 20 µs works well in the
//! paper's tests); it removes the injection bursts that would otherwise
//! cause order errors downstream.

use dqos_sim_core::{Bandwidth, SimDuration, SimTime};

/// How a flow's packet deadlines advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineMode {
    /// General flows: virtual clock advances by `len / bw` per packet.
    AvgBandwidth(
        /// The reserved (or, for aggregated best-effort records, the
        /// *weighting*) bandwidth.
        Bandwidth,
    ),
    /// Control traffic: virtual clock advances by `len / link_bw`.
    FullLink(
        /// The link bandwidth.
        Bandwidth,
    ),
    /// Multimedia: each packet of a frame advances the clock by
    /// `target / parts`.
    FrameSpread {
        /// Desired per-frame latency (10 ms in the paper).
        target: SimDuration,
    },
}

impl DeadlineMode {
    /// The virtual-clock increment contributed by one packet of length
    /// `len` belonging to a message of `parts` packets.
    #[inline]
    pub fn increment(&self, len: u32, parts: u32) -> SimDuration {
        match *self {
            DeadlineMode::AvgBandwidth(bw) | DeadlineMode::FullLink(bw) => {
                bw.tx_time(len as u64)
            }
            DeadlineMode::FrameSpread { target } => {
                debug_assert!(parts > 0);
                SimDuration::from_ns(target.as_ns() / parts as u64)
            }
        }
    }
}

/// Per-flow stamping state: the deadline of the previous packet.
///
/// This is the *only* flow state the proposal needs anywhere, and it
/// lives at the source host.
///
/// ```
/// use dqos_core::{DeadlineMode, Stamper};
/// use dqos_sim_core::{Bandwidth, SimTime};
///
/// // A flow with 1 Gb/s reserved: the virtual clock advances 8 ns/byte.
/// let mut stamper = Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::gbps(1)));
/// let first = stamper.stamp(SimTime::from_us(10), 1000, 1);
/// assert_eq!(first.deadline, SimTime::from_ns(10_000 + 8_000));
/// // Back-to-back packets advance from the previous deadline, not from
/// // real time — this is Virtual Clock.
/// let second = stamper.stamp(SimTime::from_us(10), 1000, 1);
/// assert_eq!(second.deadline, SimTime::from_ns(10_000 + 16_000));
/// ```
#[derive(Debug, Clone)]
pub struct Stamper {
    mode: DeadlineMode,
    last_deadline: SimTime,
    /// How far before its deadline a packet becomes eligible, if this
    /// flow uses eligible-time smoothing.
    eligible_lead: Option<SimDuration>,
}

/// The deadline (and optional eligible time) assigned to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedTimes {
    /// The packet's deadline tag.
    pub deadline: SimTime,
    /// The earliest injection time, if smoothing is on for this flow.
    pub eligible: Option<SimTime>,
}

impl Stamper {
    /// A stamper with no eligible-time smoothing.
    pub fn new(mode: DeadlineMode) -> Self {
        Stamper { mode, last_deadline: SimTime::ZERO, eligible_lead: None }
    }

    /// A stamper that also assigns eligible times `lead` before each
    /// deadline (the paper uses 20 µs, typically for multimedia).
    pub fn with_eligible(mode: DeadlineMode, lead: SimDuration) -> Self {
        Stamper { mode, last_deadline: SimTime::ZERO, eligible_lead: Some(lead) }
    }

    /// The stamping mode.
    pub fn mode(&self) -> DeadlineMode {
        self.mode
    }

    /// The deadline assigned to the most recent packet.
    pub fn last_deadline(&self) -> SimTime {
        self.last_deadline
    }

    /// Stamp one packet of length `len`, part of a `parts`-packet message,
    /// handed to the NIC at local time `now`.
    ///
    /// Implements `D(Pᵢ) = max(D(Pᵢ₋₁), T_now) + increment`.
    pub fn stamp(&mut self, now: SimTime, len: u32, parts: u32) -> StampedTimes {
        let base = self.last_deadline.max(now);
        let deadline = base + self.mode.increment(len, parts);
        self.last_deadline = deadline;
        let eligible = self
            .eligible_lead
            .map(|lead| deadline.saturating_sub(lead).max(now));
        StampedTimes { deadline, eligible }
    }

    /// Stamp every packet of a message whose parts have the given sizes.
    pub fn stamp_message(&mut self, now: SimTime, part_sizes: &[u32]) -> Vec<StampedTimes> {
        let parts = part_sizes.len() as u32;
        part_sizes.iter().map(|&len| self.stamp(now, len, parts)).collect()
    }
}

/// Split an application message of `bytes` into MTU-sized packet lengths.
///
/// E.g. the paper's example: an 80 KiB frame with a 2 KiB MTU becomes 40
/// packets. The final packet carries the remainder.
pub fn segment_message(bytes: u64, mtu: u32) -> Vec<u32> {
    assert!(mtu > 0, "MTU must be positive");
    assert!(bytes > 0, "cannot segment an empty message");
    let full = (bytes / mtu as u64) as usize;
    let rem = (bytes % mtu as u64) as u32;
    let mut parts = Vec::with_capacity(full + usize::from(rem > 0));
    parts.extend(std::iter::repeat_n(mtu, full));
    if rem > 0 {
        parts.push(rem);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINK: Bandwidth = Bandwidth::gbps(8); // 1 byte/ns

    #[test]
    fn avg_bandwidth_rule_matches_paper_formula() {
        // Reserved 1 Gb/s = 8 ns per byte.
        let mut s = Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::gbps(1)));
        // First packet at t=1000, 100 bytes: D = max(0, 1000) + 800.
        let a = s.stamp(SimTime::from_ns(1000), 100, 1);
        assert_eq!(a.deadline, SimTime::from_ns(1800));
        // Second packet arrives *before* the previous deadline: the
        // virtual clock, not real time, is the base.
        let b = s.stamp(SimTime::from_ns(1100), 100, 1);
        assert_eq!(b.deadline, SimTime::from_ns(2600));
        // Third packet arrives after an idle period: real time is the base.
        let c = s.stamp(SimTime::from_ns(10_000), 50, 1);
        assert_eq!(c.deadline, SimTime::from_ns(10_400));
    }

    #[test]
    fn full_link_gives_tightest_deadlines() {
        let mut s = Stamper::new(DeadlineMode::FullLink(LINK));
        let t = s.stamp(SimTime::from_us(5), 2048, 1);
        // 2048 bytes at 1 byte/ns.
        assert_eq!(t.deadline, SimTime::from_ns(5_000 + 2_048));
    }

    #[test]
    fn frame_spread_matches_paper_example() {
        // Paper: 80 KiB frame, 2 KiB MTU -> 40 packets; target 10 ms ->
        // each packet advances the clock by 250 us; the last packet's
        // deadline is exactly 10 ms after the frame arrived (clock idle).
        let target = SimDuration::from_ms(10);
        let mut s = Stamper::new(DeadlineMode::FrameSpread { target });
        let parts = segment_message(80 * 1024, 2048);
        assert_eq!(parts.len(), 40);
        let stamps = s.stamp_message(SimTime::ZERO, &parts);
        assert_eq!(stamps[0].deadline, SimTime::from_us(250));
        assert_eq!(stamps[39].deadline, SimTime::from_ms(10));
    }

    #[test]
    fn frame_spread_latency_independent_of_frame_size() {
        let target = SimDuration::from_ms(10);
        for size_kib in [1u64, 8, 40, 120] {
            let mut s = Stamper::new(DeadlineMode::FrameSpread { target });
            let parts = segment_message(size_kib * 1024, 2048);
            let stamps = s.stamp_message(SimTime::from_ms(3), &parts);
            let last = stamps.last().unwrap().deadline;
            // Whole frame due within target of arrival, +- rounding.
            let err = last.as_ns() as i64 - (SimTime::from_ms(13)).as_ns() as i64;
            assert!(err.abs() <= parts.len() as i64, "frame {size_kib}KiB err {err}ns");
        }
    }

    #[test]
    fn eligible_time_is_deadline_minus_lead() {
        let mut s = Stamper::with_eligible(
            DeadlineMode::FrameSpread { target: SimDuration::from_ms(10) },
            SimDuration::from_us(20),
        );
        let t = s.stamp(SimTime::from_ms(1), 2048, 4);
        assert_eq!(t.deadline, SimTime::from_ns(1_000_000 + 2_500_000));
        assert_eq!(
            t.eligible,
            Some(SimTime::from_ns(1_000_000 + 2_500_000 - 20_000))
        );
    }

    #[test]
    fn eligible_never_precedes_now() {
        // A tight deadline minus the lead could land before "now"; the
        // packet must still be immediately eligible, not scheduled into
        // the past.
        let mut s = Stamper::with_eligible(
            DeadlineMode::FullLink(LINK),
            SimDuration::from_us(20),
        );
        let now = SimTime::from_us(100);
        let t = s.stamp(now, 256, 1);
        assert_eq!(t.eligible, Some(now));
    }

    #[test]
    fn segmentation() {
        assert_eq!(segment_message(2048, 2048), vec![2048]);
        assert_eq!(segment_message(2049, 2048), vec![2048, 1]);
        assert_eq!(segment_message(100, 2048), vec![100]);
        assert_eq!(segment_message(81920, 2048).len(), 40);
        let parts = segment_message(5000, 2048);
        assert_eq!(parts, vec![2048, 2048, 904]);
        assert_eq!(parts.iter().map(|&p| p as u64).sum::<u64>(), 5000);
    }

    /// Dependency-free ports of the property suite, driven by the
    /// in-house RNG so they run in the offline tier-1 build.
    mod randomized {
        use super::*;
        use dqos_sim_core::SimRng;

        /// Hypothesis (1) of the appendix: deadlines within a flow
        /// strictly increase, whatever the arrival pattern.
        #[test]
        fn deadlines_strictly_increase() {
            let mut rng = SimRng::new(0xDEAD);
            for _ in 0..150 {
                let bw_mb = rng.range_u64(1, 999);
                let mut s =
                    Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::mbytes_per_sec(bw_mb)));
                let mut t = 0;
                let mut last = SimTime::ZERO;
                for _ in 0..1 + rng.index(200) {
                    t += rng.range_u64(0, 999_999);
                    let len = rng.range_u64(1, 99_999) as u32;
                    let stamp = s.stamp(SimTime::from_ns(t), len, 1);
                    assert!(stamp.deadline > last, "deadline did not increase");
                    last = stamp.deadline;
                }
            }
        }

        /// Segmentation conserves bytes and respects the MTU.
        #[test]
        fn segmentation_conserves() {
            let mut rng = SimRng::new(0x5E63);
            for _ in 0..2_000 {
                let bytes = rng.range_u64(1, 999_999);
                let mtu = rng.range_u64(1, 9_999) as u32;
                let parts = segment_message(bytes, mtu);
                assert_eq!(parts.iter().map(|&p| p as u64).sum::<u64>(), bytes);
                assert!(parts.iter().all(|&p| p > 0 && p <= mtu));
                // Only the last part may be short.
                for &p in &parts[..parts.len() - 1] {
                    assert_eq!(p, mtu);
                }
            }
        }

        /// Deadline of packet i is always >= now + its own increment
        /// (a packet can never be due before it could be sent).
        #[test]
        fn deadline_not_in_past() {
            let mut rng = SimRng::new(0xD11E);
            for _ in 0..2_000 {
                let now = rng.range_u64(0, 9_999_999);
                let len = rng.range_u64(1, 99_999) as u32;
                let bw = Bandwidth::gbps(8);
                let mut s = Stamper::new(DeadlineMode::AvgBandwidth(bw));
                let t = s.stamp(SimTime::from_ns(now), len, 1);
                assert!(t.deadline >= SimTime::from_ns(now) + bw.tx_time(len as u64));
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Hypothesis (1) of the appendix: deadlines within a flow
            /// strictly increase, whatever the arrival pattern.
            #[test]
            fn prop_deadlines_strictly_increase(
                arrivals in proptest::collection::vec((0u64..1_000_000, 1u32..100_000), 1..200),
                bw_mb in 1u64..1000,
            ) {
                let mut s = Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::mbytes_per_sec(bw_mb)));
                let mut t = 0;
                let mut last = SimTime::ZERO;
                for (gap, len) in arrivals {
                    t += gap;
                    let stamp = s.stamp(SimTime::from_ns(t), len, 1);
                    prop_assert!(stamp.deadline > last, "deadline did not increase");
                    last = stamp.deadline;
                }
            }

            /// Segmentation conserves bytes and respects the MTU.
            #[test]
            fn prop_segmentation_conserves(bytes in 1u64..1_000_000, mtu in 1u32..10_000) {
                let parts = segment_message(bytes, mtu);
                prop_assert_eq!(parts.iter().map(|&p| p as u64).sum::<u64>(), bytes);
                prop_assert!(parts.iter().all(|&p| p > 0 && p <= mtu));
                // Only the last part may be short.
                for &p in &parts[..parts.len() - 1] {
                    prop_assert_eq!(p, mtu);
                }
            }

            /// Deadline of packet i is always >= now + its own increment
            /// (a packet can never be due before it could be sent).
            #[test]
            fn prop_deadline_not_in_past(now in 0u64..10_000_000, len in 1u32..100_000) {
                let bw = Bandwidth::gbps(8);
                let mut s = Stamper::new(DeadlineMode::AvgBandwidth(bw));
                let t = s.stamp(SimTime::from_ns(now), len, 1);
                prop_assert!(t.deadline >= SimTime::from_ns(now) + bw.tx_time(len as u64));
            }
        }
    }
}
