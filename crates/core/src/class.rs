//! Traffic classes and virtual channels.
//!
//! The paper's workload (Table 1) has four classes, each 25 % of the
//! injected bandwidth. They map onto **two** virtual channels — the whole
//! point of the proposal is that two VCs with FIFO-grade buffers suffice:
//!
//! | Class       | VC | Regulated? | Deadline source |
//! |-------------|----|------------|-----------------|
//! | Control     | 0  | yes (no CAC, §3.1) | full link bandwidth |
//! | Multimedia  | 0  | yes (reserved)     | frame-spread, 10 ms target |
//! | Best-effort | 1  | no                 | aggregated record, weight 2 |
//! | Background  | 1  | no                 | aggregated record, weight 1 |

use std::fmt;

/// Number of traffic classes in the evaluation workload.
pub const NUM_CLASSES: usize = 4;

/// Number of virtual channels (the paper's headline constraint).
pub const NUM_VCS: usize = 2;

/// One of the four workload traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Small, latency-critical control messages.
    Control,
    /// MPEG-4 video streams with a per-frame latency target.
    Multimedia,
    /// Self-similar internet-like traffic, the preferred best-effort class.
    BestEffort,
    /// Self-similar internet-like traffic, the low-priority class.
    Background,
}

impl TrafficClass {
    /// All classes, in Table-1 order.
    pub const ALL: [TrafficClass; NUM_CLASSES] = [
        TrafficClass::Control,
        TrafficClass::Multimedia,
        TrafficClass::BestEffort,
        TrafficClass::Background,
    ];

    /// Table-1 name.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Control => "Control",
            TrafficClass::Multimedia => "Multimedia",
            TrafficClass::BestEffort => "Best-effort",
            TrafficClass::Background => "Background",
        }
    }

    /// Whether the class travels in the regulated VC (VC0).
    pub fn is_regulated(self) -> bool {
        matches!(self, TrafficClass::Control | TrafficClass::Multimedia)
    }

    /// The virtual channel carrying this class.
    pub fn vc(self) -> Vc {
        if self.is_regulated() {
            Vc::REGULATED
        } else {
            Vc::BEST_EFFORT
        }
    }

    /// Dense index (Table-1 order), for stats arrays.
    pub fn idx(self) -> usize {
        match self {
            TrafficClass::Control => 0,
            TrafficClass::Multimedia => 1,
            TrafficClass::BestEffort => 2,
            TrafficClass::Background => 3,
        }
    }

    /// Inverse of [`TrafficClass::idx`].
    pub fn from_idx(i: usize) -> TrafficClass {
        Self::ALL[i]
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A virtual channel index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vc(pub u8);

impl Vc {
    /// VC0: regulated traffic; absolute priority over VC1.
    pub const REGULATED: Vc = Vc(0);
    /// VC1: unregulated best-effort traffic.
    pub const BEST_EFFORT: Vc = Vc(1);

    /// Both VCs, highest priority first.
    pub const ALL: [Vc; NUM_VCS] = [Vc::REGULATED, Vc::BEST_EFFORT];

    /// Dense index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_to_vc_mapping() {
        assert_eq!(TrafficClass::Control.vc(), Vc::REGULATED);
        assert_eq!(TrafficClass::Multimedia.vc(), Vc::REGULATED);
        assert_eq!(TrafficClass::BestEffort.vc(), Vc::BEST_EFFORT);
        assert_eq!(TrafficClass::Background.vc(), Vc::BEST_EFFORT);
    }

    #[test]
    fn regulated_flags() {
        assert!(TrafficClass::Control.is_regulated());
        assert!(TrafficClass::Multimedia.is_regulated());
        assert!(!TrafficClass::BestEffort.is_regulated());
        assert!(!TrafficClass::Background.is_regulated());
    }

    #[test]
    fn idx_roundtrip() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert_eq!(TrafficClass::from_idx(i), *c);
        }
    }

    #[test]
    fn names_match_table_1() {
        assert_eq!(TrafficClass::Control.to_string(), "Control");
        assert_eq!(TrafficClass::Multimedia.to_string(), "Multimedia");
        assert_eq!(TrafficClass::BestEffort.to_string(), "Best-effort");
        assert_eq!(TrafficClass::Background.to_string(), "Background");
        assert_eq!(Vc::REGULATED.to_string(), "VC0");
    }
}
