//! The component model: nodes as typed event handlers.
//!
//! A network element (switch, NIC, sink, traffic source, fault
//! injector) is a pure state machine: the runtime hands it one typed
//! event at a node-local timestamp and receives back a typed effect —
//! usually a list of [`NodeAction`]s to turn into scheduled events.
//! Models never see the event loop, the topology wiring, or each other;
//! that is what keeps them unit-testable in isolation and lets the
//! partitioned runtime place any node in any partition.
//!
//! The trait is deliberately minimal. Events and effects are associated
//! types rather than one grand enum so each model keeps its natural
//! vocabulary ([`SwitchEvent`] for switches, [`NicEvent`] for NICs, a
//! bare [`Packet`](crate::packet::Packet) for sinks) and pays nothing
//! for variants it can never receive.

use crate::action::NodeAction;
use crate::class::Vc;
use crate::packet::PktTok;
use dqos_sim_core::SimTime;
use dqos_topology::Port;

/// A network element driven by typed events.
///
/// `local` is the node's **local clock** reading: the runtime translates
/// the global event time through the node's
/// [`ClockDomain`](crate::clock::ClockDomain) before invoking the
/// handler, and translates times inside emitted effects back. Models
/// with no clock domain of their own (sinks report global completion
/// times) document which domain they expect.
pub trait NodeModel {
    /// The inbound event vocabulary of this node type.
    type Event;
    /// What handling one event produces.
    type Effect;
    /// Handle `ev` at local time `local`.
    fn on_event(&mut self, local: SimTime, ev: Self::Event) -> Self::Effect;
}

/// Events a switch receives.
#[derive(Debug)]
pub enum SwitchEvent {
    /// A packet fully arrived on `in_port` (deadline already decoded
    /// into this switch's clock domain, output port already resolved
    /// from the arena-resident route).
    Arrive {
        /// Receiving input port.
        in_port: Port,
        /// The packet token.
        tok: PktTok,
    },
    /// The crossbar transfer into `out_port` completed.
    XbarDone {
        /// Output port that received the transfer.
        out_port: Port,
    },
    /// The link on `out_port` finished serialising.
    TxDone {
        /// The transmitting port.
        out_port: Port,
    },
    /// Downstream returned credit for (`out_port`, `vc`).
    Credit {
        /// Port whose downstream buffer freed space.
        out_port: Port,
        /// Virtual channel the space belongs to.
        vc: Vc,
        /// Freed bytes.
        bytes: u32,
    },
}

/// Events a host NIC receives.
#[derive(Debug)]
pub enum NicEvent {
    /// The application handed down freshly stamped packet tokens.
    Enqueue(Vec<PktTok>),
    /// An eligible-time timer fired.
    Wake,
    /// The injection link finished serialising.
    TxDone,
    /// The upstream switch returned credit.
    Credit {
        /// Virtual channel credited.
        vc: Vc,
        /// Freed bytes.
        bytes: u32,
    },
}

/// Blanket effect type used by switch and NIC models.
pub type Actions = Vec<NodeAction>;
