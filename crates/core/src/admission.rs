//! Centralised admission control and fixed-path assignment.
//!
//! Per §3, bandwidth reservation happens at a centralised point (as in
//! InfiniBand's subnet manager or PCI AS fabric management) and **no
//! record is kept in the switches** — which is what makes fixed routing
//! mandatory: packets must use the route whose links they reserved.
//!
//! For unregulated traffic there is no reservation, but the admission
//! controller still assigns fixed, load-balanced paths (fixed routing
//! also avoids the out-of-order delivery adaptive routing would cause,
//! and balancing at path-assignment time substitutes for adaptivity).

use dqos_sim_core::Bandwidth;
use dqos_topology::{FoldedClos, HostId, LinkId, Route};
use std::fmt;

/// Why an admission request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Every candidate path would oversubscribe at least one link.
    NoCapacity {
        /// The bandwidth that was requested.
        requested_bytes_per_sec: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::NoCapacity { requested_bytes_per_sec } => {
                write!(f, "no path can fit {requested_bytes_per_sec} B/s")
            }
        }
    }
}

/// A successfully admitted flow: the chosen route and spine index.
#[derive(Debug, Clone)]
pub struct AdmittedFlow {
    /// The assigned fixed route.
    pub route: Route,
    /// The path choice index that produced it (spine index, or 0 for
    /// intra-leaf pairs).
    pub choice: u16,
}

/// The central bandwidth ledger.
///
/// ```
/// use dqos_core::AdmissionController;
/// use dqos_sim_core::Bandwidth;
/// use dqos_topology::{ClosParams, FoldedClos, HostId};
///
/// let net = FoldedClos::build(ClosParams::paper());
/// let mut ac = AdmissionController::new(&net, Bandwidth::gbps(8), 1.0);
/// let flow = ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(2)).unwrap();
/// assert_eq!(flow.route.len(), 3); // leaf -> spine -> leaf
/// // The ledger now carries the reservation on every link of the route.
/// assert!(ac.max_utilization() > 0.0);
/// ac.release(&net, &flow.route, Bandwidth::gbps(2));
/// assert_eq!(ac.max_utilization(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Usable capacity of every link, bytes/sec.
    capacity: u64,
    /// Reserved bytes/sec per directed link.
    reserved: Vec<u64>,
    /// Unregulated path counter per (src leaf): round-robin spine
    /// assignment for best-effort flows.
    rr_spine: Vec<u16>,
}

impl AdmissionController {
    /// Create a controller for `net`, allowing reservations up to
    /// `max_util` of `link_capacity` on every link (the paper regulates
    /// traffic so links are never oversubscribed; `max_util = 1.0`).
    pub fn new(net: &FoldedClos, link_capacity: Bandwidth, max_util: f64) -> Self {
        assert!((0.0..=1.0).contains(&max_util), "max_util must be in [0,1]");
        AdmissionController {
            capacity: (link_capacity.as_bytes_per_sec() as f64 * max_util) as u64,
            reserved: vec![0; net.n_links() as usize],
            rr_spine: vec![0; net.params().leaves as usize],
        }
    }

    /// Reserved bandwidth on `link`, bytes/sec.
    pub fn reserved(&self, link: LinkId) -> u64 {
        self.reserved[link.idx()]
    }

    /// Utilisation of `link` as a fraction of reservable capacity.
    pub fn utilization(&self, link: LinkId) -> f64 {
        self.reserved[link.idx()] as f64 / self.capacity as f64
    }

    /// Try to admit a regulated flow of `bw` from `src` to `dst`.
    ///
    /// All candidate fixed paths are examined; the one whose *worst* link
    /// would be least utilised after the reservation wins. The worst link
    /// is often an endpoint link shared by **all** candidates (the
    /// source's injection link or the destination's delivery link), so
    /// ties break on the candidate's *total* route load — which differs
    /// exactly by the spine transit links — and then on the lowest spine
    /// index, keeping the choice deterministic. Fails if every candidate
    /// would oversubscribe some link.
    pub fn admit(
        &mut self,
        net: &FoldedClos,
        src: HostId,
        dst: HostId,
        bw: Bandwidth,
    ) -> Result<AdmittedFlow, AdmissionError> {
        let request = bw.as_bytes_per_sec();
        let choices = net.route_choices(src, dst);
        let mut best: Option<(u16, (u64, u64), Route)> = None;
        for choice in 0..choices {
            let route = net.route(src, dst, choice);
            let links = net.links_on_route(&route);
            let worst_after = links
                .iter()
                .map(|l| self.reserved[l.idx()] + request)
                .max()
                .expect("route has links");
            if worst_after > self.capacity {
                continue;
            }
            let total_after: u64 = links.iter().map(|l| self.reserved[l.idx()]).sum();
            let key = (worst_after, total_after);
            let better = match &best {
                None => true,
                Some((_, k, _)) => key < *k,
            };
            if better {
                best = Some((choice, key, route));
            }
        }
        match best {
            Some((choice, _, route)) => {
                for l in net.links_on_route(&route) {
                    self.reserved[l.idx()] += request;
                }
                Ok(AdmittedFlow { route, choice })
            }
            None => Err(AdmissionError::NoCapacity { requested_bytes_per_sec: request }),
        }
    }

    /// Release a previously admitted reservation.
    pub fn release(&mut self, net: &FoldedClos, route: &Route, bw: Bandwidth) {
        let request = bw.as_bytes_per_sec();
        for l in net.links_on_route(route) {
            let r = &mut self.reserved[l.idx()];
            debug_assert!(*r >= request, "releasing more than reserved on {l:?}");
            *r = r.saturating_sub(request);
        }
    }

    /// Assign a fixed path to an unregulated flow (no reservation).
    ///
    /// Inter-leaf flows round-robin over spines per source leaf, which is
    /// the "admission control can ensure load balancing when assigning
    /// paths" behaviour of §3.
    pub fn assign_unregulated_path(&mut self, net: &FoldedClos, src: HostId, dst: HostId) -> Route {
        let choices = net.route_choices(src, dst);
        if choices == 1 {
            return net.route(src, dst, 0);
        }
        let leaf = net.leaf_of(src).idx();
        let choice = self.rr_spine[leaf] % choices;
        self.rr_spine[leaf] = (self.rr_spine[leaf] + 1) % choices;
        net.route(src, dst, choice)
    }

    /// The maximum utilisation over all links (diagnostics / tests).
    pub fn max_utilization(&self) -> f64 {
        self.reserved
            .iter()
            .map(|&r| r as f64 / self.capacity as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_topology::ClosParams;

    const LINK: Bandwidth = Bandwidth::gbps(8);

    fn net() -> FoldedClos {
        FoldedClos::build(ClosParams::paper())
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        // The shared bottleneck is the destination's delivery link: all
        // flows target host 127 from distinct sources on other leaves.
        let bw = Bandwidth::gbps(2);
        for i in 0..4 {
            ac.admit(&net, HostId(i), HostId(127), bw).expect("fits");
        }
        let err = ac.admit(&net, HostId(5), HostId(127), bw).unwrap_err();
        assert!(matches!(err, AdmissionError::NoCapacity { .. }));
        // The delivery link is exactly full.
        assert_eq!(ac.reserved(net.host_delivery_link(HostId(127))), LINK.as_bytes_per_sec());
    }

    #[test]
    fn release_restores_capacity() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(8);
        let adm = ac.admit(&net, HostId(0), HostId(127), bw).unwrap();
        assert!(ac.admit(&net, HostId(1), HostId(127), bw).is_err());
        ac.release(&net, &adm.route, bw);
        assert!(ac.admit(&net, HostId(1), HostId(127), bw).is_ok());
    }

    #[test]
    fn load_balances_over_spines() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(1);
        // Eight flows from the same source leaf to distinct remote hosts:
        // each should take a different spine (the least-utilised one).
        let mut used = std::collections::HashSet::new();
        for i in 0..8u32 {
            let adm = ac.admit(&net, HostId(i % 8), HostId(64 + i), bw).unwrap();
            used.insert(adm.choice);
        }
        assert_eq!(used.len(), 8, "reservations should spread over all spines");
        assert!(ac.max_utilization() <= 0.5);
    }

    #[test]
    fn intra_leaf_flows_need_no_spine() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let adm = ac.admit(&net, HostId(0), HostId(1), Bandwidth::gbps(4)).unwrap();
        assert_eq!(adm.route.len(), 1);
        assert_eq!(adm.choice, 0);
    }

    #[test]
    fn max_util_fraction_respected() {
        let net = net();
        // Only half the link may be reserved.
        let mut ac = AdmissionController::new(&net, LINK, 0.5);
        assert!(ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(4)).is_ok());
        assert!(ac.admit(&net, HostId(1), HostId(127), Bandwidth::gbps(1)).is_err());
    }

    #[test]
    fn unregulated_paths_round_robin() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let mut spines = vec![];
        for _ in 0..8 {
            let r = ac.assign_unregulated_path(&net, HostId(0), HostId(127));
            spines.push(r.hop(1).unwrap().switch);
        }
        let distinct: std::collections::HashSet<_> = spines.iter().collect();
        assert_eq!(distinct.len(), 8, "round robin covers all spines");
        // And no reservation was made.
        assert_eq!(ac.max_utilization(), 0.0);
    }

    #[test]
    fn ledger_never_oversubscribes() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let mut admitted = 0;
        // Greedy random-ish pattern; whatever is admitted must keep every
        // link at or below capacity.
        for i in 0..512u32 {
            let src = HostId(i % 128);
            let dst = HostId((i * 37 + 11) % 128);
            if src == dst {
                continue;
            }
            if ac.admit(&net, src, dst, Bandwidth::gbps(1)).is_ok() {
                admitted += 1;
            }
        }
        assert!(admitted > 0);
        assert!(ac.max_utilization() <= 1.0 + 1e-12);
    }
}
