//! Centralised admission control and fixed-path assignment.
//!
//! Per §3, bandwidth reservation happens at a centralised point (as in
//! InfiniBand's subnet manager or PCI AS fabric management) and **no
//! record is kept in the switches** — which is what makes fixed routing
//! mandatory: packets must use the route whose links they reserved.
//!
//! For unregulated traffic there is no reservation, but the admission
//! controller still assigns fixed, load-balanced paths (fixed routing
//! also avoids the out-of-order delivery adaptive routing would cause,
//! and balancing at path-assignment time substitutes for adaptivity).

use dqos_sim_core::Bandwidth;
use dqos_topology::{FoldedClos, HostId, LinkId, Route};
use std::fmt;

/// Why an admission request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Every candidate path would oversubscribe at least one link.
    NoCapacity {
        /// The bandwidth that was requested.
        requested_bytes_per_sec: u64,
    },
    /// Every candidate path crosses at least one failed link.
    NoUsablePath,
    /// A release would take a link's reservation below zero — the route
    /// was never admitted at this bandwidth, or was released twice. The
    /// ledger is left untouched.
    ReleaseUnderflow {
        /// The first offending link.
        link: LinkId,
        /// Bytes/sec currently reserved on it.
        reserved_bytes_per_sec: u64,
        /// Bytes/sec the release asked to return.
        requested_bytes_per_sec: u64,
    },
    /// An [`AdmissionState`] restore was sized for a different topology;
    /// the controller is left untouched.
    StateShapeMismatch {
        /// Links the controller tracks.
        expected_links: u32,
        /// Links the snapshot was taken over.
        got_links: u32,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::NoCapacity { requested_bytes_per_sec } => {
                write!(f, "no path can fit {requested_bytes_per_sec} B/s")
            }
            AdmissionError::NoUsablePath => {
                write!(f, "every candidate path crosses a failed link")
            }
            AdmissionError::ReleaseUnderflow {
                link,
                reserved_bytes_per_sec,
                requested_bytes_per_sec,
            } => write!(
                f,
                "release of {requested_bytes_per_sec} B/s exceeds the {reserved_bytes_per_sec} B/s reserved on {link:?}"
            ),
            AdmissionError::StateShapeMismatch { expected_links, got_links } => write!(
                f,
                "admission snapshot covers {got_links} links but the controller tracks {expected_links}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The full mutable state of an [`AdmissionController`], exported for
/// durability (the `dqosd` daemon journals admission mutations and
/// snapshots this struct) and for bit-exact state comparison in the
/// crash-recovery chaos harness.
///
/// Everything that influences a future admission decision is here: the
/// per-link ledger, link health, and the round-robin pointers used for
/// unregulated path assignment. Two controllers with equal states answer
/// every future request identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionState {
    /// Reservable capacity per link, bytes/sec.
    pub capacity: u64,
    /// Reserved bytes/sec per directed link.
    pub reserved: Vec<u64>,
    /// Link health per directed link.
    pub link_up: Vec<bool>,
    /// Round-robin spine pointer per source leaf.
    pub rr_spine: Vec<u16>,
}

impl AdmissionState {
    /// An order-sensitive FNV-1a digest of the state: equal digests for
    /// equal states, cheap enough to query after every mutation.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.capacity);
        eat(self.reserved.len() as u64);
        for &r in &self.reserved {
            eat(r);
        }
        eat(self.link_up.len() as u64);
        for &up in &self.link_up {
            eat(up as u64);
        }
        eat(self.rr_spine.len() as u64);
        for &rr in &self.rr_spine {
            eat(rr as u64);
        }
        h
    }
}

/// A successfully admitted flow: the chosen route and spine index.
#[derive(Debug, Clone)]
pub struct AdmittedFlow {
    /// The assigned fixed route.
    pub route: Route,
    /// The path choice index that produced it (spine index, or 0 for
    /// intra-leaf pairs).
    pub choice: u16,
}

/// The central bandwidth ledger.
///
/// ```
/// use dqos_core::AdmissionController;
/// use dqos_sim_core::Bandwidth;
/// use dqos_topology::{ClosParams, FoldedClos, HostId};
///
/// let net = FoldedClos::build(ClosParams::paper());
/// let mut ac = AdmissionController::new(&net, Bandwidth::gbps(8), 1.0);
/// let flow = ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(2)).unwrap();
/// assert_eq!(flow.route.len(), 3); // leaf -> spine -> leaf
/// // The ledger now carries the reservation on every link of the route.
/// assert!(ac.max_utilization() > 0.0);
/// ac.release(&net, &flow.route, Bandwidth::gbps(2)).unwrap();
/// assert_eq!(ac.max_utilization(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Usable capacity of every link, bytes/sec.
    capacity: u64,
    /// Reserved bytes/sec per directed link.
    reserved: Vec<u64>,
    /// Link health per directed link; failed links are excluded from
    /// every candidate path until restored (fault injection).
    link_up: Vec<bool>,
    /// Unregulated path counter per (src leaf): round-robin spine
    /// assignment for best-effort flows.
    rr_spine: Vec<u16>,
    /// Scratch for candidate-link scans (admission scores every spine
    /// per flow; reusing one buffer keeps the scan allocation-free).
    scratch: Vec<LinkId>,
}

impl AdmissionController {
    /// Create a controller for `net`, allowing reservations up to
    /// `max_util` of `link_capacity` on every link (the paper regulates
    /// traffic so links are never oversubscribed; `max_util = 1.0`).
    pub fn new(net: &FoldedClos, link_capacity: Bandwidth, max_util: f64) -> Self {
        assert!((0.0..=1.0).contains(&max_util), "max_util must be in [0,1]");
        AdmissionController {
            capacity: (link_capacity.as_bytes_per_sec() as f64 * max_util) as u64,
            reserved: vec![0; net.n_links() as usize],
            link_up: vec![true; net.n_links() as usize],
            rr_spine: vec![0; net.params().leaves as usize],
            scratch: Vec::with_capacity(4),
        }
    }

    /// Reserved bandwidth on `link`, bytes/sec.
    pub fn reserved(&self, link: LinkId) -> u64 {
        self.reserved[link.idx()]
    }

    /// Whether `link` is currently healthy.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.idx()]
    }

    /// Mark `link` failed: it is excluded from every candidate path until
    /// [`AdmissionController::restore_link`]. Reservations already
    /// charged to it are untouched — revoking the flows that hold them is
    /// the caller's job (the flow table knows which flows those are).
    pub fn fail_link(&mut self, link: LinkId) {
        self.link_up[link.idx()] = false;
    }

    /// Mark `link` healthy again.
    pub fn restore_link(&mut self, link: LinkId) {
        self.link_up[link.idx()] = true;
    }

    /// Utilisation of `link` as a fraction of reservable capacity.
    pub fn utilization(&self, link: LinkId) -> f64 {
        self.reserved[link.idx()] as f64 / self.capacity as f64
    }

    /// Try to admit a regulated flow of `bw` from `src` to `dst`.
    ///
    /// All candidate fixed paths are examined; the one whose *worst* link
    /// would be least utilised after the reservation wins. The worst link
    /// is often an endpoint link shared by **all** candidates (the
    /// source's injection link or the destination's delivery link), so
    /// ties break on the candidate's *total* route load — which differs
    /// exactly by the spine transit links — and then on the lowest spine
    /// index, keeping the choice deterministic. Fails if every candidate
    /// would oversubscribe some link.
    pub fn admit(
        &mut self,
        net: &FoldedClos,
        src: HostId,
        dst: HostId,
        bw: Bandwidth,
    ) -> Result<AdmittedFlow, AdmissionError> {
        let request = bw.as_bytes_per_sec();
        let choices = net.route_choices(src, dst);
        // Candidates are scored off the scratch link scan alone; only the
        // winner is materialised as a Route (admission runs once per video
        // stream, and the per-candidate allocations used to dominate
        // network construction).
        let mut links = std::mem::take(&mut self.scratch);
        let mut best: Option<(u16, (u64, u64))> = None;
        let mut any_usable = false;
        for choice in 0..choices {
            net.links_for_choice(src, dst, choice, &mut links);
            if links.iter().any(|l| !self.link_up[l.idx()]) {
                continue;
            }
            any_usable = true;
            let worst_after = links
                .iter()
                .map(|l| self.reserved[l.idx()] + request)
                .max()
                // tidy: allow(no-unwrap) -- links_for_choice is non-empty
                // for any host-to-host route (at least the two edge links).
                .expect("route has links");
            if worst_after > self.capacity {
                continue;
            }
            let total_after: u64 = links.iter().map(|l| self.reserved[l.idx()]).sum();
            let key = (worst_after, total_after);
            let better = match &best {
                None => true,
                Some((_, k)) => key < *k,
            };
            if better {
                best = Some((choice, key));
            }
        }
        let out = match best {
            Some((choice, _)) => {
                net.links_for_choice(src, dst, choice, &mut links);
                for l in &links {
                    self.reserved[l.idx()] += request;
                }
                Ok(AdmittedFlow { route: net.route(src, dst, choice), choice })
            }
            None if !any_usable => Err(AdmissionError::NoUsablePath),
            None => Err(AdmissionError::NoCapacity { requested_bytes_per_sec: request }),
        };
        self.scratch = links;
        out
    }

    /// Release a previously admitted reservation.
    ///
    /// The whole route is validated before any link is touched: releasing
    /// a route that was never admitted at this bandwidth (or releasing
    /// the same admission twice) returns
    /// [`AdmissionError::ReleaseUnderflow`] and leaves the ledger exactly
    /// as it was.
    pub fn release(
        &mut self,
        net: &FoldedClos,
        route: &Route,
        bw: Bandwidth,
    ) -> Result<(), AdmissionError> {
        let request = bw.as_bytes_per_sec();
        let links = net.links_on_route(route);
        for l in &links {
            let r = self.reserved[l.idx()];
            if r < request {
                return Err(AdmissionError::ReleaseUnderflow {
                    link: *l,
                    reserved_bytes_per_sec: r,
                    requested_bytes_per_sec: request,
                });
            }
        }
        for l in &links {
            self.reserved[l.idx()] -= request;
        }
        Ok(())
    }

    /// Assign a fixed path to an unregulated flow (no reservation).
    ///
    /// Inter-leaf flows round-robin over spines per source leaf, which is
    /// the "admission control can ensure load balancing when assigning
    /// paths" behaviour of §3. Candidates crossing a failed link are
    /// skipped (the pointer starts at the round-robin position, so with
    /// every link healthy the choice sequence is exactly the original);
    /// if *every* candidate is degraded the round-robin choice is
    /// returned anyway — its packets will be dropped (and counted) at the
    /// failed link rather than silently rerouted.
    pub fn assign_unregulated_path(&mut self, net: &FoldedClos, src: HostId, dst: HostId) -> Route {
        let choices = net.route_choices(src, dst);
        if choices == 1 {
            return net.route(src, dst, 0);
        }
        let leaf = net.leaf_of(src).idx();
        let start = self.rr_spine[leaf] % choices;
        let mut links = std::mem::take(&mut self.scratch);
        for k in 0..choices {
            let choice = (start + k) % choices;
            net.links_for_choice(src, dst, choice, &mut links);
            if links.iter().all(|l| self.link_up[l.idx()]) {
                self.rr_spine[leaf] = (choice + 1) % choices;
                self.scratch = links;
                return net.route(src, dst, choice);
            }
        }
        self.scratch = links;
        self.rr_spine[leaf] = (start + 1) % choices;
        net.route(src, dst, start)
    }

    /// Export the controller's full mutable state (ledger, link health,
    /// round-robin pointers) for snapshotting or comparison.
    pub fn export_state(&self) -> AdmissionState {
        AdmissionState {
            capacity: self.capacity,
            reserved: self.reserved.clone(),
            link_up: self.link_up.clone(),
            rr_spine: self.rr_spine.clone(),
        }
    }

    /// Replace the controller's mutable state with a previously exported
    /// snapshot. The shape (link and leaf counts) must match the topology
    /// this controller was built for; a mismatched snapshot returns
    /// [`AdmissionError::StateShapeMismatch`] and changes nothing.
    pub fn restore_state(&mut self, s: &AdmissionState) -> Result<(), AdmissionError> {
        if s.reserved.len() != self.reserved.len()
            || s.link_up.len() != self.link_up.len()
            || s.rr_spine.len() != self.rr_spine.len()
        {
            return Err(AdmissionError::StateShapeMismatch {
                expected_links: self.reserved.len() as u32,
                got_links: s.reserved.len() as u32,
            });
        }
        self.capacity = s.capacity;
        self.reserved.copy_from_slice(&s.reserved);
        self.link_up.copy_from_slice(&s.link_up);
        self.rr_spine.copy_from_slice(&s.rr_spine);
        Ok(())
    }

    /// Digest of the current state (see [`AdmissionState::digest`]).
    pub fn state_digest(&self) -> u64 {
        self.export_state().digest()
    }

    /// Total bytes/sec currently reserved, summed over all links
    /// (diagnostics; one flow counts once per link it crosses).
    pub fn total_reserved(&self) -> u64 {
        self.reserved.iter().sum()
    }

    /// The maximum utilisation over all links (diagnostics / tests).
    pub fn max_utilization(&self) -> f64 {
        self.reserved
            .iter()
            .map(|&r| r as f64 / self.capacity as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_topology::ClosParams;

    const LINK: Bandwidth = Bandwidth::gbps(8);

    fn net() -> FoldedClos {
        FoldedClos::build(ClosParams::paper())
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        // The shared bottleneck is the destination's delivery link: all
        // flows target host 127 from distinct sources on other leaves.
        let bw = Bandwidth::gbps(2);
        for i in 0..4 {
            ac.admit(&net, HostId(i), HostId(127), bw).expect("fits");
        }
        let err = ac.admit(&net, HostId(5), HostId(127), bw).unwrap_err();
        assert!(matches!(err, AdmissionError::NoCapacity { .. }));
        // The delivery link is exactly full.
        assert_eq!(ac.reserved(net.host_delivery_link(HostId(127))), LINK.as_bytes_per_sec());
    }

    #[test]
    fn release_restores_capacity() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(8);
        let adm = ac.admit(&net, HostId(0), HostId(127), bw).unwrap();
        assert!(ac.admit(&net, HostId(1), HostId(127), bw).is_err());
        ac.release(&net, &adm.route, bw).unwrap();
        assert!(ac.admit(&net, HostId(1), HostId(127), bw).is_ok());
    }

    #[test]
    fn double_release_is_an_error_and_leaves_ledger_intact() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(2);
        let adm = ac.admit(&net, HostId(0), HostId(127), bw).unwrap();
        ac.release(&net, &adm.route, bw).unwrap();
        assert_eq!(ac.max_utilization(), 0.0);
        let err = ac.release(&net, &adm.route, bw).unwrap_err();
        assert!(matches!(err, AdmissionError::ReleaseUnderflow { .. }));
        // Nothing was partially subtracted.
        assert_eq!(ac.max_utilization(), 0.0);
    }

    #[test]
    fn release_of_unknown_route_fails_without_partial_mutation() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(2);
        // Reserve via spine choice 0; attempt release on a different route
        // that shares the endpoint links but not the transit links.
        let adm = ac.admit(&net, HostId(0), HostId(127), bw).unwrap();
        let other = net.route(HostId(0), HostId(127), (adm.choice + 1) % 8);
        let before: Vec<u64> =
            net.links_on_route(&other).iter().map(|l| ac.reserved(*l)).collect();
        assert!(ac.release(&net, &other, bw).is_err());
        let after: Vec<u64> =
            net.links_on_route(&other).iter().map(|l| ac.reserved(*l)).collect();
        assert_eq!(before, after, "failed release must not touch any link");
    }

    #[test]
    fn ledger_zero_after_admit_revoke_readmit_cycles() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::mbps(400);
        for cycle in 0..10 {
            let a = ac.admit(&net, HostId(0), HostId(100), bw).unwrap();
            let b = ac.admit(&net, HostId(1), HostId(101), bw).unwrap();
            ac.release(&net, &a.route, bw).unwrap();
            // Re-admit in the freed space, then tear everything down.
            let c = ac.admit(&net, HostId(0), HostId(100), bw).unwrap();
            ac.release(&net, &b.route, bw).unwrap();
            ac.release(&net, &c.route, bw).unwrap();
            assert_eq!(ac.max_utilization(), 0.0, "cycle {cycle}: ledger not empty");
        }
    }

    #[test]
    fn failed_links_are_avoided_then_reused_after_restore() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(1);
        // Fail leaf 0's uplink to spine 0 (and the return direction).
        let [up, down] = net.leaf_spine_links(0, 0);
        ac.fail_link(up);
        ac.fail_link(down);
        assert!(!ac.link_is_up(up));
        for _ in 0..16 {
            let adm = ac.admit(&net, HostId(0), HostId(127), bw).unwrap();
            assert_ne!(adm.choice, 0, "failed spine must not be chosen");
            ac.release(&net, &adm.route, bw).unwrap();
            let r = ac.assign_unregulated_path(&net, HostId(0), HostId(127));
            assert_ne!(r.hop(1).unwrap().switch, net.spine(0), "unregulated too");
        }
        ac.restore_link(up);
        ac.restore_link(down);
        let mut used = std::collections::HashSet::new();
        for _ in 0..8 {
            used.insert(ac.assign_unregulated_path(&net, HostId(0), HostId(127)).hop(1).unwrap().switch);
        }
        assert!(used.contains(&net.spine(0)), "restored spine is used again");
    }

    #[test]
    fn all_paths_failed_reports_no_usable_path() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        // Kill the destination's delivery link: every candidate crosses it.
        ac.fail_link(net.host_delivery_link(HostId(127)));
        let err = ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(1)).unwrap_err();
        assert_eq!(err, AdmissionError::NoUsablePath);
        // The unregulated fallback still returns a (doomed) fixed route.
        let r = ac.assign_unregulated_path(&net, HostId(0), HostId(127));
        assert!(net.check_route(&r).is_ok());
    }

    #[test]
    fn load_balances_over_spines() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(1);
        // Eight flows from the same source leaf to distinct remote hosts:
        // each should take a different spine (the least-utilised one).
        let mut used = std::collections::HashSet::new();
        for i in 0..8u32 {
            let adm = ac.admit(&net, HostId(i % 8), HostId(64 + i), bw).unwrap();
            used.insert(adm.choice);
        }
        assert_eq!(used.len(), 8, "reservations should spread over all spines");
        assert!(ac.max_utilization() <= 0.5);
    }

    #[test]
    fn intra_leaf_flows_need_no_spine() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let adm = ac.admit(&net, HostId(0), HostId(1), Bandwidth::gbps(4)).unwrap();
        assert_eq!(adm.route.len(), 1);
        assert_eq!(adm.choice, 0);
    }

    #[test]
    fn max_util_fraction_respected() {
        let net = net();
        // Only half the link may be reserved.
        let mut ac = AdmissionController::new(&net, LINK, 0.5);
        assert!(ac.admit(&net, HostId(0), HostId(127), Bandwidth::gbps(4)).is_ok());
        assert!(ac.admit(&net, HostId(1), HostId(127), Bandwidth::gbps(1)).is_err());
    }

    #[test]
    fn unregulated_paths_round_robin() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let mut spines = vec![];
        for _ in 0..8 {
            let r = ac.assign_unregulated_path(&net, HostId(0), HostId(127));
            spines.push(r.hop(1).unwrap().switch);
        }
        let distinct: std::collections::HashSet<_> = spines.iter().collect();
        assert_eq!(distinct.len(), 8, "round robin covers all spines");
        // And no reservation was made.
        assert_eq!(ac.max_utilization(), 0.0);
    }

    #[test]
    fn export_restore_roundtrip_is_bit_exact() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let bw = Bandwidth::gbps(1);
        for i in 0..12u32 {
            let _ = ac.admit(&net, HostId(i % 8), HostId(64 + i), bw);
            let _ = ac.assign_unregulated_path(&net, HostId(i % 16), HostId(127));
        }
        ac.fail_link(net.host_delivery_link(HostId(9)));
        let snap = ac.export_state();
        let digest = snap.digest();
        assert_eq!(ac.state_digest(), digest);

        // A fresh controller restored from the snapshot answers the next
        // request identically (and reports the same digest).
        let mut fresh = AdmissionController::new(&net, LINK, 1.0);
        assert_ne!(fresh.state_digest(), digest, "states differ before restore");
        fresh.restore_state(&snap).unwrap();
        assert_eq!(fresh.state_digest(), digest);
        assert_eq!(fresh.export_state(), snap);
        let a = ac.admit(&net, HostId(3), HostId(120), bw).unwrap();
        let b = fresh.admit(&net, HostId(3), HostId(120), bw).unwrap();
        assert_eq!(a.choice, b.choice);
        assert_eq!(ac.state_digest(), fresh.state_digest());
        let ra = ac.assign_unregulated_path(&net, HostId(0), HostId(127));
        let rb = fresh.assign_unregulated_path(&net, HostId(0), HostId(127));
        assert_eq!(ra.port_path(), rb.port_path());
    }

    #[test]
    fn restore_of_wrong_shape_is_rejected_untouched() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let before = ac.export_state();
        let mut snap = before.clone();
        snap.reserved.push(0);
        let err = ac.restore_state(&snap).unwrap_err();
        assert!(matches!(err, AdmissionError::StateShapeMismatch { .. }));
        assert_eq!(ac.export_state(), before);
    }

    #[test]
    fn digest_is_sensitive_to_every_component() {
        let net = net();
        let ac = AdmissionController::new(&net, LINK, 1.0);
        let base = ac.export_state();
        let d0 = base.digest();
        let mut m = base.clone();
        m.reserved[3] = 1;
        assert_ne!(m.digest(), d0);
        let mut m = base.clone();
        m.link_up[0] = false;
        assert_ne!(m.digest(), d0);
        let mut m = base.clone();
        m.rr_spine[1] = 5;
        assert_ne!(m.digest(), d0);
        let mut m = base;
        m.capacity += 1;
        assert_ne!(m.digest(), d0);
    }

    #[test]
    fn ledger_never_oversubscribes() {
        let net = net();
        let mut ac = AdmissionController::new(&net, LINK, 1.0);
        let mut admitted = 0;
        // Greedy random-ish pattern; whatever is admitted must keep every
        // link at or below capacity.
        for i in 0..512u32 {
            let src = HostId(i % 128);
            let dst = HostId((i * 37 + 11) % 128);
            if src == dst {
                continue;
            }
            if ac.admit(&net, src, dst, Bandwidth::gbps(1)).is_ok() {
                admitted += 1;
            }
        }
        assert!(admitted > 0);
        assert!(ac.max_utilization() <= 1.0 + 1e-12);
    }
}
