//! Flow specifications and the per-host stamping records.
//!
//! A *flow* in the paper is a single connection or application stream:
//! source, destination, a **fixed route**, and whatever is needed to
//! compute deadlines (usually the reserved average bandwidth). Regulated
//! flows are admitted individually; unregulated (best-effort) traffic
//! uses **aggregated** flow records — one generic record per class at
//! each host, with a weighting bandwidth — which is how the EDF
//! architectures differentiate multiple best-effort classes inside one
//! VC (Figure 4).

use crate::class::TrafficClass;
use crate::deadline::{DeadlineMode, Stamper, StampedTimes};
use dqos_sim_core::{SimDuration, SimTime};
use dqos_topology::{HostId, Route};
use std::fmt;

/// Dense flow identifier, unique across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Static description of a flow, fixed at setup time.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Unique id.
    pub id: FlowId,
    /// Source host (where the stamping record lives).
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Traffic class.
    pub class: TrafficClass,
    /// How deadlines advance for this flow.
    pub mode: DeadlineMode,
    /// The fixed route assigned by the admission controller / path
    /// balancer.
    pub route: Route,
}

/// The times stamped onto one packet-sized part of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartStamp {
    /// Part length in bytes.
    pub len: u32,
    /// Assigned deadline.
    pub deadline: SimTime,
    /// Assigned eligible time (if the flow smooths injection).
    pub eligible: Option<SimTime>,
}

/// A live flow: its spec plus the mutable stamping state.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Static description.
    pub spec: FlowSpec,
    stamper: Stamper,
}

impl Flow {
    /// Create a flow without eligible-time smoothing.
    pub fn new(spec: FlowSpec) -> Self {
        let stamper = Stamper::new(spec.mode);
        Flow { spec, stamper }
    }

    /// Create a flow whose packets become eligible `lead` before their
    /// deadlines (multimedia smoothing; the paper uses 20 µs).
    pub fn with_eligible(spec: FlowSpec, lead: SimDuration) -> Self {
        let stamper = Stamper::with_eligible(spec.mode, lead);
        Flow { spec, stamper }
    }

    /// Stamp all parts of one application message handed over at local
    /// time `now`.
    pub fn stamp_message(&mut self, now: SimTime, part_sizes: &[u32]) -> Vec<PartStamp> {
        let stamps: Vec<StampedTimes> = self.stamper.stamp_message(now, part_sizes);
        part_sizes
            .iter()
            .zip(stamps)
            .map(|(&len, s)| PartStamp { len, deadline: s.deadline, eligible: s.eligible })
            .collect()
    }

    /// The deadline assigned to the most recently stamped packet.
    pub fn last_deadline(&self) -> SimTime {
        self.stamper.last_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqos_sim_core::Bandwidth;
    use dqos_topology::{Port, RouteHop, SwitchId};

    fn spec(mode: DeadlineMode) -> FlowSpec {
        FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(1),
            class: TrafficClass::Multimedia,
            mode,
            route: Route::new(
                HostId(0),
                HostId(1),
                vec![RouteHop { switch: SwitchId(0), out_port: Port(1) }],
            ),
        }
    }

    #[test]
    fn stamps_carry_lengths() {
        let mut f = Flow::new(spec(DeadlineMode::AvgBandwidth(Bandwidth::gbps(1))));
        let stamps = f.stamp_message(SimTime::ZERO, &[2048, 2048, 100]);
        assert_eq!(stamps.len(), 3);
        assert_eq!(stamps[0].len, 2048);
        assert_eq!(stamps[2].len, 100);
        assert!(stamps[0].deadline < stamps[1].deadline);
        assert!(stamps[1].deadline < stamps[2].deadline);
        assert_eq!(f.last_deadline(), stamps[2].deadline);
        assert!(stamps.iter().all(|s| s.eligible.is_none()));
    }

    #[test]
    fn eligible_flows_smooth() {
        let mut f = Flow::with_eligible(
            spec(DeadlineMode::FrameSpread { target: SimDuration::from_ms(10) }),
            SimDuration::from_us(20),
        );
        let stamps = f.stamp_message(SimTime::ZERO, &[2048; 10]);
        for s in &stamps {
            let e = s.eligible.expect("eligible set");
            assert!(e <= s.deadline);
            assert_eq!(
                s.deadline.as_ns() - e.as_ns(),
                20_000,
                "eligible trails deadline by the configured lead"
            );
        }
        // Eligible times are spread out (one per 1 ms), not bunched at 0.
        assert!(stamps[9].eligible.unwrap() > stamps[0].eligible.unwrap());
    }

    #[test]
    fn consecutive_messages_share_virtual_clock() {
        // An aggregated best-effort record stamps many messages; its
        // virtual clock must carry over between messages.
        let mut f = Flow::new(spec(DeadlineMode::AvgBandwidth(Bandwidth::mbytes_per_sec(100))));
        let a = f.stamp_message(SimTime::ZERO, &[1000]);
        let b = f.stamp_message(SimTime::ZERO, &[1000]);
        assert!(b[0].deadline > a[0].deadline);
        assert_eq!(b[0].deadline.as_ns(), 2 * a[0].deadline.as_ns());
    }
}
