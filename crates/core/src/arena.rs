//! Pooled storage for packets in flight.
//!
//! Events in the network simulator do not carry packets by value: the
//! packet lives in a [`PacketArena`] slab and the event carries a
//! [`PacketRef`] — a `u32` slot index. That keeps event-queue entries
//! small (the calendar moves four-word entries instead of ~100-byte
//! packets through its buckets) and reuses slots through a free list, so
//! steady-state simulation does no per-packet allocation at all.
//!
//! References are single-use: [`PacketArena::insert`] hands one out and
//! [`PacketArena::take`] consumes it. Taking a vacant slot panics — it
//! means an event was duplicated or replayed, which is a simulator bug
//! (the lossless fabric must neither drop nor duplicate packets).

use crate::packet::Packet;

/// A handle to a packet parked in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

/// A slab of in-flight packets with free-list slot reuse.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `cap` packets before it reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        PacketArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
            high_water: 0,
        }
    }

    /// Park a packet; the returned handle is what the event carries.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(packet);
                PacketRef(idx)
            }
            None => {
                // tidy: allow(no-unwrap) -- more than u32::MAX in-flight
                // packets means the sim is already broken; fail loudly.
                let idx = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(Some(packet));
                PacketRef(idx)
            }
        }
    }

    /// Retrieve a packet, freeing its slot. Panics on a vacant slot
    /// (an event was duplicated or replayed).
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let p = self.slots[r.0 as usize]
            .take()
            // tidy: allow(no-unwrap) -- documented contract: a vacant slot
            // means an event was duplicated or replayed (simulator bug).
            .expect("packet taken twice from arena");
        self.free.push(r.0);
        self.live -= 1;
        p
    }

    /// Borrow a parked packet without freeing it.
    pub fn get(&self, r: PacketRef) -> Option<&Packet> {
        self.slots.get(r.0 as usize)?.as_ref()
    }

    /// Packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when nothing is parked (drain check at end of run).
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Most packets ever parked at once — the real buffering footprint a
    /// run needed, reported next to the event-queue stats.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::TrafficClass;
    use crate::flow::FlowId;
    use crate::packet::MsgTag;
    use dqos_sim_core::SimTime;
    use dqos_topology::{HostId, Port, PortPath};

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            flow: FlowId(1),
            class: TrafficClass::Control,
            src: HostId(0),
            dst: HostId(1),
            len: 256,
            deadline: SimTime::from_us(10),
            eligible: None,
            route: PortPath::new(&[Port(1)]),
            hop: 0,
            injected_at: SimTime::ZERO,
            msg: MsgTag { msg_id: 0, part: 0, parts: 1, created_at: SimTime::ZERO },
            corrupted: false,
        }
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(7));
        assert_eq!(a.live(), 1);
        assert_eq!(a.get(r).unwrap().id, 7);
        assert_eq!(a.take(r).id, 7);
        assert!(a.is_empty());
        assert!(a.get(r).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let mut a = PacketArena::new();
        let refs: Vec<_> = (0..100).map(|i| a.insert(pkt(i))).collect();
        assert_eq!(a.capacity(), 100);
        for r in refs {
            a.take(r);
        }
        // Refill: no new slots allocated.
        for i in 100..200 {
            a.insert(pkt(i));
        }
        assert_eq!(a.capacity(), 100);
        assert_eq!(a.live(), 100);
        assert_eq!(a.high_water(), 100);
    }

    #[test]
    fn distinct_refs_address_distinct_packets() {
        let mut a = PacketArena::with_capacity(8);
        let r1 = a.insert(pkt(1));
        let r2 = a.insert(pkt(2));
        assert_ne!(r1, r2);
        assert_eq!(a.take(r2).id, 2);
        assert_eq!(a.take(r1).id, 1);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        a.take(r);
        a.take(r);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut a = PacketArena::new();
        let r1 = a.insert(pkt(1));
        let r2 = a.insert(pkt(2));
        a.take(r1);
        a.take(r2);
        assert_eq!(a.high_water(), 2);
        assert_eq!(a.live(), 0);
    }
}
