//! Clock-synchronisation avoidance via time-to-destination (TTD), §3.3.
//!
//! Deadlines are absolute timestamps, which would require every host and
//! switch to share a synchronised clock. The paper's workaround: when a
//! packet leaves a node, the header carries `TTD = D − T_local` (time
//! remaining until the deadline, a *relative* quantity that needs no
//! synchronisation). The next hop reconstructs a locally meaningful
//! deadline as `D' = TTD + T'_local` and schedules with that. Each node
//! therefore sees deadlines in its own clock domain; only *differences*
//! between deadlines matter for EDF ordering, and those are preserved
//! exactly — a property the integration tests verify by running whole
//! simulations under arbitrary per-node clock offsets and asserting
//! bit-identical results.

use dqos_sim_core::SimTime;

/// Time-to-destination: the header field that replaces the absolute
/// deadline on the wire. Negative values mean the deadline has already
/// passed (the packet is late but still delivered — the fabric is
/// lossless).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ttd(pub i64);

/// A node's local clock: `local = global + offset`.
///
/// The simulator keeps a hidden global clock (event timestamps); each
/// node observes it through its own [`ClockDomain`]. With `offset = 0`
/// everywhere this degenerates to synchronised clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    /// Nanoseconds this node's clock is ahead of the global clock
    /// (may be negative).
    pub offset: i64,
    /// Rate skew in parts per million: the local clock advances
    /// `1 + skew_ppm/1e6` local nanoseconds per global nanosecond. Zero
    /// (the default everywhere outside fault-injection runs) preserves
    /// the original pure-offset arithmetic bit for bit.
    pub skew_ppm: i32,
}

impl ClockDomain {
    /// A perfectly synchronised clock.
    pub const SYNCED: ClockDomain = ClockDomain { offset: 0, skew_ppm: 0 };

    /// Create a domain with the given offset (no rate skew).
    pub fn new(offset: i64) -> Self {
        ClockDomain { offset, skew_ppm: 0 }
    }

    /// Create a domain with an offset and a rate skew (fault injection's
    /// clock-drift model).
    pub fn with_skew(offset: i64, skew_ppm: i32) -> Self {
        ClockDomain { offset, skew_ppm }
    }

    /// The local reading of a global timestamp.
    #[inline]
    pub fn local(&self, global: SimTime) -> SimTime {
        if self.skew_ppm == 0 {
            let v = global.as_ns() as i64 + self.offset;
            debug_assert!(v >= 0, "local clock underflow: offset too negative for this time");
            return SimTime::from_ns(v as u64);
        }
        let g = global.as_ns() as i128;
        let v = g + self.offset as i128 + g * self.skew_ppm as i128 / 1_000_000;
        debug_assert!(v >= 0, "local clock underflow: offset too negative for this time");
        SimTime::from_ns(v as u64)
    }

    /// The global timestamp a local reading corresponds to (inverse of
    /// [`ClockDomain::local`]; the simulator uses it to schedule events
    /// that nodes request in their own domain).
    ///
    /// With a rate skew the inverse involves integer division and may be
    /// off by one nanosecond from a strict round trip — deterministic,
    /// and harmless at simulation granularity. The division rounds *up*
    /// so that `local(global_of(l)) >= l` always holds: a node asking to
    /// be woken at local time `l` must not observe a pre-`l` clock when
    /// the wake fires, or it would re-request the identical wake forever
    /// (a same-tick livelock the stall watchdog catches).
    #[inline]
    pub fn global_of(&self, local: SimTime) -> SimTime {
        if self.skew_ppm == 0 {
            let v = local.as_ns() as i64 - self.offset;
            debug_assert!(v >= 0, "global clock underflow");
            return SimTime::from_ns(v as u64);
        }
        let l = local.as_ns() as i128 - self.offset as i128;
        let rate = 1_000_000 + self.skew_ppm as i128;
        let v = (l * 1_000_000 + rate - 1).div_euclid(rate);
        debug_assert!(v >= 0, "global clock underflow");
        SimTime::from_ns(v as u64)
    }

    /// Encode a local-domain deadline into the TTD header field at local
    /// departure time `now_local`.
    #[inline]
    pub fn encode_ttd(deadline_local: SimTime, now_local: SimTime) -> Ttd {
        Ttd(deadline_local.as_ns() as i64 - now_local.as_ns() as i64)
    }

    /// Reconstruct a deadline in *this* domain from a received TTD at
    /// local arrival time `now_local`.
    ///
    /// Late packets (negative TTD) clamp to the arrival instant: they are
    /// maximally urgent.
    #[inline]
    pub fn decode_ttd(ttd: Ttd, now_local: SimTime) -> SimTime {
        let v = now_local.as_ns() as i64 + ttd.0;
        SimTime::from_ns(v.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_domain_is_identity() {
        let d = ClockDomain::SYNCED;
        assert_eq!(d.local(SimTime::from_us(5)), SimTime::from_us(5));
    }

    #[test]
    fn offset_shifts_local_view() {
        let ahead = ClockDomain::new(1_000);
        assert_eq!(ahead.local(SimTime::from_ns(500)), SimTime::from_ns(1_500));
        let behind = ClockDomain::new(-200);
        assert_eq!(behind.local(SimTime::from_ns(500)), SimTime::from_ns(300));
    }

    #[test]
    fn skewed_clock_runs_fast_or_slow() {
        let fast = ClockDomain::with_skew(0, 1_000); // +0.1%
        assert_eq!(fast.local(SimTime::from_ms(1)), SimTime::from_ns(1_001_000));
        let slow = ClockDomain::with_skew(0, -1_000);
        assert_eq!(slow.local(SimTime::from_ms(1)), SimTime::from_ns(999_000));
        // Offset composes with skew.
        let both = ClockDomain::with_skew(500, 1_000);
        assert_eq!(both.local(SimTime::from_ms(1)), SimTime::from_ns(1_001_500));
    }

    #[test]
    fn skewed_global_of_inverts_within_a_nanosecond() {
        for ppm in [-5_000i32, -37, 0, 1, 250, 10_000] {
            let d = ClockDomain::with_skew(1_234, ppm);
            for g in [0u64, 1, 999, 1_000_000, 987_654_321, 60_000_000_000] {
                let g = SimTime::from_ns(g);
                let back = d.global_of(d.local(g));
                let err = back.as_ns().abs_diff(g.as_ns());
                assert!(err <= 1, "ppm {ppm} t {g:?}: round trip off by {err}");
            }
        }
    }

    #[test]
    fn skewed_wake_requests_never_fire_early() {
        // local(global_of(l)) >= l: the scheduling contract. If this ever
        // regresses, a node waking "at local l" sees a pre-l clock and
        // re-requests the same wake — a same-tick livelock.
        for ppm in [-5_000i32, -37, 1, 250, 10_000] {
            let d = ClockDomain::with_skew(-321, ppm);
            for l in [1u64, 999, 1_000_001, 987_654_321, 60_000_000_000] {
                let l = SimTime::from_ns(l);
                assert!(d.local(d.global_of(l)) >= l, "ppm {ppm}, local {l:?}");
            }
        }
    }

    #[test]
    fn zero_skew_matches_pure_offset_arithmetic_exactly() {
        let a = ClockDomain::new(7_777);
        let b = ClockDomain::with_skew(7_777, 0);
        for g in [0u64, 5, 123_456_789] {
            let g = SimTime::from_ns(g);
            assert_eq!(a.local(g), b.local(g));
            assert_eq!(a.global_of(a.local(g)), g);
        }
    }

    #[test]
    fn ttd_roundtrip_same_domain() {
        let deadline = SimTime::from_us(50);
        let depart = SimTime::from_us(30);
        let ttd = ClockDomain::encode_ttd(deadline, depart);
        assert_eq!(ttd, Ttd(20_000));
        // Zero-latency hop in the same domain reconstructs exactly.
        assert_eq!(ClockDomain::decode_ttd(ttd, depart), deadline);
    }

    #[test]
    fn late_packet_ttd_is_negative_and_clamps() {
        let ttd = ClockDomain::encode_ttd(SimTime::from_us(10), SimTime::from_us(15));
        assert_eq!(ttd, Ttd(-5_000));
        // Reconstructed deadline is in the past relative to arrival.
        let d = ClockDomain::decode_ttd(ttd, SimTime::from_us(20));
        assert_eq!(d, SimTime::from_us(15));
    }

    /// Dependency-free port of the property: the EDF order of two packets
    /// is invariant under TTD transport between any two clock domains,
    /// regardless of offsets and wire latency.
    #[test]
    fn randomized_ttd_preserves_edf_order() {
        use dqos_sim_core::SimRng;
        let mut rng = SimRng::new(0x77D0);
        for _ in 0..2_000 {
            let off_tx = rng.range_u64(0, 2_000_000) as i64 - 1_000_000;
            let off_rx = rng.range_u64(0, 2_000_000) as i64 - 1_000_000;
            let tx = ClockDomain::new(off_tx);
            let rx = ClockDomain::new(off_rx);
            let d_a = rng.range_u64(0, 999_999_999) as i64;
            let gap = rng.range_u64(1, 999_999) as i64;
            let depart = rng.range_u64(0, 999_999_999);
            let latency = rng.range_u64(0, 999_999);
            let global_depart = SimTime::from_ns(depart + 2_000_000);
            let now_tx = tx.local(global_depart);
            // Two deadlines in the sender's domain, A earlier than B.
            let da = SimTime::from_ns((d_a + 2_000_000) as u64);
            let db = SimTime::from_ns((d_a + gap + 2_000_000) as u64);
            let ta = ClockDomain::encode_ttd(da, now_tx);
            let tb = ClockDomain::encode_ttd(db, now_tx);
            let global_arrive = global_depart + dqos_sim_core::SimDuration::from_ns(latency);
            let now_rx = rx.local(global_arrive);
            let ra = ClockDomain::decode_ttd(ta, now_rx);
            let rb = ClockDomain::decode_ttd(tb, now_rx);
            // Order preserved (ties only possible through the lateness
            // clamp, which maps both to "urgent now").
            assert!(ra <= rb);
            // When neither clamps, the *gap* is preserved exactly.
            if ta.0 + (now_rx.as_ns() as i64) >= 0 {
                assert_eq!(rb.as_ns() - ra.as_ns(), gap as u64);
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The EDF order of two packets is invariant under TTD transport
            /// between any two clock domains: if A's deadline precedes B's in
            /// the sender's domain, it still precedes it in the receiver's,
            /// regardless of offsets and wire latency.
            #[test]
            fn prop_ttd_preserves_edf_order(
                d_a in 0i64..1_000_000_000,
                gap in 1i64..1_000_000,
                depart in 0u64..1_000_000_000,
                latency in 0u64..1_000_000,
                off_tx in -1_000_000i64..1_000_000,
                off_rx in -1_000_000i64..1_000_000,
            ) {
                let tx = ClockDomain::new(off_tx);
                let rx = ClockDomain::new(off_rx);
                let global_depart = SimTime::from_ns(depart + 2_000_000);
                let now_tx = tx.local(global_depart);
                // Two deadlines in the sender's domain, A earlier than B.
                let da = SimTime::from_ns((d_a + 2_000_000) as u64);
                let db = SimTime::from_ns((d_a + gap + 2_000_000) as u64);
                let ta = ClockDomain::encode_ttd(da, now_tx);
                let tb = ClockDomain::encode_ttd(db, now_tx);
                let global_arrive = global_depart + dqos_sim_core::SimDuration::from_ns(latency);
                let now_rx = rx.local(global_arrive);
                let ra = ClockDomain::decode_ttd(ta, now_rx);
                let rb = ClockDomain::decode_ttd(tb, now_rx);
                // Order preserved (ties only possible through the lateness
                // clamp, which maps both to "urgent now").
                prop_assert!(ra <= rb);
                // When neither clamps, the *gap* is preserved exactly.
                if ta.0 + (now_rx.as_ns() as i64) >= 0 {
                    prop_assert_eq!(rb.as_ns() - ra.as_ns(), gap as u64);
                }
            }
        }
    }
}
