//! Durability: the write-ahead journal and snapshot codec.
//!
//! The daemon's durable state is a [`Store`]: one snapshot blob plus an
//! append-only journal of admission **mutations** (setup, teardown, link
//! up/down). Reads and stamping are never journaled — Virtual-Clock
//! stamper state is deliberately *soft*: after a crash, stampers restart
//! from zero, which only makes the next deadline earlier (never later),
//! so no reservation is ever exceeded.
//!
//! Journal format: each record is `u32 len | u64 fnv1a(body) | body`.
//! [`scan`] replays the longest valid prefix and stops at the first
//! torn or corrupt record, which is how a crash mid-append is tolerated:
//! the half-written tail fails its checksum and is discarded.
//!
//! Snapshot format: `u64 fnv1a(body) | body`, where the body carries the
//! full [`Persist`] control state — admission ledger, flow registry,
//! flow-id counter, and the per-client dedup sessions. Sessions must be
//! in the snapshot: journal truncation at snapshot time would otherwise
//! forget which request ids were already applied, breaking exactly-once
//! semantics for retries that straddle a snapshot.

use crate::wire::{put_u16, put_u32, put_u64, Reader, ReqClass, WireError};
use dqos_core::AdmissionState;
use std::fmt;

/// FNV-1a 64-bit, the workspace's standard cheap digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The daemon's durable storage: a snapshot blob and a journal of
/// mutations since that snapshot. In tests this lives in memory (the
/// chaos harness clones and truncates it to simulate crashes); nothing
/// in the daemon cares where the bytes actually rest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Store {
    /// The most recent snapshot (empty = genesis).
    pub snapshot: Vec<u8>,
    /// Mutation records appended since the snapshot.
    pub journal: Vec<u8>,
}

impl Store {
    /// An empty store: a daemon recovered from it starts from genesis.
    pub fn new() -> Store {
        Store::default()
    }

    /// A copy with the journal cut at `offset` bytes — the chaos
    /// harness's model of a crash that persisted only a prefix.
    pub fn truncated(&self, offset: usize) -> Store {
        let cut = offset.min(self.journal.len());
        Store { snapshot: self.snapshot.clone(), journal: self.journal[..cut].to_vec() }
    }
}

/// One journaled admission mutation. Every record carries the
/// originating `(client, req)` pair so replay can rebuild the dedup
/// sessions and re-synthesize the exact response a retry must receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A flow was admitted.
    Setup {
        /// Originating client.
        client: u64,
        /// Originating request id.
        req: u64,
        /// Assigned flow id.
        flow: u64,
        /// Traffic class.
        class: ReqClass,
        /// Source host.
        src: u32,
        /// Destination host.
        dst: u32,
        /// Reserved bandwidth / weight, bytes/sec.
        bw: u64,
        /// Path choice the admission picked (replay asserts it matches).
        choice: u16,
        /// Whether bandwidth was reserved.
        reserved: bool,
    },
    /// A flow was torn down.
    Teardown {
        /// Originating client.
        client: u64,
        /// Originating request id.
        req: u64,
        /// The flow released.
        flow: u64,
    },
    /// A link was marked failed.
    LinkDown {
        /// Originating client.
        client: u64,
        /// Originating request id.
        req: u64,
        /// Directed link index.
        link: u32,
    },
    /// A link was marked healthy.
    LinkUp {
        /// Originating client.
        client: u64,
        /// Originating request id.
        req: u64,
        /// Directed link index.
        link: u32,
    },
}

impl Record {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Record::Setup { client, req, flow, class, src, dst, bw, choice, reserved } => {
                out.push(1);
                put_u64(&mut out, *client);
                put_u64(&mut out, *req);
                put_u64(&mut out, *flow);
                out.push(match class {
                    ReqClass::Guaranteed => 0,
                    ReqClass::BestEffort => 1,
                });
                put_u32(&mut out, *src);
                put_u32(&mut out, *dst);
                put_u64(&mut out, *bw);
                put_u16(&mut out, *choice);
                out.push(*reserved as u8);
            }
            Record::Teardown { client, req, flow } => {
                out.push(2);
                put_u64(&mut out, *client);
                put_u64(&mut out, *req);
                put_u64(&mut out, *flow);
            }
            Record::LinkDown { client, req, link } => {
                out.push(3);
                put_u64(&mut out, *client);
                put_u64(&mut out, *req);
                put_u32(&mut out, *link);
            }
            Record::LinkUp { client, req, link } => {
                out.push(4);
                put_u64(&mut out, *client);
                put_u64(&mut out, *req);
                put_u32(&mut out, *link);
            }
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<Record, WireError> {
        let mut r = Reader::new(body);
        let tag = r.u8()?;
        let rec = match tag {
            1 => {
                let client = r.u64()?;
                let req = r.u64()?;
                let flow = r.u64()?;
                let cls = r.u8()?;
                let class = match cls {
                    0 => ReqClass::Guaranteed,
                    1 => ReqClass::BestEffort,
                    _ => return Err(WireError::BadTag { what: "record class", tag: cls }),
                };
                Record::Setup {
                    client,
                    req,
                    flow,
                    class,
                    src: r.u32()?,
                    dst: r.u32()?,
                    bw: r.u64()?,
                    choice: r.u16()?,
                    reserved: r.u8()? != 0,
                }
            }
            2 => Record::Teardown { client: r.u64()?, req: r.u64()?, flow: r.u64()? },
            3 => Record::LinkDown { client: r.u64()?, req: r.u64()?, link: r.u32()? },
            4 => Record::LinkUp { client: r.u64()?, req: r.u64()?, link: r.u32()? },
            _ => return Err(WireError::BadTag { what: "record", tag }),
        };
        r.finish()?;
        Ok(rec)
    }

    /// The `(client, req)` session key the record originated from.
    pub fn session(&self) -> (u64, u64) {
        match *self {
            Record::Setup { client, req, .. }
            | Record::Teardown { client, req, .. }
            | Record::LinkDown { client, req, .. }
            | Record::LinkUp { client, req, .. } => (client, req),
        }
    }
}

/// Append one record to the journal (length + checksum framing).
pub fn append_record(journal: &mut Vec<u8>, rec: &Record) {
    let body = rec.encode_body();
    put_u32(journal, body.len() as u32);
    put_u64(journal, fnv1a(&body));
    journal.extend_from_slice(&body);
}

/// Replay the longest valid journal prefix.
///
/// Returns the decoded records and the number of bytes they cover. A
/// torn tail (short header, short body, checksum mismatch, or a body
/// that fails to decode) terminates the scan — everything before it is
/// still applied, which is the crash-consistency contract.
pub fn scan(journal: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(header_end) = pos.checked_add(12) else { break };
        if header_end > journal.len() {
            break;
        }
        let len = u32::from_le_bytes([
            journal[pos],
            journal[pos + 1],
            journal[pos + 2],
            journal[pos + 3],
        ]) as usize;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&journal[pos + 4..pos + 12]);
        let want = u64::from_le_bytes(sum);
        let Some(body_end) = header_end.checked_add(len) else { break };
        if body_end > journal.len() {
            break;
        }
        let body = &journal[header_end..body_end];
        if fnv1a(body) != want {
            break;
        }
        let Ok(rec) = Record::decode_body(body) else { break };
        records.push(rec);
        pos = body_end;
    }
    (records, pos)
}

/// A registered flow as persisted in snapshots (and rebuilt by replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRec {
    /// Flow id.
    pub flow: u64,
    /// Traffic class.
    pub class: ReqClass,
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Reserved bandwidth / stamping weight, bytes/sec.
    pub bw: u64,
    /// Path choice (meaningful when `reserved`).
    pub choice: u16,
    /// Whether bandwidth is reserved on the route.
    pub reserved: bool,
}

/// One client's dedup session: the last *mutating* request id applied
/// and the exact encoded response a retry of it must receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRec {
    /// Client identity.
    pub client: u64,
    /// Last applied mutating request id.
    pub last_req: u64,
    /// Encoded response frame for that request.
    pub reply: Vec<u8>,
}

/// Everything a snapshot persists: the full control-plane state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Persist {
    /// Next flow id to assign.
    pub next_flow: u64,
    /// The admission controller's exported state.
    pub admission: Option<AdmissionState>,
    /// The flow registry, ordered by flow id.
    pub flows: Vec<FlowRec>,
    /// Dedup sessions, ordered by client id.
    pub sessions: Vec<SessionRec>,
}

/// Why a snapshot blob was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The checksum over the body did not match.
    Checksum,
    /// The body failed to decode.
    Decode(WireError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Decode(e) => write!(f, "snapshot body: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encode a snapshot blob (`u64 checksum | body`).
pub fn encode_snapshot(p: &Persist) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_u64(&mut body, p.next_flow);
    match &p.admission {
        None => body.push(0),
        Some(a) => {
            body.push(1);
            put_u64(&mut body, a.capacity);
            put_u32(&mut body, a.reserved.len() as u32);
            for &r in &a.reserved {
                put_u64(&mut body, r);
            }
            put_u32(&mut body, a.link_up.len() as u32);
            for &up in &a.link_up {
                body.push(up as u8);
            }
            put_u32(&mut body, a.rr_spine.len() as u32);
            for &rr in &a.rr_spine {
                put_u16(&mut body, rr);
            }
        }
    }
    put_u32(&mut body, p.flows.len() as u32);
    for fr in &p.flows {
        put_u64(&mut body, fr.flow);
        body.push(match fr.class {
            ReqClass::Guaranteed => 0,
            ReqClass::BestEffort => 1,
        });
        put_u32(&mut body, fr.src);
        put_u32(&mut body, fr.dst);
        put_u64(&mut body, fr.bw);
        put_u16(&mut body, fr.choice);
        body.push(fr.reserved as u8);
    }
    put_u32(&mut body, p.sessions.len() as u32);
    for s in &p.sessions {
        put_u64(&mut body, s.client);
        put_u64(&mut body, s.last_req);
        put_u32(&mut body, s.reply.len() as u32);
        body.extend_from_slice(&s.reply);
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    put_u64(&mut out, fnv1a(&body));
    out.extend_from_slice(&body);
    out
}

/// Decode a snapshot blob. Empty input is genesis (default [`Persist`]).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Persist, SnapshotError> {
    if bytes.is_empty() {
        return Ok(Persist::default());
    }
    let mut r = Reader::new(bytes);
    let want = r.u64().map_err(SnapshotError::Decode)?;
    let body = &bytes[8..];
    if fnv1a(body) != want {
        return Err(SnapshotError::Checksum);
    }
    let mut r = Reader::new(body);
    let inner = |r: &mut Reader<'_>| -> Result<Persist, WireError> {
        let next_flow = r.u64()?;
        let admission = match r.u8()? {
            0 => None,
            _ => {
                let capacity = r.u64()?;
                let n = r.u32()? as usize;
                let mut reserved = Vec::with_capacity(n);
                for _ in 0..n {
                    reserved.push(r.u64()?);
                }
                let n = r.u32()? as usize;
                let mut link_up = Vec::with_capacity(n);
                for _ in 0..n {
                    link_up.push(r.u8()? != 0);
                }
                let n = r.u32()? as usize;
                let mut rr_spine = Vec::with_capacity(n);
                for _ in 0..n {
                    rr_spine.push(r.u16()?);
                }
                Some(AdmissionState { capacity, reserved, link_up, rr_spine })
            }
        };
        let n = r.u32()? as usize;
        let mut flows = Vec::with_capacity(n);
        for _ in 0..n {
            let flow = r.u64()?;
            let cls = r.u8()?;
            let class = match cls {
                0 => ReqClass::Guaranteed,
                1 => ReqClass::BestEffort,
                _ => return Err(WireError::BadTag { what: "snapshot class", tag: cls }),
            };
            flows.push(FlowRec {
                flow,
                class,
                src: r.u32()?,
                dst: r.u32()?,
                bw: r.u64()?,
                choice: r.u16()?,
                reserved: r.u8()? != 0,
            });
        }
        let n = r.u32()? as usize;
        let mut sessions = Vec::with_capacity(n);
        for _ in 0..n {
            let client = r.u64()?;
            let last_req = r.u64()?;
            let len = r.u32()? as usize;
            sessions.push(SessionRec { client, last_req, reply: r.bytes(len)?.to_vec() });
        }
        r.finish()?;
        Ok(Persist { next_flow, admission, flows, sessions })
    };
    inner(&mut r).map_err(SnapshotError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Setup {
                client: 1,
                req: 10,
                flow: 0,
                class: ReqClass::Guaranteed,
                src: 2,
                dst: 100,
                bw: 250_000_000,
                choice: 3,
                reserved: true,
            },
            Record::Setup {
                client: 2,
                req: 4,
                flow: 1,
                class: ReqClass::BestEffort,
                src: 9,
                dst: 77,
                bw: 1_000_000,
                choice: 0,
                reserved: false,
            },
            Record::LinkDown { client: 1, req: 11, link: 40 },
            Record::Teardown { client: 1, req: 12, flow: 0 },
            Record::LinkUp { client: 2, req: 5, link: 40 },
        ]
    }

    #[test]
    fn journal_roundtrips_and_scan_consumes_everything() {
        let recs = sample_records();
        let mut j = Vec::new();
        for r in &recs {
            append_record(&mut j, r);
        }
        let (got, used) = scan(&j);
        assert_eq!(got, recs);
        assert_eq!(used, j.len());
    }

    #[test]
    fn scan_tolerates_any_torn_tail() {
        let recs = sample_records();
        let mut j = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            append_record(&mut j, r);
            boundaries.push(j.len());
        }
        // Whatever byte prefix survives a crash, scan recovers exactly
        // the records whose full frames are inside it.
        for cut in 0..=j.len() {
            let (got, used) = scan(&j[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.len(), whole, "cut at {cut}");
            assert_eq!(used, boundaries[whole]);
        }
    }

    #[test]
    fn scan_stops_at_corruption_keeping_the_prefix() {
        let recs = sample_records();
        let mut j = Vec::new();
        append_record(&mut j, &recs[0]);
        let first = j.len();
        append_record(&mut j, &recs[1]);
        // Flip a bit inside the second record's body.
        let l = j.len();
        j[l - 1] ^= 0x80;
        let (got, used) = scan(&j);
        assert_eq!(got.len(), 1);
        assert_eq!(used, first);
    }

    #[test]
    fn snapshot_roundtrips() {
        let p = Persist {
            next_flow: 17,
            admission: Some(AdmissionState {
                capacity: 1_000_000_000,
                reserved: vec![0, 5, 0, 9],
                link_up: vec![true, false, true, true],
                rr_spine: vec![3, 0],
            }),
            flows: vec![FlowRec {
                flow: 16,
                class: ReqClass::Guaranteed,
                src: 1,
                dst: 2,
                bw: 3,
                choice: 4,
                reserved: true,
            }],
            sessions: vec![SessionRec { client: 8, last_req: 21, reply: vec![1, 2, 3] }],
        };
        let bytes = encode_snapshot(&p);
        assert_eq!(decode_snapshot(&bytes).unwrap(), p);
        assert_eq!(decode_snapshot(&[]).unwrap(), Persist::default());
    }

    #[test]
    fn snapshot_corruption_is_detected() {
        let mut bytes = encode_snapshot(&Persist { next_flow: 9, ..Persist::default() });
        let l = bytes.len();
        bytes[l - 1] ^= 1;
        assert_eq!(decode_snapshot(&bytes), Err(SnapshotError::Checksum));
    }
}
