//! `dqosctl` — admin CLI for the dqos-d daemon.
//!
//! Offline by default: `demo`, `soak`, and `sweep` run entirely on the
//! deterministic in-process loopback transport. Only `serve`, `ping`,
//! and `query` open real sockets, and only when explicitly invoked.

#![forbid(unsafe_code)]

use dqosd::chaos::{run_soak, verify_recovery_offsets, SoakConfig};
use dqosd::client::{Client, Event, RetryPolicy};
use dqosd::server::{Daemon, DaemonConfig, Outgoing};
use dqosd::transport::socket::{roundtrip, SocketServer};
use dqosd::transport::{Endpoint, Loopback, LoopbackConfig};
use dqosd::wire::{Op, ReqClass, Request, Response, NO_BUDGET};
use dqos_sim_core::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ping") => cmd_oneshot(&args[1..], Op::Ping),
        Some("query") => cmd_oneshot(&args[1..], Op::Query),
        Some("help") | Some("--help") | Some("-h") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("dqosctl: unknown command `{other}`");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    println!(
        "dqosctl — admin CLI for dqos-d\n\
         \n\
         offline commands (no sockets, deterministic per --seed):\n\
         \x20 demo  [--seed N]               walk a flow lifecycle over loopback\n\
         \x20 soak  [--seed N] [--overload]  run a chaos soak, print the report\n\
         \x20 sweep [--seed N] [--offsets N] torn-journal recovery offset sweep\n\
         \n\
         socket commands (open real TCP; never used by tests):\n\
         \x20 serve --addr H:P [--max-requests N]   run a daemon on a socket\n\
         \x20 ping  --addr H:P                      one-shot ping\n\
         \x20 query --addr H:P                      one-shot stats query"
    );
}

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Drive one client request to completion over a faultless loopback.
fn transact(daemon: &mut Daemon, client: &mut Client, now: &mut SimTime, op: Op) -> Response {
    let mut lb = Loopback::new(LoopbackConfig::default());
    let frame = match client.begin(*now, op, NO_BUDGET) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dqosctl: {e}");
            std::process::exit(1);
        }
    };
    lb.send(*now, Endpoint::Server, frame);
    let mut out: Vec<Outgoing> = Vec::new();
    loop {
        let next = [lb.next_deliver(), daemon.next_wake(), client.deadline()]
            .into_iter()
            .flatten()
            .min();
        let Some(t) = next else {
            eprintln!("dqosctl: demo deadlocked (no pending events)");
            std::process::exit(1);
        };
        *now = t;
        while let Some((at, to, frame)) = lb.pop_due(*now) {
            match to {
                Endpoint::Server => daemon.ingest(at, &frame),
                Endpoint::Client(_) => match client.on_frame(at, &frame) {
                    Event::Done(resp) => return resp,
                    Event::Send(f) => lb.send(at, Endpoint::Server, f),
                    _ => {}
                },
            }
        }
        daemon.poll(*now, &mut out);
        for o in out.drain(..) {
            lb.send(o.at, Endpoint::Client(o.client), o.frame);
        }
        if client.deadline().is_some_and(|d| d <= *now) {
            if let Event::Send(f) = client.on_timer(*now) {
                lb.send(*now, Endpoint::Server, f);
            }
        }
    }
}

fn cmd_demo(args: &[String]) -> i32 {
    let seed = flag_u64(args, "--seed", 1);
    let mut daemon = Daemon::new(DaemonConfig::default());
    let mut client = Client::new(1, RetryPolicy::default(), seed);
    let mut now = SimTime::ZERO;

    println!("dqos-d demo (seed {seed}) — loopback transport, virtual time\n");
    let setup = Op::Setup {
        class: ReqClass::Guaranteed,
        src: 0,
        dst: 9,
        bw_bytes_per_sec: 3_000_000,
    };
    let resp = transact(&mut daemon, &mut client, &mut now, setup);
    println!("setup  guaranteed 0->9 @3MB/s : {resp:?}");
    let flow = match resp.result {
        Ok(dqosd::wire::Reply::Setup { flow, .. }) => flow,
        other => {
            eprintln!("dqosctl: setup failed: {other:?}");
            return 1;
        }
    };
    for len in [1500u32, 9000, 512] {
        let resp = transact(&mut daemon, &mut client, &mut now, Op::Stamp { flow, len, parts: 1 });
        println!("stamp  flow {flow} len {len:>5}    : {resp:?}");
    }
    let resp = transact(&mut daemon, &mut client, &mut now, Op::Query);
    println!("query                        : {resp:?}");
    let resp = transact(&mut daemon, &mut client, &mut now, Op::Teardown { flow });
    println!("teardown flow {flow}             : {resp:?}");
    println!("\nfinal digest {:#018x}, journal {} bytes", daemon.control_digest(), daemon.store().journal.len());
    0
}

fn cmd_soak(args: &[String]) -> i32 {
    let seed = flag_u64(args, "--seed", 1);
    let cfg = if args.iter().any(|a| a == "--overload") {
        SoakConfig::overload(seed)
    } else {
        SoakConfig::small(seed)
    };
    match run_soak(&cfg) {
        Ok(r) => {
            println!("soak seed {seed}: digest {:#018x}", r.digest);
            println!("  clients      completed {} gave_up {} retries {} retryable_errs {}",
                r.completed, r.gave_up, r.retries, r.retryable_errors);
            println!("  server       served {} shed_overload {} shed_budget {} duplicates {}",
                r.served, r.shed_overload, r.shed_budget, r.duplicates);
            println!("  admissions   {} (p99 {}ns, max {}ns)", r.admits, r.admit_p99_ns, r.admit_max_ns);
            println!("  transport    dropped {} duplicated {} reordered {}",
                r.faults.0, r.faults.1, r.faults.2);
            println!("  durability   journal {}B snapshots {} recoveries {}",
                r.journal_bytes, r.snapshots, r.recoveries);
            println!("  flows live   {}", r.flows_live);
            0
        }
        Err(e) => {
            eprintln!("soak failed: {e}");
            1
        }
    }
}

fn cmd_sweep(args: &[String]) -> i32 {
    let seed = flag_u64(args, "--seed", 1);
    let offsets = flag_u64(args, "--offsets", 32) as u32;
    match verify_recovery_offsets(&SoakConfig::small(seed), offsets) {
        Ok(s) => {
            println!(
                "sweep seed {seed}: {} offsets checked, {} records replayed, journal {}B — all digests matched",
                s.offsets_checked, s.records_replayed, s.soak.journal_bytes
            );
            0
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            1
        }
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(addr) = flag_str(args, "--addr") else {
        eprintln!("dqosctl serve: --addr HOST:PORT is required");
        return 2;
    };
    let max_requests = flag_u64(args, "--max-requests", 1024);
    let mut daemon = Daemon::new(DaemonConfig::default());
    match SocketServer::bind(addr) {
        Ok(mut srv) => {
            match srv.local_addr() {
                Ok(a) => println!("dqos-d listening on {a} (serving up to {max_requests} requests)"),
                Err(e) => eprintln!("dqos-d listening (addr unavailable: {e})"),
            }
            match srv.serve(&mut daemon, max_requests) {
                Ok(n) => {
                    println!("served {n} requests; final digest {:#018x}", daemon.control_digest());
                    0
                }
                Err(e) => {
                    eprintln!("serve error: {e}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("bind {addr} failed: {e}");
            1
        }
    }
}

fn cmd_oneshot(args: &[String], op: Op) -> i32 {
    let Some(addr) = flag_str(args, "--addr") else {
        eprintln!("dqosctl: --addr HOST:PORT is required");
        return 2;
    };
    let req = Request { client: 0xc11, id: 1, budget_ns: NO_BUDGET, op };
    match roundtrip(addr, &[req.encode()]) {
        Ok(frames) => match frames.first().map(|f| Response::decode(f)) {
            Some(Ok(resp)) => {
                println!("{resp:?}");
                0
            }
            _ => {
                eprintln!("dqosctl: undecodable response");
                1
            }
        },
        Err(e) => {
            eprintln!("dqosctl: {e}");
            1
        }
    }
}
