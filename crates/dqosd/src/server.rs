//! The dqos-d daemon: a deterministic, virtual-time admission and
//! stamping server.
//!
//! The daemon is a pure state machine: [`Daemon::ingest`] enqueues a
//! decoded request, [`Daemon::poll`] serves whatever a single-threaded
//! server with the configured per-op service costs would have finished
//! by `now`, and [`Daemon::next_wake`] tells the driver when to poll
//! again. No threads, no wall clock — the same frames in the same
//! virtual-time order produce bit-identical state, responses, and
//! journal bytes, which is what makes the crash-recovery chaos harness
//! able to assert *exact* equality.
//!
//! Robustness mechanisms (see DESIGN.md §11):
//! * **Deadline budgets** — a request whose projected completion busts
//!   its budget is shed immediately with the retryable
//!   [`ErrCode::ShedBudget`], costing almost nothing, instead of
//!   consuming a full service slot to produce a uselessly late answer.
//! * **Priority dual queue** — guaranteed-class and control work is
//!   served strictly before best-effort admission, the control-plane
//!   mirror of the paper's class hierarchy.
//! * **Overload controller** — queue depth and a served-wait EWMA drive
//!   three modes: `Normal` → `ShedBestEffort` (refuse best-effort
//!   admission) → `StampOnly` (refuse *all* admission; stamping,
//!   queries, and teardowns — which free capacity — still run).
//! * **Write-ahead journal** — every admission mutation is journaled
//!   (with its originating client/request for dedup) *before* the
//!   response is emitted; periodic snapshots bound replay time.

use crate::journal::{
    self, append_record, decode_snapshot, encode_snapshot, FlowRec, Persist, Record, SessionRec,
    SnapshotError, Store,
};
use crate::wire::{ErrCode, Op, QueryStats, Reply, ReqClass, Request, Response, NO_BUDGET};
use dqos_core::{AdmissionController, AdmissionError, DeadlineMode, Stamper};
use dqos_sim_core::{Bandwidth, SimDuration, SimTime};
use dqos_stats::LogHistogram;
use dqos_topology::{ClosParams, FoldedClos, HostId, LinkId, Route};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Virtual-time cost of serving each operation class. These are the
/// "CPU model" of the daemon; the overload tests induce saturation by
/// sending requests faster than `1 / setup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCosts {
    /// Admission (path scoring + ledger update).
    pub setup: SimDuration,
    /// Release.
    pub teardown: SimDuration,
    /// Virtual-Clock stamp.
    pub stamp: SimDuration,
    /// Health query / ping.
    pub query: SimDuration,
    /// Shedding a request (budget or overload refusal, cached dedup).
    pub shed: SimDuration,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        ServiceCosts {
            setup: SimDuration::from_us(2),
            teardown: SimDuration::from_us(1),
            stamp: SimDuration::from_ns(300),
            query: SimDuration::from_ns(400),
            shed: SimDuration::from_ns(100),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// The fabric the admission controller manages.
    pub topology: ClosParams,
    /// Link capacity.
    pub link_bw: Bandwidth,
    /// Reservable fraction of each link.
    pub max_util: f64,
    /// Per-op service costs.
    pub costs: ServiceCosts,
    /// Queue depth at which best-effort admission is shed.
    pub shed_depth: usize,
    /// Queue depth at which *all* admission is refused (stamp-only).
    pub stamp_only_depth: usize,
    /// Served-wait EWMA (ns) above which the controller escalates to at
    /// least `ShedBestEffort` even if the queue looks short.
    pub wait_red_line: SimDuration,
    /// Take a snapshot (and truncate the journal) every this many
    /// journal records; 0 disables snapshots.
    pub snapshot_every: u32,
    /// Record a `(journal_len, control_digest)` pair after every commit
    /// (the chaos harness's ground truth for offset-sweep recovery
    /// checks). Off by default; costs a digest per mutation.
    pub record_digest_trail: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            topology: ClosParams::paper(),
            link_bw: Bandwidth::gbps(8),
            max_util: 1.0,
            costs: ServiceCosts::default(),
            shed_depth: 24,
            stamp_only_depth: 96,
            wait_red_line: SimDuration::from_us(200),
            snapshot_every: 64,
            record_digest_trail: false,
        }
    }
}

/// Overload mode, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// All classes admitted.
    Normal,
    /// Best-effort admission refused (retryable), guaranteed still runs.
    ShedBestEffort,
    /// No admission at all; stamping/query/teardown still run.
    StampOnly,
}

impl Mode {
    /// Wire encoding of the mode.
    pub fn as_u8(self) -> u8 {
        match self {
            Mode::Normal => 0,
            Mode::ShedBestEffort => 1,
            Mode::StampOnly => 2,
        }
    }
}

/// Serving counters and latency histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Requests served to completion (including error answers).
    pub served: u64,
    /// Requests refused by the overload controller.
    pub shed_overload: u64,
    /// Requests refused because their budget could not be met.
    pub shed_budget: u64,
    /// Duplicate mutating requests answered from the session cache.
    pub duplicates: u64,
    /// Stale duplicates dropped without an answer.
    pub stale_dropped: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Journal records written.
    pub journal_records: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Arrival-to-response latency of the guaranteed/control queue, ns.
    pub guaranteed_latency: LogHistogram,
    /// Arrival-to-response latency of the best-effort queue, ns.
    pub best_effort_latency: LogHistogram,
    /// Arrival-to-completion latency of *successful guaranteed
    /// admissions* only — the paper-facing bound: every value in here
    /// is ≤ the request's budget, because anything that would miss its
    /// budget is shed instead.
    pub admit_latency: LogHistogram,
}

impl Metrics {
    /// Fold another metrics block into this one (counters add,
    /// histograms merge). The chaos harness uses this to report totals
    /// across kill/recover cycles, since recovery starts fresh metrics.
    pub fn merge(&mut self, other: &Metrics) {
        self.served += other.served;
        self.shed_overload += other.shed_overload;
        self.shed_budget += other.shed_budget;
        self.duplicates += other.duplicates;
        self.stale_dropped += other.stale_dropped;
        self.malformed += other.malformed;
        self.journal_records += other.journal_records;
        self.snapshots += other.snapshots;
        self.guaranteed_latency.merge(&other.guaranteed_latency);
        self.best_effort_latency.merge(&other.best_effort_latency);
        self.admit_latency.merge(&other.admit_latency);
    }
}

/// A response frame the driver must deliver: hand `frame` to the
/// transport at virtual time `at`.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// When service of the request completed.
    pub at: SimTime,
    /// Which client to deliver to.
    pub client: u64,
    /// Encoded [`Response`] payload.
    pub frame: Vec<u8>,
}

/// Why recovery from a [`Store`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The snapshot blob was corrupt.
    Snapshot(SnapshotError),
    /// The snapshot's admission state does not fit the topology.
    Shape(AdmissionError),
    /// Replaying the journal produced a different decision than the one
    /// recorded — the store belongs to a different configuration.
    Divergence {
        /// The flow (or link) the divergent record concerned.
        flow: u64,
        /// What went wrong.
        detail: &'static str,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Snapshot(e) => write!(f, "snapshot: {e}"),
            RecoverError::Shape(e) => write!(f, "admission state: {e}"),
            RecoverError::Divergence { flow, detail } => {
                write!(f, "journal replay diverged at flow {flow}: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

struct FlowEntry {
    rec: FlowRec,
    /// The admitted route; present exactly when bandwidth is reserved.
    route: Option<Route>,
    stamper: Stamper,
}

struct Session {
    last_req: u64,
    reply: Vec<u8>,
}

struct Pending {
    arrival: SimTime,
    /// Overload mode observed when the request arrived (queue depth
    /// including this request). Shed decisions use the door mode, not
    /// the serve-time mode: a burst is refused consistently instead of
    /// depending on where in the drained queue each item landed.
    door: Mode,
    req: Request,
}

/// The daemon. See the module docs for the driving contract.
pub struct Daemon {
    cfg: DaemonConfig,
    net: FoldedClos,
    ac: AdmissionController,
    flows: BTreeMap<u64, FlowEntry>,
    next_flow: u64,
    sessions: BTreeMap<u64, Session>,
    q_guar: VecDeque<Pending>,
    q_best: VecDeque<Pending>,
    busy_until: SimTime,
    mode: Mode,
    ewma_wait_ns: u64,
    records_since_snapshot: u32,
    store: Store,
    metrics: Metrics,
    trail: Vec<(u64, u64)>,
}

impl Daemon {
    /// A fresh daemon with an empty store.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        let net = FoldedClos::build(cfg.topology);
        let ac = AdmissionController::new(&net, cfg.link_bw, cfg.max_util);
        Daemon {
            cfg,
            net,
            ac,
            flows: BTreeMap::new(),
            next_flow: 0,
            sessions: BTreeMap::new(),
            q_guar: VecDeque::new(),
            q_best: VecDeque::new(),
            busy_until: SimTime::ZERO,
            mode: Mode::Normal,
            ewma_wait_ns: 0,
            records_since_snapshot: 0,
            store: Store::new(),
            metrics: Metrics::default(),
            trail: Vec::new(),
        }
    }

    /// Rebuild a daemon from durable storage: decode the snapshot, then
    /// replay the longest valid journal prefix. The recovered control
    /// state (ledger, flow registry, dedup sessions, flow-id counter) is
    /// bit-identical to the state at the moment the last surviving
    /// record was committed; a torn journal tail is discarded.
    pub fn recover(cfg: DaemonConfig, store: &Store) -> Result<Daemon, RecoverError> {
        let mut d = Daemon::new(cfg);
        let persist = decode_snapshot(&store.snapshot).map_err(RecoverError::Snapshot)?;
        if let Some(adm) = &persist.admission {
            d.ac.restore_state(adm).map_err(RecoverError::Shape)?;
        }
        d.next_flow = persist.next_flow;
        for fr in persist.flows {
            let entry = d.rebuild_entry(fr)?;
            d.flows.insert(entry.rec.flow, entry);
        }
        for s in persist.sessions {
            d.sessions.insert(s.client, Session { last_req: s.last_req, reply: s.reply });
        }
        let (records, valid) = journal::scan(&store.journal);
        d.records_since_snapshot = records.len() as u32;
        for rec in records {
            d.apply_record(rec)?;
        }
        d.store = Store {
            snapshot: store.snapshot.clone(),
            journal: store.journal[..valid].to_vec(),
        };
        Ok(d)
    }

    fn rebuild_entry(&self, rec: FlowRec) -> Result<FlowEntry, RecoverError> {
        let route = if rec.reserved {
            if rec.src >= self.net.n_hosts() || rec.dst >= self.net.n_hosts() {
                return Err(RecoverError::Divergence {
                    flow: rec.flow,
                    detail: "host out of range for topology",
                });
            }
            Some(self.net.route(HostId(rec.src), HostId(rec.dst), rec.choice))
        } else {
            None
        };
        // Stamper state is soft: it restarts at virtual-clock zero, which
        // only ever makes the next deadline earlier, never later.
        let stamper = Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::bytes_per_sec(rec.bw)));
        Ok(FlowEntry { rec, route, stamper })
    }

    fn apply_record(&mut self, rec: Record) -> Result<(), RecoverError> {
        let (client, req) = rec.session();
        let reply = match rec {
            Record::Setup { flow, class, src, dst, bw, choice, reserved, .. } => {
                if src >= self.net.n_hosts() || dst >= self.net.n_hosts() {
                    return Err(RecoverError::Divergence { flow, detail: "host out of range" });
                }
                if reserved {
                    let adm = self
                        .ac
                        .admit(&self.net, HostId(src), HostId(dst), Bandwidth::bytes_per_sec(bw))
                        .map_err(|_| RecoverError::Divergence {
                            flow,
                            detail: "recorded admission no longer fits",
                        })?;
                    if adm.choice != choice {
                        return Err(RecoverError::Divergence {
                            flow,
                            detail: "replayed path choice differs from the record",
                        });
                    }
                } else {
                    let _ = self.ac.assign_unregulated_path(&self.net, HostId(src), HostId(dst));
                }
                let fr = FlowRec { flow, class, src, dst, bw, choice, reserved };
                let entry = self.rebuild_entry(fr)?;
                self.flows.insert(flow, entry);
                if flow >= self.next_flow {
                    self.next_flow = flow + 1;
                }
                Reply::Setup { flow, choice, reserved }
            }
            Record::Teardown { flow, .. } => {
                let entry = self.flows.remove(&flow).ok_or(RecoverError::Divergence {
                    flow,
                    detail: "teardown of unknown flow",
                })?;
                if let Some(route) = &entry.route {
                    self.ac
                        .release(&self.net, route, Bandwidth::bytes_per_sec(entry.rec.bw))
                        .map_err(|_| RecoverError::Divergence {
                            flow,
                            detail: "recorded release underflows the ledger",
                        })?;
                }
                Reply::Teardown
            }
            Record::LinkDown { link, .. } => {
                if link >= self.net.n_links() {
                    return Err(RecoverError::Divergence {
                        flow: link as u64,
                        detail: "link out of range",
                    });
                }
                self.ac.fail_link(LinkId(link));
                Reply::LinkSet
            }
            Record::LinkUp { link, .. } => {
                if link >= self.net.n_links() {
                    return Err(RecoverError::Divergence {
                        flow: link as u64,
                        detail: "link out of range",
                    });
                }
                self.ac.restore_link(LinkId(link));
                Reply::LinkSet
            }
        };
        // Rebuild the dedup session exactly as the live path wrote it.
        let frame = Response { id: req, result: Ok(reply) }.encode();
        self.sessions.insert(client, Session { last_req: req, reply: frame });
        Ok(())
    }

    /// The durable store (snapshot + journal). The chaos harness clones
    /// this to simulate a crash.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The configuration the daemon was built with.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Current overload mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Serving counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Registered flows.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Requests queued but not yet served.
    pub fn queue_depth(&self) -> usize {
        self.q_guar.len() + self.q_best.len()
    }

    /// The `(journal_len, control_digest)` pairs recorded at each commit
    /// when [`DaemonConfig::record_digest_trail`] is on. The digest is
    /// constant between commits (only committed mutations feed it), so
    /// this is a complete history of durable states.
    pub fn digest_trail(&self) -> &[(u64, u64)] {
        &self.trail
    }

    /// An order-sensitive digest over everything recovery must restore:
    /// the admission ledger, the flow registry, the flow-id counter, and
    /// the dedup sessions. Stamper state and metrics are deliberately
    /// excluded (soft state).
    pub fn control_digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(64 + self.flows.len() * 36 + self.sessions.len() * 24);
        crate::wire::put_u64(&mut buf, self.ac.state_digest());
        crate::wire::put_u64(&mut buf, self.next_flow);
        crate::wire::put_u64(&mut buf, self.flows.len() as u64);
        for (id, e) in &self.flows {
            crate::wire::put_u64(&mut buf, *id);
            buf.push(match e.rec.class {
                ReqClass::Guaranteed => 0,
                ReqClass::BestEffort => 1,
            });
            crate::wire::put_u32(&mut buf, e.rec.src);
            crate::wire::put_u32(&mut buf, e.rec.dst);
            crate::wire::put_u64(&mut buf, e.rec.bw);
            crate::wire::put_u16(&mut buf, e.rec.choice);
            buf.push(e.rec.reserved as u8);
        }
        crate::wire::put_u64(&mut buf, self.sessions.len() as u64);
        for (client, s) in &self.sessions {
            crate::wire::put_u64(&mut buf, *client);
            crate::wire::put_u64(&mut buf, s.last_req);
            crate::wire::put_u64(&mut buf, journal::fnv1a(&s.reply));
        }
        journal::fnv1a(&buf)
    }

    /// Enqueue one frame received at `now`. Undecodable frames are
    /// dropped (transport corruption; the client's timeout covers it).
    pub fn ingest(&mut self, now: SimTime, frame: &[u8]) {
        let Ok(req) = Request::decode(frame) else {
            self.metrics.malformed += 1;
            return;
        };
        let best_effort = matches!(req.op, Op::Setup { class: ReqClass::BestEffort, .. });
        let door = self.mode_for_depth(self.queue_depth() + 1);
        self.mode = door;
        let p = Pending { arrival: now, door, req };
        if best_effort {
            self.q_best.push_back(p);
        } else {
            self.q_guar.push_back(p);
        }
    }

    /// When to call [`Daemon::poll`] next, if work is queued.
    pub fn next_wake(&self) -> Option<SimTime> {
        let head = |q: &VecDeque<Pending>| q.front().map(|p| p.arrival);
        let earliest = match (head(&self.q_guar), head(&self.q_best)) {
            (None, None) => return None,
            (Some(a), None) | (None, Some(a)) => a,
            (Some(a), Some(b)) => a.min(b),
        };
        Some(self.busy_until.max(earliest))
    }

    /// Serve everything a single server could have *started* by `now`,
    /// pushing response frames (timestamped with their completion time)
    /// into `out`.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Outgoing>) {
        loop {
            let from_guar = !self.q_guar.is_empty();
            let Some(front) = (if from_guar { self.q_guar.front() } else { self.q_best.front() })
            else {
                break;
            };
            let start = self.busy_until.max(front.arrival);
            if start > now {
                break;
            }
            let popped =
                if from_guar { self.q_guar.pop_front() } else { self.q_best.pop_front() };
            let Some(p) = popped else { break };
            let wait_ns = start.since(p.arrival).as_ns();
            self.ewma_wait_ns = (self.ewma_wait_ns * 3 + wait_ns) / 4;
            let (cost, response) = self.serve(&p, start);
            let complete = start + cost;
            self.busy_until = complete;
            let latency_ns = complete.since(p.arrival).as_ns();
            if from_guar {
                self.metrics.guaranteed_latency.record(latency_ns);
            } else {
                self.metrics.best_effort_latency.record(latency_ns);
            }
            if let Some(frame) = response {
                out.push(Outgoing { at: complete, client: p.req.client, frame });
            }
            self.recompute_mode();
        }
    }

    fn mode_for_depth(&self, depth: usize) -> Mode {
        let mut mode = if depth >= self.cfg.stamp_only_depth {
            Mode::StampOnly
        } else if depth >= self.cfg.shed_depth {
            Mode::ShedBestEffort
        } else {
            Mode::Normal
        };
        if self.ewma_wait_ns > self.cfg.wait_red_line.as_ns() && mode < Mode::ShedBestEffort {
            mode = Mode::ShedBestEffort;
        }
        mode
    }

    fn recompute_mode(&mut self) {
        self.mode = self.mode_for_depth(self.queue_depth());
    }

    fn cost_of(&self, op: &Op) -> SimDuration {
        match op {
            Op::Ping | Op::Query => self.cfg.costs.query,
            Op::Setup { .. } => self.cfg.costs.setup,
            Op::Teardown { .. } => self.cfg.costs.teardown,
            Op::Stamp { .. } => self.cfg.costs.stamp,
            Op::FailLink { .. } | Op::RestoreLink { .. } => self.cfg.costs.teardown,
        }
    }

    /// Decide and execute one request starting service at `start`.
    /// Returns the service cost and the response frame (None for stale
    /// duplicates, which are dropped).
    fn serve(&mut self, p: &Pending, start: SimTime) -> (SimDuration, Option<Vec<u8>>) {
        let req = &p.req;
        let shed = self.cfg.costs.shed;

        // Exactly-once for mutations: a retry of the last applied
        // request replays the cached response; anything older is stale.
        if req.op.mutates() {
            if let Some(s) = self.sessions.get(&req.client) {
                if req.id == s.last_req {
                    self.metrics.duplicates += 1;
                    self.metrics.served += 1;
                    return (shed, Some(s.reply.clone()));
                }
                if req.id < s.last_req {
                    self.metrics.stale_dropped += 1;
                    return (shed, None);
                }
            }
        }

        // Deadline budget: projected completion vs. time already spent
        // queued. Shedding costs `shed`, not the full op.
        if req.budget_ns != NO_BUDGET {
            let projected = (start + self.cost_of(&req.op)).since(p.arrival).as_ns();
            if projected > req.budget_ns {
                self.metrics.shed_budget += 1;
                let frame = Response { id: req.id, result: Err(ErrCode::ShedBudget) }.encode();
                return (shed, Some(frame));
            }
        }

        let (cost, result) = self.dispatch(req, p.door, start);
        self.metrics.served += 1;
        if let Ok(Reply::Setup { reserved: true, .. }) = &result {
            self.metrics.admit_latency.record((start + cost).since(p.arrival).as_ns());
        }
        let frame = Response { id: req.id, result }.encode();
        (cost, Some(frame))
    }

    fn dispatch(
        &mut self,
        req: &Request,
        door: Mode,
        start: SimTime,
    ) -> (SimDuration, Result<Reply, ErrCode>) {
        let cost = self.cost_of(&req.op);
        let shed = self.cfg.costs.shed;
        match &req.op {
            Op::Ping => (cost, Ok(Reply::Pong)),
            Op::Query => {
                let q = QueryStats {
                    mode: self.mode.as_u8(),
                    flows: self.flows.len() as u64,
                    digest: self.control_digest(),
                    served: self.metrics.served,
                    shed_overload: self.metrics.shed_overload,
                    shed_budget: self.metrics.shed_budget,
                    journal_bytes: self.store.journal.len() as u64,
                    snapshots: self.metrics.snapshots,
                };
                (cost, Ok(Reply::Query(q)))
            }
            Op::Stamp { flow, len, parts } => {
                let stamp_at = start + cost;
                match self.flows.get_mut(flow) {
                    None => (cost, Err(ErrCode::UnknownFlow)),
                    Some(e) => {
                        let parts = (*parts).max(1);
                        let t = e.stamper.stamp(stamp_at, *len, parts);
                        (
                            cost,
                            Ok(Reply::Stamp {
                                deadline_ns: t.deadline.as_ns(),
                                eligible_ns: t.eligible.map(|x| x.as_ns()),
                            }),
                        )
                    }
                }
            }
            Op::Setup { class, src, dst, bw_bytes_per_sec } => {
                let class = *class;
                match (door, class) {
                    (Mode::StampOnly, _) => {
                        self.metrics.shed_overload += 1;
                        let code = if class == ReqClass::Guaranteed {
                            ErrCode::StampOnly
                        } else {
                            ErrCode::ShedOverload
                        };
                        return (shed, Err(code));
                    }
                    (Mode::ShedBestEffort, ReqClass::BestEffort) => {
                        self.metrics.shed_overload += 1;
                        return (shed, Err(ErrCode::ShedOverload));
                    }
                    _ => {}
                }
                if *src >= self.net.n_hosts() || *dst >= self.net.n_hosts() || src == dst {
                    return (cost, Err(ErrCode::Malformed));
                }
                let bw = Bandwidth::bytes_per_sec(*bw_bytes_per_sec);
                let (choice, reserved, route) = match class {
                    ReqClass::Guaranteed => {
                        match self.ac.admit(&self.net, HostId(*src), HostId(*dst), bw) {
                            Ok(adm) => (adm.choice, true, Some(adm.route)),
                            Err(AdmissionError::NoUsablePath) => {
                                return (cost, Err(ErrCode::NoUsablePath))
                            }
                            Err(_) => return (cost, Err(ErrCode::NoCapacity)),
                        }
                    }
                    ReqClass::BestEffort => {
                        let _ = self.ac.assign_unregulated_path(
                            &self.net,
                            HostId(*src),
                            HostId(*dst),
                        );
                        (0, false, None)
                    }
                };
                let flow = self.next_flow;
                self.next_flow += 1;
                let rec = FlowRec {
                    flow,
                    class,
                    src: *src,
                    dst: *dst,
                    bw: *bw_bytes_per_sec,
                    choice,
                    reserved,
                };
                let stamper =
                    Stamper::new(DeadlineMode::AvgBandwidth(Bandwidth::bytes_per_sec(rec.bw)));
                self.flows.insert(flow, FlowEntry { rec, route, stamper });
                let reply = Reply::Setup { flow, choice, reserved };
                self.commit(
                    Record::Setup {
                        client: req.client,
                        req: req.id,
                        flow,
                        class,
                        src: *src,
                        dst: *dst,
                        bw: *bw_bytes_per_sec,
                        choice,
                        reserved,
                    },
                    req,
                    &reply,
                );
                (cost, Ok(reply))
            }
            Op::Teardown { flow } => {
                let Some(entry) = self.flows.get(flow) else {
                    return (cost, Err(ErrCode::UnknownFlow));
                };
                if let Some(route) = entry.route.clone() {
                    let bw = Bandwidth::bytes_per_sec(entry.rec.bw);
                    if self.ac.release(&self.net, &route, bw).is_err() {
                        // The ledger refused a release it granted: state
                        // corruption. Surface loudly, mutate nothing.
                        return (cost, Err(ErrCode::Internal));
                    }
                }
                self.flows.remove(flow);
                let reply = Reply::Teardown;
                self.commit(
                    Record::Teardown { client: req.client, req: req.id, flow: *flow },
                    req,
                    &reply,
                );
                (cost, Ok(reply))
            }
            Op::FailLink { link } => {
                if *link >= self.net.n_links() {
                    return (cost, Err(ErrCode::BadLink));
                }
                self.ac.fail_link(LinkId(*link));
                let reply = Reply::LinkSet;
                self.commit(
                    Record::LinkDown { client: req.client, req: req.id, link: *link },
                    req,
                    &reply,
                );
                (cost, Ok(reply))
            }
            Op::RestoreLink { link } => {
                if *link >= self.net.n_links() {
                    return (cost, Err(ErrCode::BadLink));
                }
                self.ac.restore_link(LinkId(*link));
                let reply = Reply::LinkSet;
                self.commit(
                    Record::LinkUp { client: req.client, req: req.id, link: *link },
                    req,
                    &reply,
                );
                (cost, Ok(reply))
            }
        }
    }

    /// Commit one mutation: journal it, update the dedup session, and
    /// snapshot if due — all *before* the response leaves the daemon
    /// (write-ahead ordering).
    fn commit(&mut self, rec: Record, req: &Request, reply: &Reply) {
        append_record(&mut self.store.journal, &rec);
        self.metrics.journal_records += 1;
        self.records_since_snapshot += 1;
        let frame = Response { id: req.id, result: Ok(reply.clone()) }.encode();
        self.sessions.insert(req.client, Session { last_req: req.id, reply: frame });
        if self.cfg.record_digest_trail {
            self.trail.push((self.store.journal.len() as u64, self.control_digest()));
        }
        if self.cfg.snapshot_every > 0 && self.records_since_snapshot >= self.cfg.snapshot_every {
            self.take_snapshot();
        }
    }

    /// Snapshot the control state and truncate the journal.
    pub fn take_snapshot(&mut self) {
        let persist = self.persist();
        self.store.snapshot = encode_snapshot(&persist);
        self.store.journal.clear();
        self.records_since_snapshot = 0;
        self.metrics.snapshots += 1;
    }

    fn persist(&self) -> Persist {
        Persist {
            next_flow: self.next_flow,
            admission: Some(self.ac.export_state()),
            flows: self.flows.values().map(|e| e.rec.clone()).collect(),
            sessions: self
                .sessions
                .iter()
                .map(|(client, s)| SessionRec {
                    client: *client,
                    last_req: s.last_req,
                    reply: s.reply.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u64, id: u64, op: Op) -> Vec<u8> {
        Request { client, id, budget_ns: NO_BUDGET, op }.encode()
    }

    fn drive(d: &mut Daemon, now: SimTime, frame: Vec<u8>) -> Vec<Response> {
        d.ingest(now, &frame);
        let mut out = Vec::new();
        // Drain: serve everything currently queued by polling at the
        // daemon's own wake times.
        while let Some(w) = d.next_wake() {
            d.poll(w.max(now), &mut out);
            if d.queue_depth() == 0 {
                break;
            }
        }
        out.iter().map(|o| Response::decode(&o.frame).unwrap()).collect()
    }

    fn setup_op(src: u32, dst: u32) -> Op {
        Op::Setup {
            class: ReqClass::Guaranteed,
            src,
            dst,
            bw_bytes_per_sec: 125_000_000,
        }
    }

    #[test]
    fn setup_stamp_teardown_lifecycle() {
        let mut d = Daemon::new(DaemonConfig::default());
        let rs = drive(&mut d, SimTime::ZERO, req(1, 1, setup_op(0, 100)));
        let Reply::Setup { flow, reserved, .. } = rs[0].result.clone().unwrap() else {
            panic!("want setup reply, got {rs:?}");
        };
        assert!(reserved);
        assert_eq!(d.n_flows(), 1);

        let rs = drive(
            &mut d,
            SimTime::from_us(10),
            req(1, 2, Op::Stamp { flow, len: 1000, parts: 1 }),
        );
        let Reply::Stamp { deadline_ns, .. } = rs[0].result.clone().unwrap() else {
            panic!("want stamp reply");
        };
        // 1000 bytes at 125 MB/s = 8 us past the stamp instant.
        assert!(deadline_ns >= SimTime::from_us(18).as_ns());

        let rs = drive(&mut d, SimTime::from_us(20), req(1, 3, Op::Teardown { flow }));
        assert_eq!(rs[0].result, Ok(Reply::Teardown));
        assert_eq!(d.n_flows(), 0);
        assert_eq!(d.ac_digest_is_clean(), true);
    }

    impl Daemon {
        fn ac_digest_is_clean(&self) -> bool {
            self.ac.total_reserved() == 0
        }
    }

    #[test]
    fn duplicate_mutation_replays_cached_response() {
        let mut d = Daemon::new(DaemonConfig::default());
        let frame = req(7, 1, setup_op(0, 99));
        let first = drive(&mut d, SimTime::ZERO, frame.clone());
        let second = drive(&mut d, SimTime::from_us(50), frame);
        assert_eq!(first[0], second[0], "retry must see the identical response");
        assert_eq!(d.n_flows(), 1, "the mutation applied once");
        assert_eq!(d.metrics().duplicates, 1);
    }

    #[test]
    fn stale_duplicate_is_dropped_silently() {
        let mut d = Daemon::new(DaemonConfig::default());
        drive(&mut d, SimTime::ZERO, req(7, 5, setup_op(0, 99)));
        drive(&mut d, SimTime::from_us(10), req(7, 6, setup_op(1, 99)));
        let rs = drive(&mut d, SimTime::from_us(20), req(7, 5, setup_op(0, 99)));
        assert!(rs.is_empty(), "stale duplicate must get no answer");
        assert_eq!(d.metrics().stale_dropped, 1);
    }

    #[test]
    fn budget_bust_is_shed_with_retryable_error() {
        let mut d = Daemon::new(DaemonConfig::default());
        // Budget smaller than the setup cost: can never be met.
        let r = Request { client: 1, id: 1, budget_ns: 100, op: setup_op(0, 100) };
        let rs = drive(&mut d, SimTime::ZERO, r.encode());
        assert_eq!(rs[0].result, Err(ErrCode::ShedBudget));
        assert!(ErrCode::ShedBudget.retryable());
        assert_eq!(d.n_flows(), 0);
        assert_eq!(d.metrics().shed_budget, 1);
    }

    #[test]
    fn overload_sheds_best_effort_first_then_all_admission() {
        let cfg = DaemonConfig { shed_depth: 4, stamp_only_depth: 8, ..DaemonConfig::default() };
        let mut d = Daemon::new(cfg);
        // Flood without polling: queue depth crosses both watermarks.
        for i in 0..4 {
            d.ingest(SimTime::ZERO, &req(1, i + 1, setup_op(i as u32, 100)));
        }
        assert_eq!(d.mode(), Mode::ShedBestEffort);
        for i in 4..8 {
            d.ingest(SimTime::ZERO, &req(1, i + 1, setup_op(i as u32, 100)));
        }
        assert_eq!(d.mode(), Mode::StampOnly);
        // A best-effort setup queued now is refused when served.
        d.ingest(
            SimTime::ZERO,
            &req(
                2,
                1,
                Op::Setup { class: ReqClass::BestEffort, src: 9, dst: 100, bw_bytes_per_sec: 1 },
            ),
        );
        let mut out = Vec::new();
        d.poll(SimTime::from_ms(1), &mut out);
        let responses: Vec<Response> =
            out.iter().map(|o| Response::decode(&o.frame).unwrap()).collect();
        let best = responses.iter().find(|r| r.id == 1 && r.result.is_err()).unwrap();
        assert_eq!(best.result, Err(ErrCode::ShedOverload));
    }

    #[test]
    fn guaranteed_queue_is_served_before_best_effort() {
        let mut d = Daemon::new(DaemonConfig::default());
        let be = Request {
            client: 1,
            id: 1,
            budget_ns: NO_BUDGET,
            op: Op::Setup { class: ReqClass::BestEffort, src: 0, dst: 100, bw_bytes_per_sec: 1 },
        };
        d.ingest(SimTime::ZERO, &be.encode());
        d.ingest(SimTime::ZERO, &req(2, 1, setup_op(1, 101)));
        let mut out = Vec::new();
        d.poll(SimTime::from_ms(1), &mut out);
        assert_eq!(out.len(), 2);
        // The guaranteed setup (client 2) completes first despite
        // arriving second.
        assert_eq!(out[0].client, 2);
        assert!(out[0].at < out[1].at);
    }

    #[test]
    fn recover_from_empty_store_is_fresh() {
        let d = Daemon::recover(DaemonConfig::default(), &Store::new()).unwrap();
        assert_eq!(d.n_flows(), 0);
        assert_eq!(d.control_digest(), Daemon::new(DaemonConfig::default()).control_digest());
    }

    #[test]
    fn recover_replays_to_bit_identical_state() {
        let cfg = DaemonConfig { snapshot_every: 3, ..DaemonConfig::default() };
        let mut d = Daemon::new(cfg.clone());
        let mut t = SimTime::ZERO;
        for i in 0..10u64 {
            t = t + SimDuration::from_us(50);
            drive(&mut d, t, req(1, i + 1, setup_op(i as u32, 100 + i as u32)));
        }
        drive(&mut d, t + SimDuration::from_us(50), req(1, 11, Op::Teardown { flow: 3 }));
        drive(&mut d, t + SimDuration::from_us(99), req(2, 1, Op::FailLink { link: 5 }));
        assert!(d.metrics().snapshots > 0, "snapshots must have fired");
        let recovered = Daemon::recover(cfg, d.store()).unwrap();
        assert_eq!(recovered.control_digest(), d.control_digest());
        assert_eq!(recovered.n_flows(), d.n_flows());
    }

    #[test]
    fn recover_from_torn_journal_keeps_the_valid_prefix() {
        let cfg = DaemonConfig { snapshot_every: 0, ..DaemonConfig::default() };
        let mut d = Daemon::new(cfg.clone());
        let mut digests = vec![(0usize, d.control_digest())];
        let mut t = SimTime::ZERO;
        for i in 0..6u64 {
            t = t + SimDuration::from_us(50);
            drive(&mut d, t, req(1, i + 1, setup_op(i as u32, 100 + i as u32)));
            digests.push((d.store().journal.len(), d.control_digest()));
        }
        let journal_len = d.store().journal.len();
        for cut in 0..=journal_len {
            let store = d.store().truncated(cut);
            let rec = Daemon::recover(cfg.clone(), &store).unwrap();
            // The recovered digest must equal the live digest at the
            // largest mutation boundary the cut preserves.
            let want = digests.iter().rev().find(|(l, _)| *l <= cut).unwrap().1;
            assert_eq!(rec.control_digest(), want, "cut at {cut}");
        }
    }
}
